"""Market models quantifying the paper's §1.2 economic claims.

Spammer break-even calculus and optimal campaign volume, normal-user net
flow neutrality, ISP infrastructure costs, whole-market projection and
incremental-adoption dynamics.
"""

from .adaptive import AdaptiveSpammer, PeriodOutcome, VolumeLearner
from .adoption import AdoptionOutcome, sweep_policies, sweep_propensity
from .breakeven import (
    DEFAULT_CAMPAIGNS,
    BreakEvenRow,
    break_even_table,
    surviving_campaigns,
)
from .isp_costs import (
    SPAM_SHARE_2001,
    SPAM_SHARE_2004,
    CostBreakdown,
    ISPCostModel,
    productivity_loss_annual,
)
from .market import MarketState, project_market
from .sensitivity import ConfidenceInterval, elasticity, mean_ci, replicate
from .timeline import SpamShareTimeline
from .spammer import (
    STATUS_QUO_COST_PER_MSG,
    ZMAIL_COST_PER_MSG,
    CampaignModel,
    SpamRegime,
    cost_increase_factor,
)
from .user_flows import UserFlowSummary, analyze_user_flows, required_buffer

__all__ = [
    "AdaptiveSpammer",
    "PeriodOutcome",
    "VolumeLearner",
    "AdoptionOutcome",
    "sweep_policies",
    "sweep_propensity",
    "BreakEvenRow",
    "break_even_table",
    "surviving_campaigns",
    "DEFAULT_CAMPAIGNS",
    "ISPCostModel",
    "CostBreakdown",
    "SPAM_SHARE_2001",
    "SPAM_SHARE_2004",
    "productivity_loss_annual",
    "MarketState",
    "ConfidenceInterval",
    "mean_ci",
    "replicate",
    "elasticity",
    "project_market",
    "CampaignModel",
    "SpamShareTimeline",
    "SpamRegime",
    "STATUS_QUO_COST_PER_MSG",
    "ZMAIL_COST_PER_MSG",
    "cost_increase_factor",
    "UserFlowSummary",
    "analyze_user_flows",
    "required_buffer",
]
