"""ISP cost model: what spam costs the infrastructure (§1.1, §1.2).

The paper cites: $10B of extra mail-server cost in the US in 2003
(Ferris Research), $20.5B worldwide (Radicati), $300k/year productivity
loss per 1,000-employee business (Gartner), and Brightmail's measurement
that spam grew from 8% of traffic in 2001 to over 60% in April 2004.

:class:`ISPCostModel` turns per-message resource prices into annual cost
figures under a given spam share, so experiments can report the saving a
spam reduction produces (§1.2 claim 3: Zmail "reduces the overhead costs
of ISPs by saving their disk space, bandwidth, and computational cost for
running spam filters").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SPAM_SHARE_2001",
    "SPAM_SHARE_2004",
    "ISPCostModel",
    "CostBreakdown",
    "productivity_loss_annual",
]

# Brightmail's cited traffic shares.
SPAM_SHARE_2001 = 0.08
SPAM_SHARE_2004 = 0.60


@dataclass(frozen=True)
class CostBreakdown:
    """Annual ISP costs attributable to each resource, in dollars."""

    bandwidth: float
    storage: float
    filtering: float

    @property
    def total(self) -> float:
        """All spam-driven infrastructure cost."""
        return self.bandwidth + self.storage + self.filtering


@dataclass(frozen=True)
class ISPCostModel:
    """Per-message resource prices for an ISP of a given size.

    Defaults approximate a mid-2000s mid-size ISP: a 10 kB average
    message, bandwidth at $0.10/GB delivered, 30-day retention on
    $1/GB-year storage, and a content filter burning ~2 ms of CPU per
    message on hardware amortising to $0.05 per CPU-hour.

    Attributes:
        legitimate_messages_per_year: Ham volume the ISP must carry anyway.
        message_kb: Average message size.
        bandwidth_dollars_per_gb: Transit + peering price.
        storage_dollars_per_gb_year: Amortised storage price.
        retention_days: How long messages sit in mailboxes on average.
        filter_cpu_ms: Filter CPU per message (0 disables filtering cost —
            the Zmail case, where no filter runs).
        cpu_dollars_per_hour: Amortised compute price.
    """

    legitimate_messages_per_year: float = 1e9
    message_kb: float = 10.0
    bandwidth_dollars_per_gb: float = 0.10
    storage_dollars_per_gb_year: float = 1.0
    retention_days: float = 30.0
    filter_cpu_ms: float = 2.0
    cpu_dollars_per_hour: float = 0.05

    def message_volume(self, spam_share: float) -> float:
        """Total messages/year carried when spam is ``spam_share`` of traffic."""
        if not 0.0 <= spam_share < 1.0:
            raise ValueError("spam_share must be in [0, 1)")
        return self.legitimate_messages_per_year / (1.0 - spam_share)

    def annual_cost(
        self, spam_share: float, *, filtering_enabled: bool = True
    ) -> CostBreakdown:
        """Annual infrastructure cost at a given spam share."""
        messages = self.message_volume(spam_share)
        gb = messages * self.message_kb / 1e6
        bandwidth = gb * self.bandwidth_dollars_per_gb
        storage = gb * (self.retention_days / 365.0) * self.storage_dollars_per_gb_year
        if filtering_enabled and self.filter_cpu_ms > 0:
            cpu_hours = messages * self.filter_cpu_ms / 3.6e6
            filtering = cpu_hours * self.cpu_dollars_per_hour
        else:
            filtering = 0.0
        return CostBreakdown(bandwidth, storage, filtering)

    def spam_attributable_cost(self, spam_share: float) -> float:
        """Extra annual dollars spent because spam exists at this share."""
        with_spam = self.annual_cost(spam_share).total
        without = self.annual_cost(0.0, filtering_enabled=False).total
        return with_spam - without

    def saving_from_reduction(
        self, spam_share_before: float, spam_share_after: float,
        *, filter_retired: bool = True,
    ) -> float:
        """Annual dollars saved when spam falls (Zmail's claim 3).

        ``filter_retired`` models Zmail making content filters unnecessary
        for compliant traffic.
        """
        before = self.annual_cost(spam_share_before).total
        after = self.annual_cost(
            spam_share_after, filtering_enabled=not filter_retired
        ).total
        return before - after


def productivity_loss_annual(
    *,
    employees: int,
    spam_per_employee_day: float = 15.0,
    seconds_per_spam: float = 5.0,
    hourly_wage_dollars: float = 30.0,
    work_days_per_year: int = 250,
) -> float:
    """Annual worker-productivity loss from triaging spam, in dollars.

    Reproduces the paper's Gartner citation ("a business with 1,000
    employees loses $300,000 a year in worker productivity due to spam"):
    with the defaults — 15 spam/employee/day at 5 seconds each, a $30/h
    fully-loaded wage, 250 working days — 1,000 employees lose about
    $156k/year on triage alone; Gartner's $300k also prices misfiled mail
    and interruption recovery, i.e. roughly 10 seconds per spam, which
    the ``seconds_per_spam`` knob expresses directly.
    """
    if employees < 0:
        raise ValueError("employees must be non-negative")
    hours = employees * spam_per_employee_day * work_days_per_year * (
        seconds_per_spam / 3600.0
    )
    return hours * hourly_wage_dollars
