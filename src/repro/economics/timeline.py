"""The spam-growth timeline: the paper's motivating trajectory (§1.1).

The paper's only time-series data: spam was 8% of email traffic in 2001
and over 60% in April 2004 (Brightmail). A logistic share curve fitted to
exactly those two points reconstructs the motivating trend — spam on
course to drown email entirely ("threatens the social viability of the
Internet itself") — and lets experiments overlay the counterfactual:
Zmail introduced in year ``t`` re-prices the bulk senders, capping the
share at the surviving (targeted, paid) volume.

This is the closest thing the paper has to a motivation figure, and
experiment E19 regenerates it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["SpamShareTimeline"]


@dataclass(frozen=True)
class SpamShareTimeline:
    """A logistic spam-share model through the paper's two data points.

    The share follows ``s(t) = 1 / (1 + exp(-k (t - t0)))``; ``fit``
    solves ``k`` and ``t0`` from the two cited observations.

    Attributes:
        k: Logistic growth rate per year.
        t0: Year at which the share crosses 50%.
    """

    k: float
    t0: float

    @classmethod
    def fit(
        cls,
        *,
        year_a: float = 2001.0,
        share_a: float = 0.08,
        year_b: float = 2004.25,  # April 2004
        share_b: float = 0.60,
    ) -> "SpamShareTimeline":
        """Fit the logistic through two (year, share) observations."""
        if not 0.0 < share_a < 1.0 or not 0.0 < share_b < 1.0:
            raise ValueError("shares must be in (0, 1)")
        if year_b <= year_a or share_b <= share_a:
            raise ValueError("need increasing (year, share) observations")
        logit_a = math.log(share_a / (1.0 - share_a))
        logit_b = math.log(share_b / (1.0 - share_b))
        k = (logit_b - logit_a) / (year_b - year_a)
        t0 = year_a - logit_a / k
        return cls(k=k, t0=t0)

    def share(self, year: float) -> float:
        """Projected spam share of all email traffic in ``year``."""
        return 1.0 / (1.0 + math.exp(-self.k * (year - self.t0)))

    def year_reaching(self, share: float) -> float:
        """The year the unchecked trend reaches ``share``."""
        if not 0.0 < share < 1.0:
            raise ValueError("share must be in (0, 1)")
        return self.t0 + math.log(share / (1.0 - share)) / self.k

    def with_zmail(
        self, year: float, *, adopted_at: float, residual_share: float = 0.1
    ) -> float:
        """Counterfactual share with Zmail adopted in ``adopted_at``.

        Before adoption the unchecked trend applies; after it, bulk spam
        is re-priced away and only the surviving targeted volume remains
        (``residual_share`` of traffic, from the E2 market projection),
        approached with a one-year relaxation.
        """
        if year <= adopted_at:
            return self.share(year)
        unchecked = self.share(adopted_at)
        decay = math.exp(-(year - adopted_at))
        return residual_share + (unchecked - residual_share) * decay
