"""Spammer economics: cost, revenue and optimal campaign volume.

The paper's §1.2 claim 1: "The cost of sending spam will increase by at
least two orders of magnitude... The response rate required to break even
will increase similarly. Bulk email advertising will continue to exist,
but the incentives will favor more targeted advertising... The amount of
spam will undoubtedly decrease substantially."

The model here is the standard direct-marketing calculus of the era:

* a campaign blasts ``volume`` messages at an ``audience`` of unique
  addresses (with replacement — repeats convert nobody new);
* each audience member converts with probability ``conversion_rate`` on
  first exposure, yielding ``revenue_per_response``;
* sending costs ``cost_per_message`` (infrastructure alone in the status
  quo; infrastructure plus one e-penny under Zmail).

Expected responses with random targeting follow the coupon-collector
saturation curve ``audience * p * (1 - exp(-volume/audience))``, giving a
closed-form profit-maximising volume (:meth:`CampaignModel.optimal_volume`)
that experiments compare against brute-force simulation.

Default constants are the paper-era figures documented in DESIGN.md:
bulk-mail infrastructure at roughly $100 per million messages
($0.0001/msg) and an e-penny at $0.01.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.epenny import EPENNY_PRICE_DOLLARS

__all__ = [
    "STATUS_QUO_COST_PER_MSG",
    "ZMAIL_COST_PER_MSG",
    "SpamRegime",
    "CampaignModel",
    "cost_increase_factor",
]

# Paper-era bulk mail infrastructure: on the order of $100 per million
# messages sent through spam-friendly hosts or botnets.
STATUS_QUO_COST_PER_MSG = 0.0001

# Under Zmail the spammer additionally pays one e-penny per message.
ZMAIL_COST_PER_MSG = STATUS_QUO_COST_PER_MSG + EPENNY_PRICE_DOLLARS


@dataclass(frozen=True)
class SpamRegime:
    """A sending-cost regime (status quo, Zmail, or a sweep point)."""

    name: str
    cost_per_message: float

    def __post_init__(self) -> None:
        if self.cost_per_message < 0:
            raise ValueError("cost_per_message must be non-negative")

    @classmethod
    def status_quo(cls) -> "SpamRegime":
        """Pre-Zmail economics: infrastructure cost only."""
        return cls("status-quo", STATUS_QUO_COST_PER_MSG)

    @classmethod
    def zmail(cls, epenny_dollars: float = EPENNY_PRICE_DOLLARS) -> "SpamRegime":
        """Zmail economics: infrastructure plus the e-penny."""
        return cls("zmail", STATUS_QUO_COST_PER_MSG + epenny_dollars)


@dataclass(frozen=True)
class CampaignModel:
    """One spam campaign's market parameters.

    Attributes:
        audience: Unique reachable addresses.
        conversion_rate: First-exposure purchase probability (paper-era
            bulk spam: a few in 100,000).
        revenue_per_response: Dollars earned per conversion.
    """

    audience: int
    conversion_rate: float
    revenue_per_response: float

    def __post_init__(self) -> None:
        if self.audience <= 0:
            raise ValueError("audience must be positive")
        if not 0.0 <= self.conversion_rate <= 1.0:
            raise ValueError("conversion_rate outside [0, 1]")
        if self.revenue_per_response < 0:
            raise ValueError("revenue_per_response must be non-negative")

    # -- per-volume economics ---------------------------------------------------

    def expected_responses(self, volume: int) -> float:
        """Expected conversions from ``volume`` uniformly random sends."""
        if volume <= 0:
            return 0.0
        reached = self.audience * (1.0 - math.exp(-volume / self.audience))
        return reached * self.conversion_rate

    def expected_profit(self, volume: int, regime: SpamRegime) -> float:
        """Revenue minus sending cost at ``volume`` under ``regime``."""
        revenue = self.expected_responses(volume) * self.revenue_per_response
        return revenue - volume * regime.cost_per_message

    def break_even_response_rate(self, regime: SpamRegime) -> float:
        """Conversions-per-message needed for a marginal message to pay.

        The §1.2 break-even: a message is worth sending only if
        ``rate * revenue_per_response >= cost_per_message``.
        """
        if self.revenue_per_response == 0:
            return math.inf
        return regime.cost_per_message / self.revenue_per_response

    # -- optimal behaviour ---------------------------------------------------------

    def optimal_volume(self, regime: SpamRegime) -> int:
        """Profit-maximising volume under ``regime``.

        Marginal revenue of the v-th message is
        ``p * R * exp(-v/audience)``; setting it equal to the marginal
        cost ``c`` gives ``v* = audience * ln(p * R / c)``, floored at 0
        when even the first message loses money.
        """
        p, rev, c = (
            self.conversion_rate,
            self.revenue_per_response,
            regime.cost_per_message,
        )
        if c <= 0:
            return 10 * self.audience  # unbounded in theory; saturate
        if p * rev <= c:
            return 0
        return int(self.audience * math.log(p * rev / c))

    def optimal_profit(self, regime: SpamRegime) -> float:
        """Profit at the optimal volume."""
        return self.expected_profit(self.optimal_volume(regime), regime)


def cost_increase_factor(
    epenny_dollars: float = EPENNY_PRICE_DOLLARS,
    infra_cost: float = STATUS_QUO_COST_PER_MSG,
) -> float:
    """How many times more a message costs under Zmail (E1's headline)."""
    if infra_cost <= 0:
        return math.inf
    return (infra_cost + epenny_dollars) / infra_cost
