"""Adoption-dynamics analysis helpers (experiment E9).

The round-based positive-feedback model itself lives in
:mod:`repro.core.deployment` (it is part of the deployable system's
story); this module adds the sweep-and-summarise layer the benchmark
harness uses: run families of :class:`AdoptionSimulation` across policy
and propensity grids and report time-to-adoption curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import NonCompliantMailPolicy
from ..core.deployment import AdoptionParams, AdoptionSimulation

__all__ = ["AdoptionOutcome", "sweep_policies", "sweep_propensity"]


@dataclass(frozen=True)
class AdoptionOutcome:
    """Summary of one adoption run."""

    label: str
    rounds_to_half: int | None
    rounds_to_90pct: int | None
    final_fraction: float
    positive_feedback: bool


def _summarise(label: str, sim: AdoptionSimulation) -> AdoptionOutcome:
    return AdoptionOutcome(
        label=label,
        rounds_to_half=sim.rounds_to_fraction(0.5),
        rounds_to_90pct=sim.rounds_to_fraction(0.9),
        final_fraction=sim.rounds[-1].compliant_fraction,
        positive_feedback=sim.has_positive_feedback(),
    )


def sweep_policies(
    *,
    n_isps: int = 100,
    max_rounds: int = 60,
    seed: int = 0,
) -> list[AdoptionOutcome]:
    """Adoption under each non-compliant-mail policy (§5's lever)."""
    outcomes = []
    for policy in NonCompliantMailPolicy:
        params = AdoptionParams(n_isps=n_isps, policy=policy, seed=seed)
        sim = AdoptionSimulation(params)
        sim.run(max_rounds)
        outcomes.append(_summarise(policy.value, sim))
    return outcomes


def sweep_propensity(
    propensities: list[float],
    *,
    n_isps: int = 100,
    max_rounds: int = 120,
    seed: int = 0,
) -> list[AdoptionOutcome]:
    """Adoption speed as a function of user switch propensity."""
    outcomes = []
    for propensity in propensities:
        params = AdoptionParams(
            n_isps=n_isps, base_switch_propensity=propensity, seed=seed
        )
        sim = AdoptionSimulation(params)
        sim.run(max_rounds)
        outcomes.append(_summarise(f"propensity={propensity}", sim))
    return outcomes
