"""An adaptive, profit-driven spammer (dynamic counterpart of E2).

The closed-form analysis (:mod:`repro.economics.spammer`) assumes the
spammer knows the market. A real operator doesn't — they adjust volume by
observed return. :class:`AdaptiveSpammer` runs that feedback loop against
a live deployment: each period it blasts its current volume, observes
deliveries and (stochastic) conversions, computes realised profit, and
scales the next period's volume multiplicatively — up on profit, down on
loss.

The experiments' point: under status-quo pricing the loop *grows* to
saturation; under Zmail the very first periods lose money and the loop
drives volume toward zero. No oracle knowledge of the regime is needed —
the market signal alone kills the campaign, which is the paper's "market
forces will control the volume of spam" rendered operational.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.protocol import ZmailNetwork
from ..core.transfer import SendStatus
from ..sim.workload import Address, TrafficKind

__all__ = ["PeriodOutcome", "VolumeLearner", "AdaptiveSpammer"]

#: Default hard ceiling on the multiplicative loop. Without one, a long
#: profitable streak grows volume geometrically without bound — ~170
#: profitable periods at growth 1.5 overflow a float64's exact-integer
#: range and the "volume" stops meaning messages. Real operators are
#: bounded by infrastructure; the learner is bounded by this cap.
DEFAULT_MAX_VOLUME = 10_000_000


@dataclass
class VolumeLearner:
    """The multiplicative profit-feedback rule, extracted for reuse.

    ``update(profit)`` scales the current volume up by ``growth`` on a
    profitable period and down by ``decay`` on a loss. Two edge cases
    (both surfaced by arena reuse) are pinned here rather than left to
    ``int()`` truncation:

    * **Growth floor.** ``int(1 * 1.5) == 1``: a spammer that decayed to
      the floor could never grow again even while profitable. Growth
      always advances by at least one message.
    * **Overflow cap.** Volume is clamped to ``max_volume`` so long
      profitable streaks cannot run the multiplicative update past any
      physically meaningful blast size (see :data:`DEFAULT_MAX_VOLUME`).
    """

    volume: int
    growth: float = 1.5
    decay: float = 0.5
    min_volume: int = 1
    max_volume: int = DEFAULT_MAX_VOLUME

    def __post_init__(self) -> None:
        if self.growth <= 1.0 or not 0.0 < self.decay < 1.0:
            raise ValueError("need growth > 1 and 0 < decay < 1")
        if self.min_volume < 1:
            raise ValueError("min_volume must be >= 1")
        if self.max_volume < self.min_volume:
            raise ValueError("max_volume must be >= min_volume")
        if not self.min_volume <= self.volume <= self.max_volume:
            raise ValueError("volume outside [min_volume, max_volume]")

    def update(self, profit: float) -> int:
        """Adapt to one period's realised profit; returns the new volume."""
        if profit > 0:
            grown = max(self.volume + 1, int(self.volume * self.growth))
            self.volume = min(self.max_volume, grown)
        else:
            self.volume = max(self.min_volume, int(self.volume * self.decay))
        return self.volume


@dataclass(frozen=True)
class PeriodOutcome:
    """One period of the adaptive loop."""

    period: int
    attempted: int
    delivered: int
    blocked: int
    conversions: int
    revenue: float
    sending_cost: float

    @property
    def profit(self) -> float:
        """Realised profit for the period."""
        return self.revenue - self.sending_cost


@dataclass
class AdaptiveSpammer:
    """A volume-adjusting spam operator on a Zmail deployment.

    Attributes:
        network: The deployment to spam.
        address: The spammer's own address (compliant ISP: pays e-pennies;
            non-compliant: rides free).
        conversion_rate: Per-delivered-message purchase probability.
        revenue_per_response: Dollars per conversion.
        infra_cost_per_message: Status-quo sending cost in dollars.
        epenny_dollars: Dollar value of the e-pennies the spammer burns
            (0 when its ISP is non-compliant — nothing is debited).
        initial_volume: Period-0 blast size.
        growth / decay: Multiplicative volume factors on profit / loss.
        max_volume: Hard ceiling on the multiplicative update.
        seed: RNG seed for target choice and conversions.
    """

    network: ZmailNetwork
    address: Address
    conversion_rate: float = 0.0005
    revenue_per_response: float = 25.0
    infra_cost_per_message: float = 0.0001
    epenny_dollars: float = 0.01
    initial_volume: int = 200
    growth: float = 1.5
    decay: float = 0.5
    max_volume: int = DEFAULT_MAX_VOLUME
    seed: int = 0
    history: list[PeriodOutcome] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.conversion_rate <= 1.0:
            raise ValueError("conversion_rate outside [0, 1]")
        if self.initial_volume <= 0:
            raise ValueError("initial_volume must be positive")
        self._learner = VolumeLearner(
            volume=self.initial_volume,
            growth=self.growth,
            decay=self.decay,
            max_volume=self.max_volume,
        )
        self._rng = random.Random(self.seed)
        self._targets = [
            Address(isp, user)
            for isp in range(self.network.n_isps)
            for user in range(self.network.users_per_isp)
            if Address(isp, user) != self.address
        ]

    @property
    def current_volume(self) -> int:
        """The volume the next period will attempt."""
        return self._learner.volume

    def run_period(self) -> PeriodOutcome:
        """Blast one period's volume and adapt."""
        volume = self._learner.volume
        delivered = blocked = 0
        epennies_spent = 0
        for _ in range(volume):
            target = self._rng.choice(self._targets)
            receipt = self.network.send(self.address, target, TrafficKind.SPAM)
            if receipt.status in (
                SendStatus.SENT_PAID, SendStatus.DELIVERED_LOCAL,
            ):
                delivered += 1
                epennies_spent += 1
            elif receipt.status is SendStatus.SENT_UNPAID:
                delivered += 1
            else:
                blocked += 1
        conversions = sum(
            1 for _ in range(delivered)
            if self._rng.random() < self.conversion_rate
        )
        outcome = PeriodOutcome(
            period=len(self.history),
            attempted=volume,
            delivered=delivered,
            blocked=blocked,
            conversions=conversions,
            revenue=conversions * self.revenue_per_response,
            sending_cost=volume * self.infra_cost_per_message
            + epennies_spent * self.epenny_dollars,
        )
        self.history.append(outcome)
        self._learner.update(outcome.profit)
        return outcome

    def run(self, periods: int) -> list[PeriodOutcome]:
        """Run the loop for several periods; resets daily limits between.

        Each period is treated as one day so the §4.1 quota does not
        conflate with the economic signal.
        """
        for day in range(periods):
            self.run_period()
            self.network.advance_day_to(self.network._last_day_seen + 1)
        return self.history

    # -- analysis -----------------------------------------------------------------

    def total_profit(self) -> float:
        """Cumulative realised profit."""
        return sum(outcome.profit for outcome in self.history)

    def final_volume(self) -> int:
        """Volume the operator settled on."""
        return self._learner.volume

    def collapsed(self, *, below: int = 10) -> bool:
        """Whether the market drove the campaign to (near) zero volume."""
        return self._learner.volume < below
