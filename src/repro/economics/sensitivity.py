"""Statistical rigor for the experiments: replication and sensitivity.

The paper's claims are argued once with fixed constants; a reproduction
should know how fragile they are. This module provides:

* :func:`mean_ci` — mean with a Student-t confidence interval over
  replicated (re-seeded) runs;
* :func:`replicate` — run a seed-taking experiment across many seeds;
* :func:`elasticity` — local sensitivity of a model output to one input
  (percent change out per percent change in), used to check which
  economics claims depend on the paper's exact constants and which are
  structural.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from scipy import stats

__all__ = ["ConfidenceInterval", "mean_ci", "replicate", "elasticity"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean with its symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self) -> float:
        """Lower bound of the interval."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound of the interval."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.mean:.4g} ± {self.half_width:.2g} "
            f"({self.confidence:.0%}, n={self.n})"
        )


def mean_ci(
    values: Sequence[float], *, confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of ``values``.

    Raises:
        ValueError: with fewer than two samples (no spread estimate).
    """
    n = len(values)
    if n < 2:
        raise ValueError(f"need >= 2 samples for a CI, got {n}")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    sem = math.sqrt(variance / n)
    t_crit = float(stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return ConfidenceInterval(
        mean=mean, half_width=t_crit * sem, confidence=confidence, n=n
    )


def replicate(
    experiment: Callable[[int], float], seeds: Sequence[int]
) -> list[float]:
    """Run ``experiment(seed)`` once per seed and collect the outputs."""
    if not seeds:
        raise ValueError("need at least one seed")
    return [float(experiment(seed)) for seed in seeds]


def elasticity(
    model: Callable[[float], float],
    base_input: float,
    *,
    relative_step: float = 0.05,
) -> float:
    """Local elasticity d(log output)/d(log input) via central differences.

    An elasticity near 0 means the output barely depends on the input
    (the claim is structural); near ±1 it moves proportionally.

    Raises:
        ValueError: if inputs or outputs are non-positive (logs needed).
    """
    if base_input <= 0:
        raise ValueError("elasticity needs a positive base input")
    if not 0.0 < relative_step < 1.0:
        raise ValueError("relative_step must be in (0, 1)")
    lo_in = base_input * (1.0 - relative_step)
    hi_in = base_input * (1.0 + relative_step)
    lo_out = model(lo_in)
    hi_out = model(hi_in)
    if lo_out <= 0 or hi_out <= 0:
        raise ValueError("elasticity needs positive model outputs")
    return (math.log(hi_out) - math.log(lo_out)) / (
        math.log(hi_in) - math.log(lo_in)
    )
