"""Normal-user flow analysis: the zero-net-cost claim (experiment E4).

§1.2 claim 2: "Users who receive as much email as they send, on average,
will neither pay nor profit from email, once they have set up initial
balances with their ISPs to buffer the fluctuations."

:func:`analyze_user_flows` reads lifetime send/receive counts out of a
driven :class:`~repro.core.protocol.ZmailNetwork` and summarises the
distribution of per-user net e-penny flow, and
:func:`required_buffer` estimates the initial balance needed to ride out
fluctuations at a given confidence level for a balanced sender (a random
walk's excursion bound).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.protocol import ZmailNetwork
from ..sim.metrics import summary_stats
from ..sim.workload import TrafficKind

__all__ = ["UserFlowSummary", "analyze_user_flows", "required_buffer"]


@dataclass(frozen=True)
class UserFlowSummary:
    """Distribution of per-user net e-penny flow across a deployment."""

    users: int
    mean_net_flow: float
    stddev_net_flow: float
    min_net_flow: int
    max_net_flow: int
    mean_sent: float
    mean_received: float
    fraction_within: float  # |net| <= tolerance
    tolerance: int

    @property
    def mean_net_dollars(self) -> float:
        """Mean net flow expressed in dollars at the e-penny price."""
        from ..core.epenny import epennies_to_dollars

        return epennies_to_dollars(int(round(self.mean_net_flow)))


def analyze_user_flows(
    network: ZmailNetwork, *, exclude: set | None = None, tolerance: int = 10
) -> UserFlowSummary:
    """Summarise net e-penny flow per user over everything sent so far.

    Args:
        exclude: Addresses to omit (spammers, list distributors — actors
            whose flows are intentionally unbalanced).
        tolerance: Net-flow magnitude counted as "effectively zero".
    """
    exclude = exclude or set()
    flows: list[int] = []
    sent: list[int] = []
    received: list[int] = []
    for isp_id, isp in sorted(network.compliant_isps().items()):
        for user in isp.ledger.users():
            from ..sim.workload import Address

            if Address(isp_id, user.user_id) in exclude:
                continue
            flows.append(user.net_epenny_flow)
            sent.append(user.lifetime_sent)
            received.append(user.lifetime_received)
    stats = summary_stats(flows)
    within = sum(1 for f in flows if abs(f) <= tolerance)
    return UserFlowSummary(
        users=len(flows),
        mean_net_flow=stats["mean"],
        stddev_net_flow=stats["stddev"],
        min_net_flow=int(stats["min"]) if flows else 0,
        max_net_flow=int(stats["max"]) if flows else 0,
        mean_sent=summary_stats(sent)["mean"],
        mean_received=summary_stats(received)["mean"],
        fraction_within=within / len(flows) if flows else 0.0,
        tolerance=tolerance,
    )


def required_buffer(
    messages_per_day: float, days: int, *, confidence: float = 0.99
) -> int:
    """Initial e-penny balance buffering a balanced user's fluctuations.

    A user sending and receiving ``messages_per_day`` each (independent
    Poisson) has a net-flow random walk whose position after ``days`` has
    standard deviation ``sqrt(2 * rate * days)``. The returned buffer
    covers the walk's *minimum* over the period at roughly the requested
    confidence, using the reflection principle (factor ~2 on the tail).
    """
    if messages_per_day < 0 or days <= 0:
        raise ValueError("need non-negative rate and positive days")
    if not 0.5 <= confidence < 1.0:
        raise ValueError("confidence must be in [0.5, 1)")
    sigma = math.sqrt(2.0 * messages_per_day * days)
    # Inverse normal tail via the Beasley-Springer/Moro-lite approximation
    # is overkill; a conservative bound from the complementary error
    # function inverse at (1-confidence)/2 does the job.
    z = _z_for_tail((1.0 - confidence) / 2.0)
    return int(math.ceil(z * sigma))


def _z_for_tail(tail: float) -> float:
    """Smallest z with P(N(0,1) > z) <= tail, by bisection on erfc."""
    lo, hi = 0.0, 10.0
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if 0.5 * math.erfc(mid / math.sqrt(2.0)) > tail:
            lo = mid
        else:
            hi = mid
    return hi
