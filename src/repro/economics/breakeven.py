"""Break-even analysis across cost regimes (experiment E1).

Computes the tables behind the paper's "two orders of magnitude" claim:
per-message cost ratios, break-even response rates, and the campaign
types that remain profitable under Zmail (targeted, high-value) versus
those that die (indiscriminate bulk).
"""

from __future__ import annotations

from dataclasses import dataclass

from .spammer import CampaignModel, SpamRegime

__all__ = ["BreakEvenRow", "break_even_table", "surviving_campaigns"]


@dataclass(frozen=True)
class BreakEvenRow:
    """One row of the E1 comparison table."""

    campaign: str
    conversion_rate: float
    revenue_per_response: float
    statusquo_volume: int
    statusquo_profit: float
    zmail_volume: int
    zmail_profit: float

    @property
    def volume_reduction(self) -> float:
        """Fraction of the status-quo volume eliminated by Zmail."""
        if self.statusquo_volume == 0:
            return 0.0
        return 1.0 - self.zmail_volume / self.statusquo_volume

    @property
    def survives(self) -> bool:
        """Whether any profitable volume remains under Zmail."""
        return self.zmail_volume > 0


# Representative paper-era campaign archetypes: (name, conversion rate,
# revenue per response). Bulk spam converts a few per hundred thousand;
# targeted commercial email converts orders of magnitude better.
DEFAULT_CAMPAIGNS: list[tuple[str, float, float]] = [
    ("pharma-bulk", 0.00003, 25.0),
    ("mortgage-bulk", 0.00005, 40.0),
    ("scam-bulk", 0.00001, 200.0),
    ("targeted-niche", 0.002, 30.0),
    ("opt-in-retail", 0.01, 15.0),
]


def break_even_table(
    *,
    audience: int = 1_000_000,
    campaigns: list[tuple[str, float, float]] | None = None,
    zmail_regime: SpamRegime | None = None,
) -> list[BreakEvenRow]:
    """Optimal volume and profit per campaign under both regimes."""
    status_quo = SpamRegime.status_quo()
    zmail = zmail_regime or SpamRegime.zmail()
    rows = []
    for name, rate, revenue in campaigns or DEFAULT_CAMPAIGNS:
        model = CampaignModel(
            audience=audience,
            conversion_rate=rate,
            revenue_per_response=revenue,
        )
        rows.append(
            BreakEvenRow(
                campaign=name,
                conversion_rate=rate,
                revenue_per_response=revenue,
                statusquo_volume=model.optimal_volume(status_quo),
                statusquo_profit=model.optimal_profit(status_quo),
                zmail_volume=model.optimal_volume(zmail),
                zmail_profit=model.optimal_profit(zmail),
            )
        )
    return rows


def surviving_campaigns(rows: list[BreakEvenRow]) -> list[str]:
    """Names of campaigns still profitable under Zmail — the paper expects
    only the targeted ones to appear here."""
    return [row.campaign for row in rows if row.survives]
