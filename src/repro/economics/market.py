"""Whole-market view: how Zmail shifts traffic composition (§1.2).

Combines the spammer model (how much spam profit-maximisers still send),
the paper's cited traffic shares, and the ISP cost model into a single
before/after market summary used by the headline experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from .isp_costs import SPAM_SHARE_2004, ISPCostModel
from .spammer import CampaignModel, SpamRegime

__all__ = ["MarketState", "project_market"]


@dataclass(frozen=True)
class MarketState:
    """Traffic composition and cost under one regime."""

    regime: str
    legitimate_volume: float
    spam_volume: float
    isp_annual_cost: float

    @property
    def spam_share(self) -> float:
        """Spam as a fraction of all traffic."""
        total = self.legitimate_volume + self.spam_volume
        return self.spam_volume / total if total else 0.0


def project_market(
    *,
    campaigns: list[CampaignModel],
    legitimate_volume: float = 1e9,
    cost_model: ISPCostModel | None = None,
    calibrate_to_share: float = SPAM_SHARE_2004,
) -> tuple[MarketState, MarketState]:
    """Project the market before and after Zmail.

    Campaign volumes are scaled so the status-quo spam share matches
    ``calibrate_to_share`` (Brightmail's 60%), then each profit-maximising
    spammer re-optimises under Zmail pricing. Returns
    ``(status_quo_state, zmail_state)``.
    """
    if not campaigns:
        raise ValueError("need at least one campaign")
    cost_model = cost_model or ISPCostModel(
        legitimate_messages_per_year=legitimate_volume
    )
    status_quo = SpamRegime.status_quo()
    zmail = SpamRegime.zmail()

    raw_before = sum(c.optimal_volume(status_quo) for c in campaigns)
    target_spam = legitimate_volume * calibrate_to_share / (1.0 - calibrate_to_share)
    scale = target_spam / raw_before if raw_before else 0.0

    spam_before = raw_before * scale
    spam_after = sum(c.optimal_volume(zmail) for c in campaigns) * scale

    share_before = spam_before / (legitimate_volume + spam_before)
    share_after = spam_after / (legitimate_volume + spam_after)

    before = MarketState(
        regime="status-quo",
        legitimate_volume=legitimate_volume,
        spam_volume=spam_before,
        isp_annual_cost=cost_model.annual_cost(share_before).total,
    )
    after = MarketState(
        regime="zmail",
        legitimate_volume=legitimate_volume,
        spam_volume=spam_after,
        isp_annual_cost=cost_model.annual_cost(
            share_after, filtering_enabled=False
        ).total,
    )
    return before, after
