"""The columnar batch executor: vectorized direct-mode scenario runs.

``run_columnar`` drives a :class:`~repro.core.scenario.Scenario` through
the same protocol decisions as the direct executor, but applies them as
masked numpy operations over :class:`~repro.columnar.state.ColumnarState`
instead of per-message method calls. Each time-sorted
:class:`~repro.columnar.plan.ChunkPlan` is cut at protocol boundaries
(reconciliation cuts, midnight rollovers) and each boundary-free
sub-batch is partitioned into three exact-equivalence classes:

* **blocked-limit**: messages whose sender is already at the daily limit
  when the sub-batch starts. Blocked sends never advance ``sent_today``,
  so the sender stays at the limit for the whole sub-batch and every one
  of its messages blocks — pure counter arithmetic, applied with
  ``bincount``.
* **safe**: the sender starts with ``balance >= its send count`` and
  ``sent_today + count <= limit``, and the recipient is not *contended*
  (below). Every interleaving of such sends succeeds with the same
  per-message outcome, and all mutations are additive (debits, credits,
  counters, the antisymmetric credit matrix), so the whole class is
  order-independent and applied as scatter-adds.
* **contended residual**: everything else — senders that may run out of
  balance or hit the limit mid-batch (where auto top-up draws on the
  shared pool, and outcomes depend on interleaving), plus safe-sender
  messages whose *recipient* is contended (its incoming credits must
  land between its own sends in true order). Replayed one message at a
  time, in original arrival order, directly against the arrays.

Correctness rests on the classes being exact, not heuristic: the safe
class provably cannot interact with the residual's outcomes, so
vector-then-scalar application is equivalent to the fully ordered run.
The cross-mode tests and the macro benchmark assert the resulting
accounting digests are byte-identical to direct mode at every
reconciliation cut.

With a tracer enabled, a per-sub-batch emission pass replays the
``topup``/``send``/``deliver`` events in original message order with the
direct-mode clock, so even the *ordered* event stream matches direct
mode byte for byte (asserted in tests); tracing changes no outcome.
"""

from __future__ import annotations

from ..core.isp import CompliantISP
from ..core.zombie import ZombieMonitor
from ..errors import SimulationError
from ..obs.manifest import accounting_digest
from ..sim.clock import DAY
from ..sim.rng import HAVE_NUMPY, SeededStreams
from .plan import KIND_ORDER, merge_column_streams
from .state import ColumnarState

__all__ = ["run_columnar"]

# Per-message outcome codes (uint8), indexing _STATUS_VALUES.
_DELIVERED_LOCAL = 0
_SENT_PAID = 1
_BLOCKED_BALANCE = 2
_BLOCKED_LIMIT = 3
_STATUS_VALUES = (
    "delivered_local",
    "sent_paid",
    "blocked_balance",
    "blocked_limit",
)
_KIND_VALUES = tuple(kind.value for kind in KIND_ORDER)


def run_columnar(scenario):
    """Execute ``scenario`` with the columnar batch executor."""
    if not HAVE_NUMPY:
        raise SimulationError("columnar mode requires numpy")
    if scenario.engine_mode:
        raise SimulationError("columnar mode is a direct-mode executor")
    import numpy as np

    network = scenario.build_network()
    if any(
        not isinstance(isp, CompliantISP) for isp in network.isps.values()
    ):
        raise SimulationError(
            "columnar mode requires an all-compliant deployment"
        )
    monitor = ZombieMonitor(network)
    for spec in scenario.spammers:
        if spec.war_chest:
            network.fund_user(spec.address, epennies=spec.war_chest)

    streams = SeededStreams(scenario.seed)
    chunks = merge_column_streams(scenario.workload_column_streams(streams))

    state = ColumnarState(network)
    tracer = network.tracer
    period = scenario.reconcile_every
    next_reconcile = period if period > 0 else None
    reconciliations = []
    cut_digests = []
    attempted = 0

    def boundary_reconcile():
        nonlocal next_reconcile
        state.spill()
        reconciliations.append(network.reconcile("direct"))
        cut_digests.append(accounting_digest(network))
        state.refresh()
        next_reconcile += period

    with network.spans.span("workload.batch"):
        for chunk in chunks:
            times = chunk.times
            pos, n = 0, len(times)
            while pos < n:
                t_pos = float(times[pos])
                if next_reconcile is not None and t_pos >= next_reconcile:
                    boundary_reconcile()
                if int(t_pos // DAY) > network._last_day_seen:
                    state.spill()
                    network.note_time(t_pos)
                    state.refresh()
                limit_t = np.inf if next_reconcile is None else next_reconcile
                next_midnight = (network._last_day_seen + 1) * DAY
                if next_midnight < limit_t:
                    limit_t = next_midnight
                end = pos + 1 + int(
                    np.searchsorted(times[pos + 1 :], limit_t, side="left")
                )
                _execute_batch(np, network, state, tracer, chunk, pos, end)
                attempted += end - pos
                pos = end

    state.spill()
    network.note_time(scenario.duration)
    reconciliations.append(network.reconcile("direct"))
    cut_digests.append(accounting_digest(network))
    monitor.poll()
    result = scenario._collect(network, monitor, attempted, reconciliations)
    result.cut_digests = cut_digests
    return result


def _execute_batch(np, network, state, tracer, chunk, pos, end):
    """Apply one boundary-free sub-batch to the arrays."""
    senders = chunk.senders[pos:end]
    recipients = chunk.recipients[pos:end]
    kinds = chunk.kinds[pos:end]
    n_users = state.n_users
    upi = state.users_per_isp

    # -- classification (all decisions from sub-batch start state) ----------
    send_count = np.bincount(senders, minlength=n_users)
    at_limit = state.sent_today >= state.daily_limit
    contended = (
        ~at_limit
        & (send_count > 0)
        & (
            (state.balance < send_count)
            | (state.sent_today + send_count > state.daily_limit)
        )
    )
    msg_at_limit = at_limit[senders]
    msg_scalar = ~msg_at_limit & (contended[senders] | contended[recipients])
    msg_safe = ~msg_at_limit & ~msg_scalar

    traced = tracer.enabled
    status = np.empty(end - pos, dtype=np.uint8) if traced else None
    topups = None

    # -- blocked-limit class: counters only ---------------------------------
    if msg_at_limit.any():
        lim_senders = senders[msg_at_limit]
        per_user = np.bincount(lim_senders, minlength=n_users)
        state.limit_warnings += per_user
        state.limit_hits += per_user
        state.stats_blocked_limit += np.bincount(
            lim_senders // upi, minlength=state.n_isps
        )
        state.bump_metric("send.blocked_limit", int(len(lim_senders)))
        _bump_kind_metrics(np, state, "send.kind.", kinds[msg_at_limit])
        if traced:
            status[msg_at_limit] = _BLOCKED_LIMIT

    # -- safe class: scatter-applied debits/credits -------------------------
    if msg_safe.any():
        safe_s = senders[msg_safe]
        safe_r = recipients[msg_safe]
        sent = np.bincount(safe_s, minlength=n_users)
        received = np.bincount(safe_r, minlength=n_users)
        state.balance += received
        state.balance -= sent
        state.sent_today += sent
        state.lifetime_sent += sent
        state.lifetime_received += received
        state.lifetime_received_paid += received
        state.inbox += received
        src_isp = safe_s // upi
        dst_isp = safe_r // upi
        local = src_isp == dst_isp
        n_local = int(local.sum())
        n_remote = len(safe_s) - n_local
        state.stats_delivered_local += np.bincount(
            src_isp[local], minlength=state.n_isps
        )
        if n_remote:
            remote_src = src_isp[~local]
            remote_dst = dst_isp[~local]
            state.stats_sent_paid += np.bincount(
                remote_src, minlength=state.n_isps
            )
            state.stats_received_paid += np.bincount(
                remote_dst, minlength=state.n_isps
            )
            pair_counts = np.bincount(
                remote_src * state.n_isps + remote_dst,
                minlength=state.n_isps * state.n_isps,
            ).reshape(state.n_isps, state.n_isps)
            state.credit += pair_counts
            state.credit -= pair_counts.T
            traded = pair_counts > 0
            state.touched |= traded
            state.touched |= traded.T
            state.bump_metric("deliver.delivered", n_remote)
            _bump_kind_metrics(
                np, state, "deliver.kind.", kinds[msg_safe][~local]
            )
        state.bump_metric("send.delivered_local", n_local)
        state.bump_metric("send.sent_paid", n_remote)
        _bump_kind_metrics(np, state, "send.kind.", kinds[msg_safe])
        if traced:
            status[msg_safe] = np.where(local, _DELIVERED_LOCAL, _SENT_PAID)

    # -- contended residual: exact per-message replay in arrival order ------
    if msg_scalar.any():
        topups = _run_scalar(
            np, network, state, senders, recipients, kinds, msg_scalar,
            status,
        )

    if traced:
        _emit_batch(
            network, tracer, chunk, pos, end, status, topups, msg_scalar, upi
        )


def _run_scalar(np, network, state, senders, recipients, kinds, mask, status):
    """Replay contended messages one at a time against the arrays.

    Mirrors ``CompliantISP._submit_now`` + ``ZmailNetwork``'s auto top-up
    retry exactly, including the ISP-stats double count: a transient
    balance block books ``stats.blocked_balance`` *and* the retried
    outcome, while network metrics only see the final status.
    """
    upi = state.users_per_isp
    auto_topup = network.config.auto_topup_amount
    balance = state.balance
    account = state.account
    sent_today = state.sent_today
    daily_limit = state.daily_limit
    indices = mask.nonzero()[0]
    topup_amounts = [0] * len(indices) if status is not None else None
    status_counts = [0, 0, 0, 0]
    kind_counts = [0] * len(_KIND_VALUES)
    deliver_kind_counts = [0] * len(_KIND_VALUES)
    delivered_remote = 0
    topup_count = 0
    topup_epennies = 0

    for slot, (s, r, k) in enumerate(
        zip(
            senders[mask].tolist(),
            recipients[mask].tolist(),
            kinds[mask].tolist(),
        )
    ):
        isp_s = s // upi
        if sent_today[s] >= daily_limit[s]:
            state.limit_warnings[s] += 1
            state.stats_blocked_limit[isp_s] += 1
            state.limit_hits[s] += 1
            outcome = _BLOCKED_LIMIT
        else:
            blocked = False
            if balance[s] < 1:
                state.stats_blocked_balance[isp_s] += 1
                amount = 0
                if auto_topup > 0:
                    amount = min(auto_topup, account[s], state.pool[isp_s])
                if amount > 0:
                    account[s] -= amount
                    state.cash[isp_s] += amount
                    balance[s] += amount
                    state.pool[isp_s] -= amount
                    topup_count += 1
                    topup_epennies += int(amount)
                    if topup_amounts is not None:
                        topup_amounts[slot] = int(amount)
                else:
                    blocked = True
                    outcome = _BLOCKED_BALANCE
            if not blocked:
                balance[s] -= 1
                sent_today[s] += 1
                state.lifetime_sent[s] += 1
                balance[r] += 1
                state.lifetime_received[r] += 1
                state.lifetime_received_paid[r] += 1
                state.inbox[r] += 1
                isp_r = r // upi
                if isp_s == isp_r:
                    state.stats_delivered_local[isp_s] += 1
                    outcome = _DELIVERED_LOCAL
                else:
                    state.stats_sent_paid[isp_s] += 1
                    state.stats_received_paid[isp_r] += 1
                    state.credit[isp_s, isp_r] += 1
                    state.credit[isp_r, isp_s] -= 1
                    state.touched[isp_s, isp_r] = True
                    state.touched[isp_r, isp_s] = True
                    delivered_remote += 1
                    deliver_kind_counts[k] += 1
                    outcome = _SENT_PAID
        status_counts[outcome] += 1
        kind_counts[k] += 1
        if status is not None:
            status[indices[slot]] = outcome

    for code, count in enumerate(status_counts):
        state.bump_metric(f"send.{_STATUS_VALUES[code]}", count)
    for code, count in enumerate(kind_counts):
        state.bump_metric(f"send.kind.{_KIND_VALUES[code]}", count)
    state.bump_metric("deliver.delivered", delivered_remote)
    for code, count in enumerate(deliver_kind_counts):
        state.bump_metric(f"deliver.kind.{_KIND_VALUES[code]}", count)
    state.bump_metric("topup.count", topup_count)
    state.bump_metric("topup.epennies", topup_epennies)
    return topup_amounts


def _bump_kind_metrics(np, state, prefix, kind_codes):
    counts = np.bincount(kind_codes, minlength=len(_KIND_VALUES))
    for code, count in enumerate(counts.tolist()):
        if count:
            state.bump_metric(f"{prefix}{_KIND_VALUES[code]}", count)


def _emit_batch(
    network, tracer, chunk, pos, end, status, topups, msg_scalar, upi
):
    """Traced runs: replay the sub-batch's events in original order."""
    emit = tracer.emit
    addresses = _address_strings(network)
    scalar_slot = {
        int(index): slot for slot, index in enumerate(msg_scalar.nonzero()[0])
    } if topups is not None else {}
    times = chunk.times[pos:end].tolist()
    senders = chunk.senders[pos:end].tolist()
    recipients = chunk.recipients[pos:end].tolist()
    kinds = chunk.kinds[pos:end].tolist()
    for index, (t, s, r, k) in enumerate(
        zip(times, senders, recipients, kinds)
    ):
        network._direct_now = t
        slot = scalar_slot.get(index)
        if slot is not None and topups[slot] > 0:
            emit("topup", isp=s // upi, user=s % upi, amount=topups[slot])
        outcome = int(status[index])
        kind_value = _KIND_VALUES[k]
        emit(
            "send",
            src=addresses[s],
            dst=addresses[r],
            kind=kind_value,
            status=_STATUS_VALUES[outcome],
        )
        if outcome == _SENT_PAID:
            emit(
                "deliver",
                src=addresses[s],
                dst=addresses[r],
                kind=kind_value,
                ok=True,
            )


def _address_strings(network):
    cache = getattr(network, "_columnar_addresses", None)
    if cache is None:
        upi = network.users_per_isp
        cache = [
            f"user{g % upi}@isp{g // upi}"
            for g in range(network.n_isps * upi)
        ]
        network._columnar_addresses = cache
    return cache
