"""Columnar struct-of-arrays batch executor (the ``columnar`` drive mode).

Pushes the direct-mode hot path toward millions of messages per second
by executing time-sorted workload chunks as vectorized masked numpy
operations over flat per-user/per-ISP arrays, while keeping the object
layer (``ZmailNetwork``/``ISP``/ledger) the source of truth at every
protocol-visible boundary. See DESIGN.md §10.

* :mod:`~repro.columnar.plan` — column-stream merge into sorted chunks;
* :mod:`~repro.columnar.state` — the array mirror with spill/refresh;
* :mod:`~repro.columnar.executor` — classification, vector apply and
  the contended scalar residual.
"""

from .executor import run_columnar
from .plan import ChunkPlan, merge_column_streams
from .state import ColumnarState

__all__ = [
    "run_columnar",
    "ChunkPlan",
    "merge_column_streams",
    "ColumnarState",
]
