"""Struct-of-arrays mirror of an all-compliant ``ZmailNetwork``.

:class:`ColumnarState` flattens every per-user purse and counter, every
per-ISP ledger scalar and delivery statistic, and the inter-ISP credit
arrays into numpy arrays indexed by the flat user gid
``isp * users_per_isp + user`` (or by ISP id). While a batch executes,
the arrays are the authoritative copy; :meth:`spill` writes every field
back into the object layer before any protocol-visible operation
(reconciliation cut, midnight rollover, final zombie poll) so
``ZmailNetwork``/``ISP``/ledger semantics remain the source of truth,
and :meth:`refresh` reloads the arrays afterwards to pick up whatever
the object layer changed (credit reset at a cut, ``sent_today`` reset
and pool rebalancing at midnight).

The credit matrix needs a companion boolean *touched* mask: the object
layer's credit dicts materialize a key on first use and keep it at zero
thereafter (``get + 1`` then ``- 1``), so reproducing the exact dict key
sets — which reconciliation reports and state digests observe — requires
remembering which pairs traded at all, not just the net credit.
"""

from __future__ import annotations

__all__ = ["ColumnarState"]


class ColumnarState:
    """Numpy mirror of users, ledgers, stats and credit for one network."""

    def __init__(self, network) -> None:
        import numpy as np

        self._np = np
        self.network = network
        self.n_isps = network.n_isps
        self.users_per_isp = network.users_per_isp
        self.n_users = self.n_isps * self.users_per_isp
        n, k = self.n_users, self.n_isps
        # Per-user columns (gid-indexed).
        self.account = np.zeros(n, dtype=np.int64)
        self.balance = np.zeros(n, dtype=np.int64)
        self.daily_limit = np.zeros(n, dtype=np.int64)
        self.sent_today = np.zeros(n, dtype=np.int64)
        self.lifetime_sent = np.zeros(n, dtype=np.int64)
        self.lifetime_received = np.zeros(n, dtype=np.int64)
        self.lifetime_received_paid = np.zeros(n, dtype=np.int64)
        self.limit_warnings = np.zeros(n, dtype=np.int64)
        self.inbox = np.zeros(n, dtype=np.int64)
        self.limit_hits = np.zeros(n, dtype=np.int64)
        # Per-ISP columns.
        self.pool = np.zeros(k, dtype=np.int64)
        self.cash = np.zeros(k, dtype=np.int64)
        self.stats_sent_paid = np.zeros(k, dtype=np.int64)
        self.stats_delivered_local = np.zeros(k, dtype=np.int64)
        self.stats_received_paid = np.zeros(k, dtype=np.int64)
        self.stats_blocked_balance = np.zeros(k, dtype=np.int64)
        self.stats_blocked_limit = np.zeros(k, dtype=np.int64)
        # Inter-ISP credit: credit[a][b] lives at M[a, b]; touched marks
        # dict keys that exist (possibly at zero net credit).
        self.credit = np.zeros((k, k), dtype=np.int64)
        self.touched = np.zeros((k, k), dtype=bool)
        # Network-level metric deltas, applied to the counters at spill.
        self.metric_deltas: dict[str, int] = {}
        self.refresh()

    # -- object layer -> arrays ------------------------------------------------

    def refresh(self) -> None:
        """Reload every array from the object layer (boundaries are rare)."""
        upi = self.users_per_isp
        for isp_id, isp in self.network.compliant_isps().items():
            base = isp_id * upi
            ledger = isp.ledger
            for user in ledger.users():
                g = base + user.user_id
                self.account[g] = user.account
                self.balance[g] = user.balance
                self.daily_limit[g] = user.daily_limit
                self.sent_today[g] = user.sent_today
                self.lifetime_sent[g] = user.lifetime_sent
                self.lifetime_received[g] = user.lifetime_received
                self.lifetime_received_paid[g] = user.lifetime_received_paid
                self.limit_warnings[g] = user.limit_warnings
                self.inbox[g] = user.inbox
                self.limit_hits[g] = 0
            for user_id, hits in isp.limit_hits.items():
                self.limit_hits[base + user_id] = hits
            self.pool[isp_id] = ledger.pool
            self.cash[isp_id] = ledger.cash
            stats = isp.stats
            self.stats_sent_paid[isp_id] = stats.sent_paid
            self.stats_delivered_local[isp_id] = stats.delivered_local
            self.stats_received_paid[isp_id] = stats.received_paid
            self.stats_blocked_balance[isp_id] = stats.blocked_balance
            self.stats_blocked_limit[isp_id] = stats.blocked_limit
            self.credit[isp_id, :] = 0
            self.touched[isp_id, :] = False
            for peer, value in isp.credit.items():
                self.credit[isp_id, peer] = value
                self.touched[isp_id, peer] = True

    # -- arrays -> object layer ------------------------------------------------

    def spill(self) -> None:
        """Write the arrays back so the object layer is authoritative."""
        upi = self.users_per_isp
        for isp_id, isp in self.network.compliant_isps().items():
            base = isp_id * upi
            ledger = isp.ledger
            for user in ledger.users():
                g = base + user.user_id
                user.account = int(self.account[g])
                user.balance = int(self.balance[g])
                user.sent_today = int(self.sent_today[g])
                user.lifetime_sent = int(self.lifetime_sent[g])
                user.lifetime_received = int(self.lifetime_received[g])
                user.lifetime_received_paid = int(
                    self.lifetime_received_paid[g]
                )
                user.limit_warnings = int(self.limit_warnings[g])
                user.inbox = int(self.inbox[g])
            hits = self.limit_hits[base : base + upi]
            isp.limit_hits = {
                int(user_id): int(hits[user_id])
                for user_id in hits.nonzero()[0]
            }
            ledger.pool = int(self.pool[isp_id])
            ledger.cash = int(self.cash[isp_id])
            stats = isp.stats
            stats.sent_paid = int(self.stats_sent_paid[isp_id])
            stats.delivered_local = int(self.stats_delivered_local[isp_id])
            stats.received_paid = int(self.stats_received_paid[isp_id])
            stats.blocked_balance = int(self.stats_blocked_balance[isp_id])
            stats.blocked_limit = int(self.stats_blocked_limit[isp_id])
            isp.credit = {
                int(peer): int(self.credit[isp_id, peer])
                for peer in self.touched[isp_id].nonzero()[0]
            }
        counter = self.network.metrics.counter
        for name, delta in self.metric_deltas.items():
            if delta:
                counter(name).increment(delta)
        self.metric_deltas.clear()

    def bump_metric(self, name: str, delta: int) -> None:
        """Accumulate a network metric delta for the next spill."""
        if delta:
            self.metric_deltas[name] = self.metric_deltas.get(name, 0) + delta
