"""Chunk planning: k-way merge of column streams into sorted batches.

A *column stream* is ``(kind, chunks)`` where ``chunks`` iterates
``(times, sender_gids, recipient_gids)`` numpy triples in time order
(see ``generate_columns`` on the workload classes). The merger combines
every stream into one globally time-ordered sequence of
:class:`ChunkPlan` batches without ever materializing the full workload:
each round it buffers at most one pending chunk per stream, cuts all
buffers at the *horizon* — the smallest last-buffered time across live
streams, below which no stream can still produce an arrival — and
stable-sorts the concatenated prefix.

Tie-breaking matches :func:`repro.sim.workload.merge_workloads` exactly:
``heapq.merge`` breaks equal keys by input order, and a stable argsort
over a stream-ordered concatenation does the same, so the columnar
executor sees the identical request sequence the object executors see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..sim.workload import TrafficKind

__all__ = ["KIND_ORDER", "ChunkPlan", "merge_column_streams"]

#: Fixed kind-code table: index into this tuple is the uint8 code carried
#: in :attr:`ChunkPlan.kinds`.
KIND_ORDER = tuple(TrafficKind)


@dataclass(frozen=True, slots=True)
class ChunkPlan:
    """One globally time-sorted batch of sends as parallel columns."""

    times: object  # float64[n] — non-decreasing
    senders: object  # int64[n] — flat user gids
    recipients: object  # int64[n]
    kinds: object  # uint8[n] — indices into KIND_ORDER

    def __len__(self) -> int:
        return len(self.times)


def merge_column_streams(
    streams: list[tuple[TrafficKind, Iterator[tuple]]],
) -> Iterator[ChunkPlan]:
    """Merge per-workload column streams into sorted :class:`ChunkPlan`\\ s."""
    import numpy as np

    kind_code = {kind: code for code, kind in enumerate(KIND_ORDER)}
    # Per stream: [chunk iterator or None when exhausted, buffered triple
    # or None when drained, kind code]. List order is stream order — the
    # tie-break contract.
    entries = [
        [iter(chunks), None, kind_code[kind]] for kind, chunks in streams
    ]
    while True:
        alive = []
        for entry in entries:
            while entry[1] is None and entry[0] is not None:
                try:
                    candidate = next(entry[0])
                except StopIteration:
                    entry[0] = None
                    break
                if len(candidate[0]):
                    entry[1] = candidate
            if entry[1] is not None:
                alive.append(entry)
        if not alive:
            return
        horizon = min(entry[1][0][-1] for entry in alive)
        parts_t, parts_s, parts_r, parts_k = [], [], [], []
        for entry in alive:
            times, senders, recipients = entry[1]
            cut = int(np.searchsorted(times, horizon, side="right"))
            if cut == 0:
                continue
            parts_t.append(times[:cut])
            parts_s.append(senders[:cut])
            parts_r.append(recipients[:cut])
            parts_k.append(np.full(cut, entry[2], dtype=np.uint8))
            entry[1] = (
                (times[cut:], senders[cut:], recipients[cut:])
                if cut < len(times)
                else None
            )
        times = np.concatenate(parts_t)
        order = np.argsort(times, kind="stable")
        yield ChunkPlan(
            times=times[order],
            senders=np.concatenate(parts_s)[order],
            recipients=np.concatenate(parts_r)[order],
            kinds=np.concatenate(parts_k)[order],
        )
