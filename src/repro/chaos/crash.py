"""Crash/restart of individual nodes mid-run.

The crash model is fail-stop with durable storage:

* **Crash** — the node's durable state (ledger, credit arrays, bank
  accounts — exactly what :mod:`repro.core.persistence` journals) is
  written out at the crash instant; everything volatile is lost: frames
  in flight to and from the node, an open snapshot pause, the buffered
  outbox. The node's reliable endpoints are torn down (cancelling their
  retransmission timers) but keep their sequence state — that is the
  mail-queue journal.
* **Restart** — a *fresh* node object is built and the journal loaded
  into it (for ISPs; the bank restores in place), the endpoint reopens
  and resumes retransmitting unacked mail, and any user submissions that
  arrived while the node was down (queued client-side by the deployment)
  are flushed.

Journals round-trip through actual JSON text, not live object graphs, so
a restart can only see what a real process would find on disk. The text
is a sealed record (:mod:`repro.store.codec`): canonical JSON plus a
SHA-256 checksum bound to the node's name, so a corrupted journal —
truncated, bit-flipped, even a flipped digit that still parses — raises
:class:`~repro.errors.SimulationError` instead of restoring a wrong
ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core import persistence
from ..core.isp import CompliantISP
from ..errors import SimulationError
from ..store.codec import seal, unseal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .deployment import ChaosDeployment

__all__ = ["CrashEvent", "CrashController"]


@dataclass(frozen=True)
class CrashEvent:
    """One scheduled crash: ``node`` goes down at ``at`` for ``down_for``."""

    node: str
    at: float
    down_for: float

    def __post_init__(self) -> None:
        if self.at < 0 or self.down_for <= 0:
            raise SimulationError(
                f"crash of {self.node!r} needs at >= 0 and down_for > 0"
            )


class CrashController:
    """Executes scheduled crashes and restarts against a deployment."""

    def __init__(self, deployment: "ChaosDeployment") -> None:
        self.deployment = deployment
        self._journals: dict[str, str] = {}
        self.crashes = 0
        self.restarts = 0

    def schedule(self, event: CrashEvent) -> None:
        """Arm one crash/restart pair on the deployment's engine."""
        deployment = self.deployment
        if event.node != "bank":
            isp_id = self._isp_id(event.node)
            if not isinstance(deployment.network.isps[isp_id], CompliantISP):
                raise SimulationError(
                    f"cannot crash non-compliant {event.node!r} "
                    "(it keeps no durable state to restore)"
                )
        deployment.engine.schedule_at(
            event.at, lambda: self.crash(event.node), label=f"crash {event.node}"
        )
        deployment.engine.schedule_at(
            event.at + event.down_for,
            lambda: self.restart(event.node),
            label=f"restart {event.node}",
        )

    @staticmethod
    def _isp_id(node: str) -> int:
        if not node.startswith("isp"):
            raise SimulationError(f"unknown node {node!r} (want 'ispN' or 'bank')")
        return int(node[3:])

    # -- crash ------------------------------------------------------------------

    def crash(self, node: str) -> None:
        """Fail-stop ``node`` now: journal durable state, drop the rest."""
        deployment = self.deployment
        if deployment.net.is_down(node):
            raise SimulationError(f"{node!r} is already down")
        if node == "bank":
            state = persistence.bank_state(deployment.network.bank)
            deployment.coordinator.on_bank_crash()
        else:
            isp_id = self._isp_id(node)
            isp = deployment.network.isps[isp_id]
            assert isinstance(isp, CompliantISP)
            state = persistence.isp_state(isp)
            deployment.coordinator.on_isp_crash(isp_id)
        # The journal is serialised text from the crash instant — the only
        # thing a restarted process gets to read. Sealed with a checksum
        # so corruption fails loudly at restart.
        self._journals[node] = seal(state, kind="crash-journal", key=node)
        deployment.net.set_down(node)
        deployment.endpoints[node].close()
        self.crashes += 1
        tracer = deployment.tracer
        if tracer.enabled:
            tracer.emit("crash", node=node)

    # -- restart ----------------------------------------------------------------

    def restart(self, node: str) -> None:
        """Bring ``node`` back from its journal and resume its mail queue."""
        deployment = self.deployment
        if not deployment.net.is_down(node):
            raise SimulationError(f"{node!r} is not down")
        journal = unseal(
            self._journals.pop(node), kind="crash-journal", key=node
        )
        if node == "bank":
            persistence.load_bank_state(deployment.network.bank, journal)
        else:
            isp_id = self._isp_id(node)
            fresh = CompliantISP(
                isp_id,
                deployment.network.users_per_isp,
                deployment.network.config,
            )
            persistence.load_isp_state(fresh, journal)
            deployment.network.isps[isp_id] = fresh
        deployment.net.set_up(node)
        deployment.endpoints[node].reopen()
        self.restarts += 1
        tracer = deployment.tracer
        if tracer.enabled:
            tracer.emit("restart", node=node)
        deployment.flush_deferred(node)
