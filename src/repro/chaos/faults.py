"""Fault injection over the simulated network.

:class:`FaultyNetwork` extends :class:`~repro.sim.network.Network` with
the four classic message faults — drop, duplicate, reorder, delay — plus
node down/up state for the crash model. :class:`FloodSpec` adds the
fifth fault family: *overload*, a burst of send traffic aimed at one ISP
at a rate chosen relative to what its admission controller can sustain. Faults are applied per directed
link and each fault type draws from its own named RNG stream
(``chaos:drop:a->b``, ``chaos:dup:a->b``, …), so changing one fault rate
never perturbs the random decisions of another: campaigns stay
bit-reproducible and *comparable* across fault mixes.

Reordering uses the network's ``fifo=False`` scheduling escape hatch: a
reordered message is delayed past later traffic without moving the link's
FIFO floor, so only the victim message is displaced. Composing this layer
under :class:`~repro.sim.reliable.ReliableEndpoint` restores exactly-once
in-order delivery — which is precisely the property chaos campaigns
exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import SimulationError
from ..obs.trace import TraceRecorder
from ..sim.engine import Engine
from ..sim.network import LinkSpec, Network
from ..sim.rng import SeededStreams
from ..sim.workload import (
    Address,
    FloodSpec,
    SendRequest,
    TrafficKind,
)

__all__ = [
    "FaultSpec",
    "NO_FAULTS",
    "FaultyNetwork",
    "FloodSpec",
    "flood_requests",
]


@dataclass(frozen=True)
class FaultSpec:
    """Fault mix for a directed link.

    Attributes:
        drop_rate: Probability in ``[0, 1]`` that a message is silently
            dropped (on top of the link's own ``loss_rate``).
        duplicate_rate: Probability that a message is delivered twice;
            each copy draws its own delay, so the copies usually arrive
            at different times (and possibly out of order).
        reorder_rate: Probability that a message is scheduled outside the
            link's FIFO discipline with up to ``reorder_delay`` extra
            latency, letting later traffic overtake it.
        reorder_delay: Maximum extra delay (seconds) for a reordered
            message.
        extra_delay: Uniform extra latency in ``[0, extra_delay]`` added
            to every message (degraded-link model).
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_delay: float = 2.0
    extra_delay: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "reorder_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise SimulationError(f"{name} {rate} outside [0, 1]")
        if self.reorder_delay < 0 or self.extra_delay < 0:
            raise SimulationError("fault delays must be non-negative")

    @property
    def active(self) -> bool:
        """Whether this spec perturbs traffic at all."""
        return (
            self.drop_rate > 0
            or self.duplicate_rate > 0
            or self.reorder_rate > 0
            or self.extra_delay > 0
        )


NO_FAULTS = FaultSpec()


# FloodSpec moved to repro.sim.workload (floods are plain traffic shared
# with the scenario compiler's executor-neutral FloodWorkload); it stays
# re-exported here for every existing chaos import site.


def flood_requests(
    spec: FloodSpec,
    *,
    n_isps: int,
    users_per_isp: int,
    streams: SeededStreams,
    name: str = "flood",
) -> Iterator[SendRequest]:
    """Generate one flood's time-ordered :class:`SendRequest` stream.

    Deterministic per seed (one named RNG stream per flood), lazy
    (constant memory), and mergeable with any other workload via
    :func:`~repro.sim.workload.merge_workloads`.
    """
    if not 0 <= spec.attacker_isp < n_isps or not 0 <= spec.target_isp < n_isps:
        raise SimulationError(
            f"flood ISPs out of range: {spec.attacker_isp} -> {spec.target_isp}"
        )
    stream = streams.get(f"{name}:{spec.attacker_isp}->{spec.target_isp}")
    kind = TrafficKind(spec.kind)
    attackers = [
        Address(spec.attacker_isp, user % users_per_isp)
        for user in range(spec.attackers)
    ]
    end = spec.start + spec.duration
    t = spec.start

    def generate() -> Iterator[SendRequest]:
        now = t
        while True:
            now += stream.expovariate(spec.rate_per_sec)
            if now >= end:
                return
            sender = attackers[stream.randrange(len(attackers))]
            recipient = Address(spec.target_isp, stream.randrange(users_per_isp))
            yield SendRequest(now, sender, recipient, kind)

    return generate()


class FaultyNetwork(Network):
    """A :class:`Network` with per-link fault injection and node crashes.

    Args:
        default_faults: Fault mix applied to every link without an
            explicit :meth:`set_faults` override.

    Down nodes model fail-stop crashes: a down source sends nothing and a
    message arriving at a down endpoint is dropped on the wire (in-flight
    frames are lost by a crash; any reliability layer above recovers them
    by retransmission once the node is back).
    """

    def __init__(
        self,
        engine: Engine,
        streams: SeededStreams,
        *,
        default_link: LinkSpec | None = None,
        default_faults: FaultSpec | None = None,
        tracer: TraceRecorder | None = None,
    ) -> None:
        super().__init__(engine, streams, default_link=default_link, tracer=tracer)
        self._default_faults = default_faults or NO_FAULTS
        self._fault_overrides: dict[tuple[str, str], FaultSpec] = {}
        # Per-link fault RNG bundle: (spec, drop, dup, reorder, delay).
        self._fault_cache: dict[tuple[str, str], tuple] = {}
        self._down: set[str] = set()
        self.faults_dropped = 0
        self.faults_duplicated = 0
        self.faults_reordered = 0
        self.dropped_down = 0

    # -- fault topology --------------------------------------------------------

    def set_faults(self, src: str, dst: str, spec: FaultSpec) -> None:
        """Override the fault mix for the directed link src→dst."""
        self._fault_overrides[(src, dst)] = spec
        self._fault_cache.pop((src, dst), None)

    def faults(self, src: str, dst: str) -> FaultSpec:
        """The effective fault mix for the directed link src→dst."""
        return self._fault_overrides.get((src, dst), self._default_faults)

    def _resolve_faults(self, key: tuple[str, str]) -> tuple:
        src, dst = key
        spec = self.faults(src, dst)
        streams = self._streams
        cached = (
            spec,
            streams.get(f"chaos:drop:{src}->{dst}"),
            streams.get(f"chaos:dup:{src}->{dst}"),
            streams.get(f"chaos:reorder:{src}->{dst}"),
            streams.get(f"chaos:delay:{src}->{dst}"),
        )
        self._fault_cache[key] = cached
        return cached

    # -- crash state -----------------------------------------------------------

    def set_down(self, name: str) -> None:
        """Mark a node as crashed; its traffic stops both ways."""
        if name not in self._endpoints:
            raise SimulationError(f"unknown endpoint {name!r}")
        self._down.add(name)

    def set_up(self, name: str) -> None:
        """Mark a crashed node as restarted."""
        self._down.discard(name)

    def is_down(self, name: str) -> bool:
        """Whether ``name`` is currently crashed."""
        return name in self._down

    @property
    def down_nodes(self) -> frozenset[str]:
        """The currently crashed nodes."""
        return frozenset(self._down)

    # -- transmission ----------------------------------------------------------

    def send(self, src: str, dst: str, payload: object, *, size: int = 0) -> None:
        key = (src, dst)
        cached = self._link_cache.get(key)
        if cached is None:
            cached = self._resolve(key)
        spec, stream, label, endpoint = cached
        self.messages_sent += 1
        self.bytes_sent += size
        for tap in self._taps:
            tap(src, dst, payload)
        tracer = self.tracer

        if src in self._down:
            # A dead process transmits nothing.
            self.dropped_down += 1
            if tracer.enabled:
                tracer.emit("fault", src=src, dst=dst, action="down")
            return

        if spec.loss_rate > 0 and stream.random() < spec.loss_rate:
            self.messages_dropped += 1
            if tracer.enabled:
                tracer.emit("net.drop", src=src, dst=dst)
            return

        fcached = self._fault_cache.get(key)
        if fcached is None:
            fcached = self._resolve_faults(key)
        faults, drop_rng, dup_rng, reorder_rng, delay_rng = fcached

        if faults.drop_rate > 0 and drop_rng.random() < faults.drop_rate:
            self.faults_dropped += 1
            self.messages_dropped += 1
            if tracer.enabled:
                tracer.emit("fault", src=src, dst=dst, action="drop")
            return

        copies = 1
        if faults.duplicate_rate > 0 and dup_rng.random() < faults.duplicate_rate:
            copies = 2
            self.faults_duplicated += 1
            if tracer.enabled:
                tracer.emit("fault", src=src, dst=dst, action="duplicate")

        for _ in range(copies):
            delay = spec.base_latency
            if spec.jitter > 0:
                delay += stream.uniform(0.0, spec.jitter)
            if faults.extra_delay > 0:
                delay += delay_rng.uniform(0.0, faults.extra_delay)
            fifo = True
            if faults.reorder_rate > 0 and reorder_rng.random() < faults.reorder_rate:
                # Push this message past the FIFO floor without moving the
                # floor itself: later traffic overtakes it.
                delay += reorder_rng.uniform(0.0, faults.reorder_delay)
                fifo = False
                self.faults_reordered += 1
                if tracer.enabled:
                    tracer.emit("fault", src=src, dst=dst, action="reorder")
            if delay == 0.0 and fifo and not self._pending.get(key):
                self._deliver(key, endpoint, src, payload)
            else:
                self._schedule_delivery(
                    key, endpoint, src, payload, delay, label, fifo=fifo
                )

    def _deliver(
        self, key: tuple[str, str], endpoint, src: str, payload: object
    ) -> None:
        # Crash semantics: a frame in flight toward (or from) a node that
        # is down at delivery time is lost on the wire.
        if key[1] in self._down or src in self._down:
            self.dropped_down += 1
            tracer = self.tracer
            if tracer.enabled:
                tracer.emit("fault", src=src, dst=key[1], action="down")
            return
        super()._deliver(key, endpoint, src, payload)
