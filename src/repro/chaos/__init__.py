"""Chaos harness: deterministic fault-injection campaigns for Zmail.

The paper's protocol arguments (§3–§4.4) rest on channel and liveness
assumptions — in-order delivery, eventual receipt, nodes that stay up.
This package earns those assumptions the hard way: it injects message
faults (drop, duplicate, reorder, delay), fail-stop crashes of ISPs and
the bank, and verifies continuously that the economic invariants survive
recovery. Campaigns are bit-reproducible from a single seed.

Layers:

* :mod:`.faults` — :class:`FaultyNetwork`, per-link fault injection,
  plus :class:`FloodSpec` burst/flood load injection (overload as a
  first-class fault family);
* :mod:`.monitors` — :class:`InvariantMonitor`, always-on invariant
  checks with first-violation reporting, and :class:`OverloadMonitor`
  for bounded-memory / no-lost-accounting checks;
* :mod:`.snapshot` — :class:`RetryingSnapshotCoordinator`, §4.4
  reconciliation that converges under faults and crashes;
* :mod:`.crash` — :class:`CrashController`, journal-based crash/restart
  on :mod:`repro.core.persistence`;
* :mod:`.deployment` — :class:`ChaosDeployment`, the wired system;
* :mod:`.campaign` — campaign specs, the runner and report formatting.
"""

from .campaign import (
    DEFAULT_OVERLOAD_SPEC,
    DEFAULT_SPEC,
    OVERLOAD_COLUMNS,
    format_report,
    load_spec,
    run_campaign,
    run_cell,
)
from .crash import CrashController, CrashEvent
from .deployment import ChaosDeployment
from .faults import (
    NO_FAULTS,
    FaultSpec,
    FaultyNetwork,
    FloodSpec,
    flood_requests,
)
from .monitors import (
    InvariantMonitor,
    OverloadMonitor,
    Violation,
    accounting_digest,
)
from .snapshot import RetryingSnapshotCoordinator

__all__ = [
    "DEFAULT_SPEC",
    "DEFAULT_OVERLOAD_SPEC",
    "OVERLOAD_COLUMNS",
    "format_report",
    "load_spec",
    "run_campaign",
    "run_cell",
    "CrashController",
    "CrashEvent",
    "ChaosDeployment",
    "NO_FAULTS",
    "FaultSpec",
    "FaultyNetwork",
    "FloodSpec",
    "flood_requests",
    "InvariantMonitor",
    "OverloadMonitor",
    "Violation",
    "accounting_digest",
    "RetryingSnapshotCoordinator",
]
