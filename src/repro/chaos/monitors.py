"""Always-on invariant monitoring for chaos runs.

The Zmail economy has three load-bearing invariants (§4.4 and the
conservation audits in DESIGN.md):

* **anti-symmetry** — for every compliant pair ``(i, j)``,
  ``credit_i[j] + credit_j[i]`` equals the number of *paid letters
  currently in flight* between them (0 at quiescence). Each undelivered
  paid letter contributes exactly +1 to the pair sum (the sender counted
  it, the receiver has not), so the monitor adjusts by the deployment's
  per-pair in-flight ledger rather than waiting for quiescence.
* **conservation** — ``total_value() == expected_total_value()``: no
  e-penny or real penny is created or destroyed by faults, crashes or
  recovery.
* **non-negativity** — user purses, ISP pools and bank accounts never go
  below zero.

:class:`InvariantMonitor` checks all three on a periodic engine timer so
a violation is caught *during* the run, close to the action that caused
it, and reports the first-violation time together with the campaign seed
— enough to replay the exact failing run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..sim.events import EventHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .deployment import ChaosDeployment

__all__ = [
    "Violation",
    "InvariantMonitor",
    "OverloadMonitor",
    "accounting_digest",
]

#: Cap on recorded violations per run; a broken invariant usually fails
#: every subsequent check, and the first few carry all the signal.
MAX_RECORDED = 25


@dataclass(frozen=True)
class Violation:
    """One invariant breach observed at a point in virtual time."""

    time: float
    invariant: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"t={self.time:.3f} {self.invariant}: {self.detail}"


def accounting_digest(network) -> str:
    """SHA-256 over every balance in the system.

    Field-compatible with the macro benchmark's digest
    (``benchmarks/bench_macro_scale.accounting_digest``): two runs agree
    on this hash iff they agree on all money movement. Campaign reports
    embed it so bit-reproducibility is checkable from the report alone.
    """
    state: dict[str, object] = {
        "in_flight": network.paid_letters_in_flight,
        "total_value": network.total_value(),
        "expected_total_value": network.expected_total_value(),
        "bank_deposits": network.bank.total_deposits(),
        "isps": {},
    }
    for isp_id, isp in sorted(network.compliant_isps().items()):
        ledger = isp.ledger
        state["isps"][str(isp_id)] = {
            "users": [
                (u.user_id, u.account, u.balance) for u in ledger.users()
            ],
            "pool": ledger.pool,
            "cash": ledger.cash,
            "bank_account": network.bank.account_balance(isp_id),
        }
    blob = json.dumps(state, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


class InvariantMonitor:
    """Periodic invariant checker hooked into a chaos deployment's engine.

    Args:
        deployment: The deployment under test (provides the Zmail network
            and the per-pair in-flight ledger).
        interval: Virtual seconds between checks.
    """

    def __init__(self, deployment: "ChaosDeployment", *, interval: float = 5.0) -> None:
        self.deployment = deployment
        self.interval = interval
        self.checks_run = 0
        self.violations: list[Violation] = []
        self.violations_seen = 0
        self.first_violation: Violation | None = None
        self._handle: EventHandle | None = None

    def start(self) -> None:
        """Arm the periodic check on the deployment's engine."""
        if self._handle is not None:
            return
        self._handle = self.deployment.engine.schedule_every(
            self.interval, self.check, label="chaos-monitor"
        )

    def stop(self) -> None:
        """Cancel the periodic check."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def green(self) -> bool:
        """Whether no invariant has been violated so far."""
        return self.violations_seen == 0

    def check(self) -> list[Violation]:
        """Run all invariant checks now; record and return violations."""
        self.checks_run += 1
        found = self._violations_now()
        tracer = self.deployment.tracer
        for violation in found:
            self.violations_seen += 1
            if tracer.enabled:
                tracer.emit(
                    "monitor.violation",
                    monitor="invariant",
                    kind=violation.invariant,
                )
            if self.first_violation is None:
                self.first_violation = violation
            if len(self.violations) < MAX_RECORDED:
                self.violations.append(violation)
        return found

    # -- the invariants ---------------------------------------------------------

    def _violations_now(self) -> list[Violation]:
        deployment = self.deployment
        network = deployment.network
        now = deployment.engine.now
        found: list[Violation] = []

        compliant = network.compliant_isps()
        ids = sorted(compliant)
        for index, i in enumerate(ids):
            credit_i = compliant[i].credit
            for j in ids[index + 1 :]:
                pair_sum = credit_i.get(j, 0) + compliant[j].credit.get(i, 0)
                expected = deployment.inflight_pair(i, j)
                if pair_sum != expected:
                    found.append(Violation(
                        now,
                        "anti-symmetry",
                        f"credit[{i}][{j}] + credit[{j}][{i}] = {pair_sum}, "
                        f"expected {expected} (paid letters in flight)",
                    ))

        total = network.total_value()
        expected_total = network.expected_total_value()
        if total != expected_total:
            found.append(Violation(
                now,
                "conservation",
                f"total_value {total} != expected {expected_total} "
                f"(delta {total - expected_total})",
            ))

        for isp_id, isp in sorted(compliant.items()):
            if isp.ledger.pool < 0:
                found.append(Violation(
                    now, "non-negative", f"isp{isp_id} pool {isp.ledger.pool}"
                ))
            bank_account = network.bank.account_balance(isp_id)
            if bank_account < 0:
                found.append(Violation(
                    now, "non-negative", f"isp{isp_id} bank account {bank_account}"
                ))
            for user in isp.ledger.users():
                if user.balance < 0 or user.account < 0:
                    found.append(Violation(
                        now,
                        "non-negative",
                        f"isp{isp_id} user{user.user_id} balance="
                        f"{user.balance} account={user.account}",
                    ))
        return found


class OverloadMonitor:
    """Bounded-memory + no-lost-accounting checks for the overload layer.

    Two invariants, checked on the same periodic cadence as
    :class:`InvariantMonitor`:

    * **bounded memory** — each ISP's deferred queue (live size *and*
      high-water mark) never exceeds its configured capacity, and the
      shed audit ring never exceeds its cap: a flood cannot make an ISP
      allocate without limit.
    * **no lost accounting** — per controller,
      ``attempts == accepted + shed + bounced + pending``: every message
      that asked for admission is accounted for exactly once — processed,
      refused, terminally bounced, or still queued. Combined with the
      conservation check (shed/deferred outcomes never touch a ledger)
      this is the "every admitted message is eventually delivered or
      bounced" guarantee.

    Does nothing (and stays green) when the deployment runs without an
    :class:`~repro.core.overload.OverloadConfig`.
    """

    def __init__(self, deployment: "ChaosDeployment", *, interval: float = 5.0) -> None:
        self.deployment = deployment
        self.interval = interval
        self.checks_run = 0
        self.violations: list[Violation] = []
        self.violations_seen = 0
        self.first_violation: Violation | None = None
        self._handle: EventHandle | None = None

    def start(self) -> None:
        """Arm the periodic check on the deployment's engine."""
        if self._handle is not None:
            return
        self._handle = self.deployment.engine.schedule_every(
            self.interval, self.check, label="overload-monitor"
        )

    def stop(self) -> None:
        """Cancel the periodic check."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def green(self) -> bool:
        """Whether no overload invariant has been violated so far."""
        return self.violations_seen == 0

    def check(self) -> list[Violation]:
        """Run both overload checks now; record and return violations."""
        self.checks_run += 1
        found = self._violations_now()
        tracer = self.deployment.tracer
        for violation in found:
            self.violations_seen += 1
            if tracer.enabled:
                tracer.emit(
                    "monitor.violation",
                    monitor="overload",
                    kind=violation.invariant,
                )
            if self.first_violation is None:
                self.first_violation = violation
            if len(self.violations) < MAX_RECORDED:
                self.violations.append(violation)
        return found

    def _violations_now(self) -> list[Violation]:
        network = self.deployment.network
        now = self.deployment.engine.now
        found: list[Violation] = []
        for isp_id, controller in sorted(
            network.overload_controllers().items()
        ):
            capacity = controller.queue.capacity
            if controller.pending > capacity or controller.peak_pending > capacity:
                found.append(Violation(
                    now,
                    "bounded-memory",
                    f"isp{isp_id} deferred queue {controller.pending} "
                    f"(peak {controller.peak_pending}) over capacity {capacity}",
                ))
            if len(controller.audit.records) > controller.audit.cap:
                found.append(Violation(
                    now,
                    "bounded-memory",
                    f"isp{isp_id} shed audit {len(controller.audit.records)} "
                    f"over cap {controller.audit.cap}",
                ))
            delta = controller.accounting_delta()
            if delta != 0:
                found.append(Violation(
                    now,
                    "no-lost-accounting",
                    f"isp{isp_id} attempts {controller.attempts} != "
                    f"accepted {controller.accepted} + shed {controller.shed} "
                    f"+ bounced {controller.bounced} + pending "
                    f"{controller.pending} (delta {delta})",
                ))
        return found
