"""A crash-tolerant, retrying §4.4 snapshot coordinator.

The coordinators in :mod:`repro.core.snapshot` assume a benign network:
one request, one quiesce window, one commit. Under chaos — lost frames,
crashed ISPs, a crashed bank — that protocol either deadlocks or, worse,
commits an inconsistent cut (and then honest ISPs look like cheaters).

:class:`RetryingSnapshotCoordinator` runs a two-phase variant:

1. **Peek phase** — the bank broadcasts a request over reliable links;
   each ISP pauses sending, waits out the quiesce window, then replies
   with a *non-committing copy* of its credit array
   (:meth:`~repro.core.isp.CompliantISP.snapshot_peek`).
2. **Commit or retry** — the bank verifies anti-symmetry over the peeks.
   A consistent matrix means no paid mail was in flight at the cut, so
   the commit (:meth:`snapshot_reply` + resume + ``bank.reconcile``) is
   applied atomically in one engine callback. An inconsistent matrix or a
   timed-out round is *aborted* — peeks committed nothing, so the ISPs
   just resume — and retried with an exponentially longer quiesce window.

Crash handling: a crashed ISP simply fails to reply (its round times out
and retries once it is back); a crashed bank cancels its round timers and
ISP-side *orphan timeouts* release any ISP left paused by a request whose
coordinator died. Convergence rather than single-round success is the
guarantee — exactly what the paper's free-market framing needs from its
settlement layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.isp import CompliantISP
from ..core.misbehavior import ReconciliationReport, verify_credit_matrix
from ..sim.events import EventHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .deployment import ChaosDeployment

__all__ = [
    "ChaosSnapshotRequest",
    "ChaosSnapshotReply",
    "SnapshotAbort",
    "RoundOutcome",
    "RetryingSnapshotCoordinator",
]


@dataclass(frozen=True)
class ChaosSnapshotRequest:
    """Bank → ISP: pause, quiesce, then reply with a credit peek."""

    token: int
    quiesce: float


@dataclass(frozen=True)
class ChaosSnapshotReply:
    """ISP → bank: the non-committing credit peek for one round attempt."""

    token: int
    isp_id: int
    credit: dict[int, int]


@dataclass(frozen=True)
class SnapshotAbort:
    """Bank → ISP: abandon the attempt identified by ``token``; resume."""

    token: int


@dataclass
class RoundOutcome:
    """What one reconciliation round (all its attempts) produced."""

    started_at: float
    attempts: int = 0
    committed: bool = False
    interrupted: bool = False
    report: ReconciliationReport | None = None
    finished_at: float | None = None


@dataclass
class _Round:
    """Book-keeping for the attempt currently on the wire."""

    token: int
    attempt: int
    expected: frozenset[int]
    peeks: dict[int, dict[int, int]] = field(default_factory=dict)
    timeout_handle: EventHandle | None = None


class RetryingSnapshotCoordinator:
    """Drives retrying credit snapshots over a chaos deployment.

    Args:
        deployment: Provides the engine, the reliable endpoints, the
            Zmail network and crash state.
        quiesce: Base quiesce window (seconds) for attempt 1.
        growth: Multiplier applied to the quiesce window per retry.
        max_quiesce: Cap on the grown quiesce window.
        round_timeout: Base wait for all replies before the attempt is
            abandoned; grows with the quiesce window.
        retry_delay: Pause between an aborted attempt and the next one.
        max_attempts: Attempts per round before giving up (a given-up
            round fails the campaign cell).
        orphan_timeout: ISP-side deadline after which a still-open
            snapshot whose coordinator went silent is aborted locally.
    """

    def __init__(
        self,
        deployment: "ChaosDeployment",
        *,
        quiesce: float = 2.0,
        growth: float = 2.0,
        max_quiesce: float = 60.0,
        round_timeout: float = 30.0,
        retry_delay: float = 1.0,
        max_attempts: int = 8,
        orphan_timeout: float = 120.0,
    ) -> None:
        self.deployment = deployment
        self.quiesce = quiesce
        self.growth = growth
        self.max_quiesce = max_quiesce
        self.round_timeout = round_timeout
        self.retry_delay = retry_delay
        self.max_attempts = max_attempts
        self.orphan_timeout = orphan_timeout
        self._next_token = 0
        self._round: _Round | None = None
        self._outcome: RoundOutcome | None = None
        # ISP-side: which attempt token each ISP's open snapshot belongs to.
        self._open_tokens: dict[int, int] = {}
        self.rounds: list[RoundOutcome] = []
        self.rounds_skipped = 0
        self.aborted_attempts = 0
        self.orphan_aborts = 0

    # -- driving ----------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether a round is currently in progress."""
        return self._round is not None

    @property
    def rounds_committed(self) -> int:
        """Rounds that ended with a consistent, committed snapshot."""
        return sum(1 for outcome in self.rounds if outcome.committed)

    @property
    def rounds_failed(self) -> int:
        """Rounds that gave up without committing (excludes interrupted)."""
        return sum(
            1
            for outcome in self.rounds
            if not outcome.committed and not outcome.interrupted
        )

    def _trace_round(self, attempt: int, outcome: str) -> None:
        """Emit one ``snapshot.round`` trace event for the current round."""
        tracer = self.deployment.tracer
        if tracer.enabled:
            tracer.emit(
                "snapshot.round",
                round=len(self.rounds),
                attempt=attempt,
                outcome=outcome,
            )

    def trigger(self) -> None:
        """Start a reconciliation round unless one is running or the bank is down."""
        deployment = self.deployment
        if self._round is not None or deployment.net.is_down("bank"):
            self.rounds_skipped += 1
            return
        self._outcome = RoundOutcome(started_at=deployment.engine.now)
        self.rounds.append(self._outcome)
        self._begin_attempt(1)

    def _attempt_quiesce(self, attempt: int) -> float:
        window = self.quiesce * (self.growth ** (attempt - 1))
        return min(window, self.max_quiesce)

    def _begin_attempt(self, attempt: int) -> None:
        deployment = self.deployment
        assert self._outcome is not None
        if attempt > self.max_attempts:
            # Give up: the round is recorded as failed; campaign fails.
            self._trace_round(attempt - 1, "giveup")
            self._outcome.finished_at = deployment.engine.now
            self._round = None
            self._outcome = None
            return
        self._next_token += 1
        token = self._next_token
        quiesce = self._attempt_quiesce(attempt)
        expected = frozenset(deployment.network.compliant_isps())
        round_ = _Round(token=token, attempt=attempt, expected=expected)
        self._round = round_
        self._outcome.attempts = attempt
        self._trace_round(attempt, "start")
        request = ChaosSnapshotRequest(token=token, quiesce=quiesce)
        for isp_id in sorted(expected):
            deployment.send_control("bank", f"isp{isp_id}", request)
        timeout = self.round_timeout + quiesce * len(expected)
        round_.timeout_handle = deployment.engine.schedule_after(
            timeout,
            lambda: self._on_round_timeout(token),
            label="chaos-snapshot-timeout",
        )

    # -- ISP side ----------------------------------------------------------------

    def on_request(self, isp_id: int, request: ChaosSnapshotRequest) -> None:
        """An ISP received a (possibly stale) snapshot request."""
        deployment = self.deployment
        isp = deployment.network.isps[isp_id]
        if not isinstance(isp, CompliantISP):
            return
        if isp.snapshot_open:
            # A stale attempt left this ISP paused; replace it.
            self.aborted_attempts += 1
            deployment.route_receipts(isp.abort_snapshot())
        isp.begin_snapshot(request.token)
        self._open_tokens[isp_id] = request.token
        deployment.engine.schedule_after(
            request.quiesce,
            lambda: self._send_peek(isp_id, request.token),
            label="chaos-snapshot-peek",
        )
        deployment.engine.schedule_after(
            self.orphan_timeout,
            lambda: self._orphan_check(isp_id, request.token),
            label="chaos-snapshot-orphan",
        )

    def _snapshot_still_open(self, isp_id: int, token: int) -> CompliantISP | None:
        """The ISP object iff its open snapshot still belongs to ``token``.

        Looked up fresh through the deployment so a crash/restart swap is
        seen: a restarted ISP lost its (volatile) snapshot pause, and a
        crashed one must not be touched.
        """
        deployment = self.deployment
        if deployment.net.is_down(f"isp{isp_id}"):
            return None
        isp = deployment.network.isps[isp_id]
        if not isinstance(isp, CompliantISP) or not isp.snapshot_open:
            return None
        if self._open_tokens.get(isp_id) != token:
            return None
        return isp

    def _send_peek(self, isp_id: int, token: int) -> None:
        isp = self._snapshot_still_open(isp_id, token)
        if isp is None:
            return
        reply = ChaosSnapshotReply(
            token=token, isp_id=isp_id, credit=isp.snapshot_peek()
        )
        self.deployment.send_control(f"isp{isp_id}", "bank", reply)

    def _orphan_check(self, isp_id: int, token: int) -> None:
        isp = self._snapshot_still_open(isp_id, token)
        if isp is None:
            return
        # The coordinator went silent (bank crash, lost commit): release
        # the pause locally so the ISP does not stay muzzled forever.
        self.orphan_aborts += 1
        self._open_tokens.pop(isp_id, None)
        self.deployment.route_receipts(isp.abort_snapshot())

    def on_abort(self, isp_id: int, abort: SnapshotAbort) -> None:
        """An ISP received an abort for a (possibly already gone) attempt."""
        isp = self._snapshot_still_open(isp_id, abort.token)
        if isp is None:
            return
        self._open_tokens.pop(isp_id, None)
        self.deployment.route_receipts(isp.abort_snapshot())

    # -- bank side ----------------------------------------------------------------

    def on_reply(self, reply: ChaosSnapshotReply) -> None:
        """The bank received one ISP's peek."""
        round_ = self._round
        if round_ is None or reply.token != round_.token:
            return  # stale attempt
        round_.peeks[reply.isp_id] = dict(reply.credit)
        if set(round_.peeks) >= round_.expected:
            self._conclude_attempt()

    def _conclude_attempt(self) -> None:
        deployment = self.deployment
        round_ = self._round
        assert round_ is not None and self._outcome is not None
        inconsistent = verify_credit_matrix(round_.peeks)
        commit_ready = not inconsistent and all(
            self._snapshot_still_open(isp_id, round_.token) is not None
            for isp_id in round_.expected
        )
        if not commit_ready:
            self._abort_attempt()
            return
        if round_.timeout_handle is not None:
            round_.timeout_handle.cancel()
        # Atomic commit: every reply, resume and the bank's reconcile run
        # in this single engine callback, so no mail can interleave with
        # the credit resets and the invariant monitor never sees a
        # half-committed cut. (Models a commit barrier.)
        replies: dict[int, dict[int, int]] = {}
        for isp_id in sorted(round_.expected):
            isp = deployment.network.isps[isp_id]
            assert isinstance(isp, CompliantISP)
            replies[isp_id] = isp.snapshot_reply()
            self._open_tokens.pop(isp_id, None)
            deployment.route_receipts(isp.resume_sending())
        report = deployment.network.bank.reconcile(replies)
        deployment.network.last_report = report
        self._trace_round(round_.attempt, "commit")
        self._outcome.committed = True
        self._outcome.report = report
        self._outcome.finished_at = deployment.engine.now
        self._round = None
        self._outcome = None

    def _abort_attempt(self) -> None:
        deployment = self.deployment
        round_ = self._round
        assert round_ is not None
        if round_.timeout_handle is not None:
            round_.timeout_handle.cancel()
        self.aborted_attempts += 1
        self._trace_round(round_.attempt, "abort")
        abort = SnapshotAbort(token=round_.token)
        for isp_id in sorted(round_.expected):
            deployment.send_control("bank", f"isp{isp_id}", abort)
        attempt = round_.attempt
        self._round = None
        deployment.engine.schedule_after(
            self.retry_delay,
            lambda: self._retry(attempt + 1),
            label="chaos-snapshot-retry",
        )

    def _retry(self, attempt: int) -> None:
        if self._outcome is None or self._round is not None:
            return  # round was interrupted (e.g. bank crash) meanwhile
        if self.deployment.net.is_down("bank"):
            self._outcome.interrupted = True
            self._outcome.finished_at = self.deployment.engine.now
            self._outcome = None
            return
        self._begin_attempt(attempt)

    def _on_round_timeout(self, token: int) -> None:
        round_ = self._round
        if round_ is None or round_.token != token:
            return
        self._abort_attempt()

    # -- crash notifications --------------------------------------------------------

    def on_isp_crash(self, isp_id: int) -> None:
        """An ISP crashed: its open snapshot (volatile state) is gone."""
        self._open_tokens.pop(isp_id, None)

    def on_bank_crash(self) -> None:
        """The bank crashed: the in-progress round is volatile state, lost."""
        round_ = self._round
        if round_ is not None:
            if round_.timeout_handle is not None:
                round_.timeout_handle.cancel()
            self._round = None
        if self._outcome is not None:
            self._outcome.interrupted = True
            self._outcome.finished_at = self.deployment.engine.now
            self._outcome = None
        # Paused ISPs are released by their own orphan timeouts.
