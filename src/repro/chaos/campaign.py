"""Chaos campaigns: a matrix of fault mixes × scenarios with a verdict.

A campaign spec is a plain dict (loadable from JSON, or YAML when
available) describing a deployment, a workload, and a list of *cells* —
each cell a named fault mix plus an optional crash schedule. Running the
campaign executes every cell in its own deployment, drains it to
quiescence, and emits a pass/fail row per cell:

* **pass** requires the cell to converge (quiescence reached), keep every
  invariant monitor green, conserve total value, and commit every
  reconciliation round it started.

Determinism: each cell's seed derives from the campaign seed and the
cell's name (SHA-256), every random decision inside a cell flows from
that seed, and reports contain no wall-clock timestamps — so the same
spec and seed produce byte-identical reports, and a failing cell can be
replayed from the seed printed in its row.
"""

from __future__ import annotations

import copy
import json
from typing import Any

from ..core.overload import OverloadConfig
from ..errors import SimulationError
from ..obs.metrics_export import export_deployment
from ..sim.rng import SeededStreams, derive_seed
from ..sim.workload import NormalUserWorkload, merge_workloads
from .crash import CrashEvent
from .deployment import ChaosDeployment
from .faults import FaultSpec, FloodSpec, flood_requests

__all__ = [
    "DEFAULT_SPEC",
    "DEFAULT_OVERLOAD_SPEC",
    "OVERLOAD_COLUMNS",
    "load_spec",
    "run_cell",
    "run_campaign",
    "format_report",
]


#: The built-in campaign: a clean baseline, a heavily faulty wire, and a
#: crashy cell combining link faults with ISP and bank crash/restart plus
#: periodic reconciliation. Sized to finish in well under a minute (the
#: CI smoke budget) while still exercising every chaos subsystem.
DEFAULT_SPEC: dict[str, Any] = {
    "name": "builtin",
    "seed": 7,
    "deployment": {
        "n_isps": 3,
        "users_per_isp": 6,
        "monitor_interval": 5.0,
        "reconcile_every": 150.0,
    },
    "workload": {
        "rate_per_day": 4000.0,
        "duration": 600.0,
    },
    "drain_window": 900.0,
    "cells": [
        {
            "name": "clean",
            "faults": {},
            "crashes": [],
        },
        {
            "name": "lossy-dup-reorder",
            "faults": {
                "drop_rate": 0.2,
                "duplicate_rate": 0.15,
                "reorder_rate": 0.2,
                "reorder_delay": 2.0,
            },
            "crashes": [],
        },
        {
            "name": "crashy",
            "faults": {
                "drop_rate": 0.1,
                "duplicate_rate": 0.1,
                "reorder_rate": 0.1,
            },
            "crashes": [
                {"node": "isp1", "at": 120.0, "down_for": 60.0},
                {"node": "bank", "at": 300.0, "down_for": 45.0},
            ],
        },
    ],
}


#: The built-in overload campaign: the same small deployment with the
#: overload-protection layer on, swept from a clean baseline through a
#: 2× burst to a sustained 10× flood against one ISP's admission rate.
#: Every cell must keep the overload monitor green — bounded queues, no
#: lost accounting — and conserve value, demonstrating that saturation
#: degrades service (shed/bounce) instead of correctness.
DEFAULT_OVERLOAD_SPEC: dict[str, Any] = {
    "name": "builtin-overload",
    "seed": 11,
    "deployment": {
        "n_isps": 3,
        "users_per_isp": 6,
        "monitor_interval": 5.0,
        "reconcile_every": 150.0,
        "overload": {
            "admit_rate": 8.0,
            "admit_burst": 16,
            "queue_capacity": 64,
            "retry_base": 2.0,
            "retry_backoff": 2.0,
            "retry_max_interval": 30.0,
            "max_retries": 3,
        },
    },
    "workload": {
        "rate_per_day": 2000.0,
        "duration": 300.0,
    },
    "drain_window": 600.0,
    "cells": [
        {
            "name": "baseline",
            "faults": {},
            "floods": [],
        },
        {
            "name": "burst-2x",
            "faults": {},
            "floods": [
                {
                    "attacker_isp": 0,
                    "target_isp": 1,
                    "rate_per_sec": 16.0,
                    "start": 60.0,
                    "duration": 60.0,
                },
            ],
        },
        {
            "name": "flood-10x",
            "faults": {"drop_rate": 0.05},
            "floods": [
                {
                    "attacker_isp": 0,
                    "target_isp": 1,
                    "rate_per_sec": 80.0,
                    "start": 60.0,
                    "duration": 120.0,
                },
            ],
        },
    ],
}


def load_spec(path: str) -> dict[str, Any]:
    """Load a campaign spec from a JSON (preferred) or YAML file.

    Raises:
        SimulationError: if the file parses as neither.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        spec = json.loads(text)
    except json.JSONDecodeError as json_err:
        try:
            import yaml
        except ImportError:  # pragma: no cover - yaml is normally present
            raise SimulationError(
                f"{path}: not valid JSON ({json_err}) and PyYAML is unavailable"
            ) from json_err
        try:
            spec = yaml.safe_load(text)
        except yaml.YAMLError as yaml_err:
            raise SimulationError(
                f"{path}: parses as neither JSON ({json_err}) "
                f"nor YAML ({yaml_err})"
            ) from yaml_err
    if not isinstance(spec, dict):
        raise SimulationError(f"{path}: campaign spec must be a mapping")
    _validate(spec)
    return spec


def _validate(spec: dict[str, Any]) -> None:
    cells = spec.get("cells")
    if not cells:
        raise SimulationError("campaign spec has no cells")
    names = [cell.get("name") for cell in cells]
    if any(not name for name in names):
        raise SimulationError("every campaign cell needs a name")
    if len(set(names)) != len(names):
        raise SimulationError(f"duplicate cell names: {sorted(names)}")


def run_cell(
    spec: dict[str, Any], cell: dict[str, Any], *, seed: int
) -> dict[str, Any]:
    """Run one campaign cell in a fresh deployment; returns its report row."""
    cell_seed = derive_seed(seed, f"cell:{cell['name']}")
    deployment_kwargs = {
        **spec.get("deployment", {}),
        **cell.get("deployment", {}),
    }
    overload_kwargs = deployment_kwargs.pop("overload", None)
    if overload_kwargs is not None:
        deployment_kwargs["overload"] = OverloadConfig(**overload_kwargs)
    workload_kwargs = {**spec.get("workload", {}), **cell.get("workload", {})}
    duration = float(workload_kwargs.pop("duration", 600.0))
    faults = FaultSpec(**cell.get("faults", {}))

    deployment = ChaosDeployment(
        seed=cell_seed, faults=faults, **deployment_kwargs
    )
    for crash in cell.get("crashes", []):
        deployment.schedule_crash(CrashEvent(**crash))
    workload = NormalUserWorkload(
        n_isps=deployment.network.n_isps,
        users_per_isp=deployment.network.users_per_isp,
        streams=SeededStreams(derive_seed(cell_seed, "chaos-workload")),
        **workload_kwargs,
    )
    requests = workload.generate(duration)
    floods = [FloodSpec(**flood) for flood in cell.get("floods", [])]
    if floods:
        flood_streams = [
            flood_requests(
                flood,
                n_isps=deployment.network.n_isps,
                users_per_isp=deployment.network.users_per_isp,
                streams=SeededStreams(derive_seed(cell_seed, f"flood:{index}")),
                name=f"flood{index}",
            )
            for index, flood in enumerate(floods)
        ]
        requests = merge_workloads(requests, *flood_streams)
    converged = deployment.run(
        requests,
        until=duration,
        drain_window=float(spec.get("drain_window", 900.0)),
    )

    network = deployment.network
    stats = deployment.stats()
    # All counter reads go through the unified exporter so the campaign
    # harness exercises the same metrics surface the CLI dumps.
    metrics = export_deployment(deployment).collect()
    conserved = network.total_value() == network.expected_total_value()
    first = deployment.monitor.first_violation
    first_overload = deployment.overload_monitor.first_violation
    passed = (
        converged
        and conserved
        and stats["violations"] == 0
        and stats["overload_violations"] == 0
        and stats["snapshot_failed"] == 0
    )
    return {
        "cell": cell["name"],
        "seed": cell_seed,
        "passed": passed,
        "converged": converged,
        "conserved": conserved,
        "delivered": metrics["zmail.deliver.delivered"],
        "first_violation": str(first) if first is not None else None,
        "first_overload_violation": (
            str(first_overload) if first_overload is not None else None
        ),
        "digest": deployment.digest(),
        **stats,
    }


def run_campaign(spec: dict[str, Any], *, seed: int | None = None) -> dict[str, Any]:
    """Run every cell of ``spec``; returns the campaign report dict.

    Args:
        seed: Override the spec's seed (the CLI's ``--seed``).
    """
    _validate(spec)
    spec = copy.deepcopy(spec)
    campaign_seed = int(spec.get("seed", 0) if seed is None else seed)
    rows = [
        run_cell(spec, cell, seed=campaign_seed) for cell in spec["cells"]
    ]
    return {
        "campaign": spec.get("name", "unnamed"),
        "seed": campaign_seed,
        "cells": rows,
        "passed": all(row["passed"] for row in rows),
    }


_COLUMNS = [
    ("cell", "cell"),
    ("pass", "passed"),
    ("conv", "converged"),
    ("cons", "conserved"),
    ("viol", "violations"),
    ("submits", "submits"),
    ("delivered", "delivered"),
    ("rexmit", "retransmissions"),
    ("crashes", "crashes"),
    ("rounds", "snapshot_rounds"),
    ("committed", "snapshot_committed"),
]

#: Column set for overload campaigns: the admission-control disposition
#: of every attempt (accepted/shed/bounced), the queue high-water mark
#: against its bound, and the breaker activity.
OVERLOAD_COLUMNS = [
    ("cell", "cell"),
    ("pass", "passed"),
    ("conv", "converged"),
    ("cons", "conserved"),
    ("viol", "violations"),
    ("oviol", "overload_violations"),
    ("submits", "submits"),
    ("delivered", "delivered"),
    ("accepted", "overload_accepted"),
    ("shed", "overload_shed"),
    ("bounced", "overload_bounced"),
    ("peakq", "overload_peak_pending"),
    ("parked", "letters_parked"),
    ("bropen", "transfer_breaker_opens"),
]


def format_report(
    report: dict[str, Any],
    columns: list[tuple[str, str]] | None = None,
) -> str:
    """Render a campaign report as a deterministic fixed-width table.

    Args:
        columns: ``(header, row_key)`` pairs; defaults to the chaos
            column set (:data:`OVERLOAD_COLUMNS` fits overload
            campaigns).
    """
    if columns is None:
        columns = _COLUMNS
    lines = [
        f"campaign {report['campaign']!r}  seed={report['seed']}  "
        f"verdict={'PASS' if report['passed'] else 'FAIL'}"
    ]
    rows = []
    for row in report["cells"]:
        rows.append([
            str(row[key]) if not isinstance(row[key], bool)
            else ("yes" if row[key] else "NO")
            for _, key in columns
        ])
    headers = [title for title, _ in columns]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    for row in report["cells"]:
        lines.append(f"{row['cell']}: digest {row['digest']}")
        if row["first_violation"]:
            lines.append(
                f"{row['cell']}: FIRST VIOLATION {row['first_violation']} "
                f"(replay with seed {row['seed']})"
            )
        if row.get("first_overload_violation"):
            lines.append(
                f"{row['cell']}: FIRST OVERLOAD VIOLATION "
                f"{row['first_overload_violation']} "
                f"(replay with seed {row['seed']})"
            )
    return "\n".join(lines)
