"""A full Zmail deployment wired for chaos.

:class:`ChaosDeployment` assembles the system the way a distributed
deployment actually runs it:

* a :class:`~repro.chaos.faults.FaultyNetwork` carries every inter-node
  message (letters and control traffic) with configurable drop /
  duplicate / reorder / delay faults;
* one :class:`~repro.sim.reliable.ReliableEndpoint` per ISP and one for
  the bank restore exactly-once in-order delivery on top of the faults —
  the paper's §3 channel assumption, earned rather than assumed;
* the :class:`~repro.core.protocol.ZmailNetwork` core runs in direct
  mode but hands every outbound letter to this deployment's transport,
  so all economics flow through the faulty wire;
* a :class:`~repro.chaos.crash.CrashController` fail-stops nodes mid-run
  and restarts them from :mod:`repro.core.persistence` journals;
* a :class:`~repro.chaos.snapshot.RetryingSnapshotCoordinator` keeps
  §4.4 reconciliation converging despite all of the above;
* an :class:`~repro.chaos.monitors.InvariantMonitor` checks
  anti-symmetry, conservation and non-negativity on a periodic timer.

With an :class:`~repro.core.overload.OverloadConfig` the deployment adds
the overload-protection layer: per-ISP admission control inside the
Zmail core (driven by this deployment's engine clock and timers), a
circuit breaker per directed inter-ISP link that *parks* outbound
letters when the reliable layer's unacked backlog says the peer is
saturated (parked letters stay in the in-flight ledger, so anti-symmetry
accounting is undisturbed, and are flushed when a probe finds the
backlog drained), a breaker guarding bank snapshot RPCs (reconciliation
rounds are skipped, not wedged, while the bank keeps failing rounds),
and an :class:`~repro.chaos.monitors.OverloadMonitor` asserting bounded
memory and no-lost-accounting on the monitor cadence.

Submissions for a crashed ISP are queued client-side (users retry) and
flushed when the node returns, so a crash delays mail but never loses a
submission — the property the differential tests pin down.
"""

from __future__ import annotations

from typing import Iterable

from ..core.config import ZmailConfig
from ..core.overload import CircuitBreaker, OverloadConfig
from ..core.protocol import ZmailNetwork
from ..core.transfer import Letter, SendReceipt
from ..errors import SimulationError
from ..obs.trace import NULL_TRACER, TraceRecorder
from ..sim.clock import DAY
from ..sim.engine import Engine
from ..sim.network import LinkSpec
from ..sim.reliable import ReliableEndpoint
from ..sim.rng import SeededStreams, derive_seed
from ..sim.workload import SendRequest
from .crash import CrashController, CrashEvent
from .faults import FaultSpec, FaultyNetwork
from .monitors import InvariantMonitor, OverloadMonitor, accounting_digest
from .snapshot import (
    ChaosSnapshotReply,
    ChaosSnapshotRequest,
    RetryingSnapshotCoordinator,
    SnapshotAbort,
)

__all__ = ["ChaosDeployment"]


class ChaosDeployment:
    """A Zmail system under reliable links over a faulty network.

    Args:
        n_isps: Number of ISPs (named ``isp0`` … ``ispN-1`` on the wire).
        users_per_isp: Users per ISP.
        seed: Root seed; every RNG stream (faults, workloads, links)
            derives from it, so a run is bit-reproducible from this one
            number.
        compliant: Per-ISP compliance flags (default: all compliant).
        config: Zmail economics parameters.
        link: Wire characteristics (default 50 ms links, no loss —
            loss is usually injected via ``faults`` instead).
        faults: Default fault mix for every link; per-link overrides via
            ``net.set_faults``.
        retransmit_interval: Reliable-layer base retransmission timeout.
        backoff: Reliable-layer exponential backoff multiplier.
        max_interval: Cap on the backed-off retransmission interval.
        monitor_interval: Seconds between invariant checks.
        reconcile_every: Period of §4.4 reconciliation rounds; ``None``
            disables reconciliation.
        snapshot_opts: Keyword overrides for the
            :class:`RetryingSnapshotCoordinator`.
        overload: Enable the overload-protection layer (admission
            control, transfer/snapshot circuit breakers, overload
            monitor) with these parameters; ``None`` (the default) keeps
            the historical unprotected behaviour, byte-for-byte.
    """

    def __init__(
        self,
        *,
        n_isps: int,
        users_per_isp: int,
        seed: int,
        compliant: Iterable[bool] | None = None,
        config: ZmailConfig | None = None,
        link: LinkSpec | None = None,
        faults: FaultSpec | None = None,
        retransmit_interval: float = 0.5,
        backoff: float = 2.0,
        max_interval: float = 8.0,
        monitor_interval: float = 5.0,
        reconcile_every: float | None = None,
        snapshot_opts: dict | None = None,
        overload: OverloadConfig | None = None,
        tracer: TraceRecorder | None = None,
    ) -> None:
        self.seed = seed
        self.engine = Engine()
        # Observability: the deployment owns the virtual clock, so it
        # installs it on the tracer before any subsystem attaches.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if tracer is not None and tracer is not NULL_TRACER and tracer.clock is None:
            engine_clock = self.engine.clock
            tracer.clock = lambda: engine_clock.now
        self.net = FaultyNetwork(
            self.engine,
            SeededStreams(derive_seed(seed, "chaos-net")),
            default_link=link or LinkSpec(base_latency=0.05),
            default_faults=faults,
            tracer=tracer,
        )
        # The Zmail core runs in direct mode but yields every outbound
        # letter to our transport, which carries it over reliable links.
        self.overload = overload
        self.network = ZmailNetwork(
            n_isps=n_isps,
            users_per_isp=users_per_isp,
            compliant=compliant,
            config=config,
            seed=seed,
            transport=self._transport,
            overload=overload,
            # The core runs in direct mode; this deployment's engine is
            # the clock and timer source for admission-control retries.
            overload_clock=(lambda: self.engine.now) if overload else None,
            overload_scheduler=(
                (
                    lambda delay, cb: self.engine.schedule_after(
                        delay, cb, label="overload-retry"
                    )
                )
                if overload
                else None
            ),
            # A crashed ISP must not process admission retries: the pump
            # holds its deferred queue until the node is back up.
            overload_gate=(
                (lambda isp_id: not self.net.is_down(f"isp{isp_id}"))
                if overload
                else None
            ),
            tracer=tracer,
        )
        self.endpoints: dict[str, ReliableEndpoint] = {}
        for isp_id in range(n_isps):
            name = f"isp{isp_id}"
            self.endpoints[name] = ReliableEndpoint(
                name,
                self.net,
                self.engine,
                self._isp_payload_handler(isp_id),
                retransmit_interval=retransmit_interval,
                max_retries=None,  # peers come back; convergence is the test
                backoff=backoff,
                max_interval=max_interval,
            )
        self.endpoints["bank"] = ReliableEndpoint(
            "bank",
            self.net,
            self.engine,
            self._on_bank_payload,
            retransmit_interval=retransmit_interval,
            max_retries=None,
            backoff=backoff,
            max_interval=max_interval,
        )
        self.coordinator = RetryingSnapshotCoordinator(
            self, **(snapshot_opts or {})
        )
        self.crash_controller = CrashController(self)
        self.monitor = InvariantMonitor(self, interval=monitor_interval)
        self.overload_monitor = OverloadMonitor(self, interval=monitor_interval)
        self.reconcile_every = reconcile_every
        # Overload circuit breakers: one per directed inter-ISP link
        # (created lazily) plus one guarding bank snapshot RPCs.
        self._transfer_breakers: dict[tuple[int, int], CircuitBreaker] = {}
        self._parked: dict[tuple[int, int], list[Letter]] = {}
        self._probe_armed: set[tuple[int, int]] = set()
        self._snapshot_breaker: CircuitBreaker | None = None
        self._rounds_observed = 0
        self.letters_parked = 0
        self.snapshots_skipped = 0
        if overload is not None:
            self._snapshot_breaker = CircuitBreaker(
                failure_threshold=overload.breaker_failure_threshold,
                reset_timeout=overload.breaker_reset_timeout,
            )
        # Paid letters currently in flight per unordered ISP pair: the
        # anti-symmetry adjustment the monitor applies mid-run.
        self._inflight_pair: dict[tuple[int, int], int] = {}
        # Client-side retry queues for submissions to crashed ISPs.
        self._deferred: dict[str, list[SendRequest]] = {}
        self._last_restart_time = 0.0
        self.submits = 0
        self.deferred_submits = 0
        self.flushed_submits = 0

    # -- transport (core -> wire) -------------------------------------------------

    def _transport(self, letter: Letter) -> None:
        if letter.paid:
            pair = letter.pair
            self._inflight_pair[pair] = self._inflight_pair.get(pair, 0) + 1
        if self.overload is not None:
            self._send_letter_guarded(letter)
            return
        self.endpoints[f"isp{letter.src_isp}"].send(f"isp{letter.dst_isp}", letter)

    # -- transfer circuit breaker ---------------------------------------------------

    def _transfer_breaker(self, key: tuple[int, int]) -> CircuitBreaker:
        breaker = self._transfer_breakers.get(key)
        if breaker is None:
            assert self.overload is not None
            breaker = CircuitBreaker(
                failure_threshold=self.overload.breaker_failure_threshold,
                reset_timeout=self.overload.breaker_reset_timeout,
            )
            self._transfer_breakers[key] = breaker
        return breaker

    def _send_letter_guarded(self, letter: Letter) -> None:
        """Send one letter through the directed link's circuit breaker.

        The breaker's failure signal is the reliable layer's unacked
        backlog toward the peer: a link whose retransmit queue keeps
        growing (crashed or saturated destination) trips the breaker
        after ``breaker_failure_threshold`` consecutive over-limit
        observations, and subsequent letters *park* locally instead of
        piling more frames onto the dying link. Parked letters were
        already counted in the per-pair in-flight ledger (the sender's
        credit moved at submit), so anti-symmetry monitoring is
        unaffected; they flush once a probe finds the backlog drained.
        """
        assert self.overload is not None
        src, dst = letter.src_isp, letter.dst_isp
        key = (src, dst)
        breaker = self._transfer_breaker(key)
        now = self.engine.now
        if not breaker.allow(now):
            self._parked.setdefault(key, []).append(letter)
            self.letters_parked += 1
            self._arm_park_probe(key)
            return
        src_name, dst_name = f"isp{src}", f"isp{dst}"
        backlog = self.endpoints[src_name].unacked_count(dst_name)
        if backlog > self.overload.breaker_backlog_limit:
            breaker.record_failure(now)
        else:
            breaker.record_success()
        self.endpoints[src_name].send(dst_name, letter)

    def _arm_park_probe(self, key: tuple[int, int]) -> None:
        if key in self._probe_armed:
            return
        assert self.overload is not None
        self._probe_armed.add(key)
        self.engine.schedule_after(
            self.overload.breaker_reset_timeout,
            lambda: self._probe_parked(key),
            label="park-probe",
        )

    def _probe_parked(self, key: tuple[int, int]) -> None:
        """Half-open trial for a parked link: flush if the backlog drained."""
        self._probe_armed.discard(key)
        parked = self._parked.get(key)
        if not parked:
            return
        assert self.overload is not None
        breaker = self._transfer_breakers[key]
        now = self.engine.now
        if not breaker.allow(now):
            self._arm_park_probe(key)
            return
        src, dst = key
        src_name, dst_name = f"isp{src}", f"isp{dst}"
        if self.net.is_down(src_name):
            # The parking ISP itself crashed meanwhile; try again later.
            self._arm_park_probe(key)
            return
        backlog = self.endpoints[src_name].unacked_count(dst_name)
        # Hysteresis: reopen the link only once the backlog has drained
        # to half the trip limit, so flushing doesn't immediately re-trip.
        if backlog > self.overload.breaker_backlog_limit // 2:
            breaker.record_failure(now)
            self._arm_park_probe(key)
            return
        breaker.record_success()
        self._parked[key] = []
        endpoint = self.endpoints[src_name]
        for letter in parked:
            endpoint.send(dst_name, letter)

    def parked_letters(self) -> int:
        """Letters currently parked behind open transfer breakers."""
        return sum(len(letters) for letters in self._parked.values())

    def _isp_payload_handler(self, isp_id: int):
        def on_payload(src: str, payload: object) -> None:
            if isinstance(payload, Letter):
                if payload.paid:
                    pair = payload.pair
                    self._inflight_pair[pair] -= 1
                self.network.deliver_transported(payload)
            elif isinstance(payload, ChaosSnapshotRequest):
                self.coordinator.on_request(isp_id, payload)
            elif isinstance(payload, SnapshotAbort):
                self.coordinator.on_abort(isp_id, payload)
            else:
                raise SimulationError(
                    f"isp{isp_id}: unexpected payload {payload!r} from {src}"
                )

        return on_payload

    def _on_bank_payload(self, src: str, payload: object) -> None:
        if isinstance(payload, ChaosSnapshotReply):
            self.coordinator.on_reply(payload)
        else:
            raise SimulationError(f"bank: unexpected payload {payload!r} from {src}")

    def send_control(self, src: str, dst: str, payload: object) -> None:
        """Carry a control message over the reliable links."""
        self.endpoints[src].send(dst, payload)

    def route_receipts(self, receipts: list[SendReceipt]) -> None:
        """Route letters produced by a flushed outbox (snapshot resume/abort)."""
        for receipt in receipts:
            if receipt.letter is not None:
                self.network._route_letter(receipt.letter)

    # -- workload ------------------------------------------------------------------

    def submit(self, request: SendRequest) -> None:
        """One user's send attempt; queued client-side if their ISP is down."""
        self.submits += 1
        name = f"isp{request.sender.isp}"
        if self.net.is_down(name):
            self.deferred_submits += 1
            self._deferred.setdefault(name, []).append(request)
            return
        self.network.send(request.sender, request.recipient, request.kind)

    def flush_deferred(self, node: str) -> None:
        """Replay submissions queued while ``node`` was down (client retries)."""
        queued = self._deferred.pop(node, None)
        if not queued:
            return
        for request in queued:
            self.flushed_submits += 1
            self.network.send(request.sender, request.recipient, request.kind)

    def schedule_crash(self, event: CrashEvent) -> None:
        """Arm a crash/restart pair; drain waits for the restart."""
        self.crash_controller.schedule(event)
        restart_at = event.at + event.down_for
        if restart_at > self._last_restart_time:
            self._last_restart_time = restart_at

    def _midnight(self) -> None:
        # Crashed nodes miss midnight: no resets, no bank trades. Their
        # durable counters restart exactly as journaled.
        up = [
            isp_id
            for isp_id in self.network.compliant_isps()
            if not self.net.is_down(f"isp{isp_id}")
        ]
        for isp_id in up:
            self.network.isps[isp_id].midnight()
        if not self.net.is_down("bank"):
            self.network.rebalance_pools(up)

    def _reconcile_tick(self) -> None:
        """Trigger reconciliation, short-circuited by the snapshot breaker.

        The breaker learns from *completed* rounds: each committed round
        is a success, each failed (uncommitted, uninterrupted) round a
        failure. While open, reconciliation ticks are skipped — a bank
        that keeps breaking rounds gets a quiet period instead of an
        ever-growing pile of doomed snapshot RPCs — and a half-open trial
        lets one round probe recovery.
        """
        breaker = self._snapshot_breaker
        if breaker is not None:
            now = self.engine.now
            rounds = self.coordinator.rounds
            index = self._rounds_observed
            while index < len(rounds) and rounds[index].finished_at is not None:
                outcome = rounds[index]
                if outcome.committed:
                    breaker.record_success()
                elif not outcome.interrupted:
                    breaker.record_failure(now)
                index += 1
            self._rounds_observed = index
            if not breaker.allow(now):
                self.snapshots_skipped += 1
                return
        self.coordinator.trigger()

    # -- running ---------------------------------------------------------------------

    def run(
        self,
        requests: Iterable[SendRequest],
        *,
        until: float,
        drain_window: float = 600.0,
        drain_step: float = 5.0,
    ) -> bool:
        """Drive a workload then drain to quiescence.

        The workload phase runs to ``until`` with the monitor, midnight
        chain and (if configured) periodic reconciliation armed. The
        drain phase stops *generating* new periodic work and runs the
        engine in ``drain_step`` slices until :meth:`quiescent` or the
        ``drain_window`` expires, then performs one final invariant
        check.

        Returns:
            Whether the deployment reached quiescence.
        """
        self.monitor.start()
        self.overload_monitor.start()
        self.engine.add_stream(requests, self.submit, label="chaos-workload")
        midnight_handle = self.engine.schedule_every(
            DAY, self._midnight, label="chaos-midnight"
        )
        reconcile_handle = None
        if self.reconcile_every is not None:
            reconcile_handle = self.engine.schedule_every(
                self.reconcile_every,
                self._reconcile_tick,
                label="chaos-reconcile",
            )
        self.engine.run(until=until)
        midnight_handle.cancel()
        if reconcile_handle is not None:
            reconcile_handle.cancel()
        deadline = until + drain_window
        while self.engine.now < deadline and not self.quiescent():
            self.engine.run(until=min(self.engine.now + drain_step, deadline))
        self.monitor.stop()
        self.monitor.check()
        self.overload_monitor.stop()
        self.overload_monitor.check()
        return self.quiescent()

    def quiescent(self) -> bool:
        """Whether every message settled and every crashed node is back."""
        return (
            self.engine.now >= self._last_restart_time
            and not self.net.down_nodes
            and not any(self._deferred.values())
            and not self.coordinator.active
            and self.network.paid_letters_in_flight == 0
            and self.network.overload_pending() == 0
            and self.parked_letters() == 0
            and all(ep.all_delivered() for ep in self.endpoints.values())
        )

    # -- introspection ------------------------------------------------------------------

    def inflight_pair(self, a: int, b: int) -> int:
        """Paid letters currently in flight between ISPs ``a`` and ``b``."""
        key = (a, b) if a <= b else (b, a)
        return self._inflight_pair.get(key, 0)

    def digest(self) -> str:
        """The deployment's accounting digest (see :mod:`.monitors`)."""
        return accounting_digest(self.network)

    def stats(self) -> dict:
        """Aggregate wire/recovery counters for campaign reports."""
        endpoints = self.endpoints.values()
        return {
            "submits": self.submits,
            "deferred_submits": self.deferred_submits,
            "flushed_submits": self.flushed_submits,
            "frames_sent": sum(ep.frames_sent for ep in endpoints),
            "retransmissions": sum(ep.retransmissions for ep in endpoints),
            "duplicates_dropped": sum(ep.duplicates_dropped for ep in endpoints),
            "faults_dropped": self.net.faults_dropped,
            "faults_duplicated": self.net.faults_duplicated,
            "faults_reordered": self.net.faults_reordered,
            "dropped_down": self.net.dropped_down,
            "crashes": self.crash_controller.crashes,
            "restarts": self.crash_controller.restarts,
            "snapshot_rounds": len(self.coordinator.rounds),
            "snapshot_committed": self.coordinator.rounds_committed,
            "snapshot_failed": self.coordinator.rounds_failed,
            "monitor_checks": self.monitor.checks_run,
            "violations": self.monitor.violations_seen,
            "overload_violations": self.overload_monitor.violations_seen,
            "letters_parked": self.letters_parked,
            "parked_now": self.parked_letters(),
            "transfer_breaker_opens": sum(
                b.times_opened for b in self._transfer_breakers.values()
            ),
            "snapshot_breaker_opens": (
                self._snapshot_breaker.times_opened
                if self._snapshot_breaker is not None
                else 0
            ),
            "snapshots_skipped": self.snapshots_skipped,
            **self.network.overload_stats(),
        }
