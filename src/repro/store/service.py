"""``repro serve``: a long-running SMTP service over the durable store.

The deployable shape of the reproduction: real RFC 821 conversations on
localhost TCP, one listener per compliant ISP, with the Zmail ledger,
bank and ISP aggregates living in the SQLite write-ahead store. Mail
from a local user arrives unstamped and is submitted outbound (admission
control, accounting, stamping); stamped mail from a peer ISP is
authenticated and delivered. Barrier commits persist the network *and*
each gateway's pending deferred queue in one transaction, so killing the
process and starting a new one resumes with every in-flight retry
intact — the service-level face of the soak harness's
recovery-equivalence guarantee.

Also home to ``repro selftest``, the operator's one-command health
check: open the store read-only, verify every checksum, rebuild the
network, assert the credit matrix is anti-symmetric and value is
conserved, then push one message through a live SMTP round trip
(in-memory network copy only — the store is not written).
"""

from __future__ import annotations

import asyncio
import dataclasses
from typing import Any

from ..core.overload import OverloadConfig
from ..errors import SimulationError, SMTPProtocolError
from ..smtp.gateway import ZmailGateway
from ..smtp.message import MailMessage
from ..smtp.server import SMTPServer
from ..smtp.transport import Envelope, InMemoryTransport
from ..smtp.zmail_headers import read_stamp
from ..smtp.address import from_sim_address, to_sim_address
from ..smtp.client import SMTPClient
from ..sim.workload import Address
from .backend import DurableStore
from .network import attach_tracker, commit_network, restore_network

__all__ = ["ZmailService", "run_selftest"]

_SERVICE_KIND = "svc"


class ZmailService:
    """SMTP listeners for every compliant ISP over one durable store.

    Args:
        store: An open :class:`DurableStore` (the service does not close
            it). The network is rebuilt from it on construction and any
            persisted pending gateway queues are rehydrated, so a
            restarted service resumes exactly where the last barrier
            commit left the previous one.
        overload: Admission control for outbound submissions; must match
            the setting of the service that wrote any persisted pending
            queues (a pending journal with no admission layer to load it
            into is a configuration error, surfaced loudly).
        commit_interval: Wall seconds between automatic barrier commits
            once :meth:`start` runs; ``None`` commits only on
            :meth:`commit`/:meth:`stop`.

    Time: the service keeps a logical clock (`now`) advanced by
    :meth:`tick`; admission retries are pumped there, keeping the whole
    service deterministic under test while the asyncio layer stays free
    to schedule ticks off wall time in production.
    """

    def __init__(
        self,
        store: DurableStore,
        *,
        overload: OverloadConfig | None = None,
        commit_interval: float | None = None,
    ) -> None:
        self.store = store
        self.network = restore_network(store)
        self.tracker = attach_tracker(self.network)
        self.transport = InMemoryTransport()
        self.overload = overload
        self.commit_interval = commit_interval
        self.now = 0.0
        self.barrier = store.barrier
        self.messages_handled = 0
        self.unroutable = 0
        self.gateways: dict[int, ZmailGateway] = {}
        for isp_id in sorted(self.network.compliant_isps()):
            gateway = ZmailGateway(
                self.network,
                isp_id,
                self.transport,
                overload=overload,
                clock=lambda: self.now,
            )
            self.transport.register_domain(gateway.domain, gateway.handle_inbound)
            self.gateways[isp_id] = gateway
        self._rehydrate_pending()
        self.servers: dict[int, SMTPServer] = {
            isp_id: SMTPServer(
                self._handler_for(gateway), hostname=gateway.domain
            )
            for isp_id, gateway in self.gateways.items()
        }
        self.addresses: dict[int, tuple[str, int]] = {}
        self._commit_task: asyncio.Task | None = None

    # -- pending-queue persistence ---------------------------------------------------

    def _rehydrate_pending(self) -> None:
        """Reload each gateway's deferred queue from the last commit.

        A journal present in the store while this service runs without
        admission control would silently drop the previous incarnation's
        in-flight retries; ``load_pending_state`` raises for that case.
        """
        for isp_id, gateway in self.gateways.items():
            state = self.store.get(_SERVICE_KIND, f"gateway{isp_id}")
            gateway.load_pending_state(state)
            if state is not None:
                # All persisted timestamps are from the previous
                # incarnation's clock; resume past every one of them so
                # token-refill and backoff arithmetic never see time
                # run backwards.
                self.now = max(
                    self.now,
                    float(state["bucket"]["last"]),
                    *(
                        float(item["due"])
                        for item in state["queue"]["items"]
                    ),
                )

    def _pending_puts(self) -> list[tuple[str, str, Any]]:
        puts: list[tuple[str, str, Any]] = []
        if self.overload is not None:
            # The admission parameters ride along so a later incarnation
            # (or the selftest) can rebuild a compatible gateway layer
            # without out-of-band configuration.
            puts.append(
                (_SERVICE_KIND, "overload", dataclasses.asdict(self.overload))
            )
        for isp_id, gateway in sorted(self.gateways.items()):
            state = gateway.pending_state()
            if state is not None:
                puts.append((_SERVICE_KIND, f"gateway{isp_id}", state))
        return puts

    # -- SMTP face -------------------------------------------------------------------

    def _handler_for(self, gateway: ZmailGateway):
        def handle(envelope: Envelope) -> None:
            self.messages_handled += 1
            stamp = read_stamp(envelope.message)
            if stamp is None:
                # Unstamped mail is a submission from one of this
                # gateway's own users; anything else is unroutable.
                try:
                    sender = to_sim_address(envelope.mail_from)
                    recipient = to_sim_address(envelope.rcpt_to)
                except SMTPProtocolError:
                    self.unroutable += 1
                    return
                if sender.isp != gateway.isp_id:
                    self.unroutable += 1
                    return
                gateway.submit_outbound(
                    sender.user, recipient, envelope.message
                )
            else:
                gateway.handle_inbound(envelope)

        return handle

    async def start(self, host: str = "127.0.0.1") -> dict[int, tuple[str, int]]:
        """Start every listener; returns ``{isp_id: (host, port)}``."""
        for isp_id, server in sorted(self.servers.items()):
            self.addresses[isp_id] = await server.start(host, 0)
        if self.commit_interval is not None:
            self._commit_task = asyncio.create_task(self._commit_loop())
        return dict(self.addresses)

    async def _commit_loop(self) -> None:
        assert self.commit_interval is not None
        while True:
            await asyncio.sleep(self.commit_interval)
            self.tick(self.commit_interval)
            self.commit()

    async def stop(self, *, commit: bool = True) -> None:
        """Stop listeners and the commit loop; final commit by default.

        ``commit=False`` supports read-only flows (the selftest) that
        run against a store already closed after the initial load.
        """
        if self._commit_task is not None:
            self._commit_task.cancel()
            try:
                await self._commit_task
            except asyncio.CancelledError:
                pass
            self._commit_task = None
        for server in self.servers.values():
            await server.stop()
        if commit:
            self.commit()

    # -- time and durability ---------------------------------------------------------

    def tick(self, seconds: float) -> int:
        """Advance the logical clock and pump due admission retries."""
        if seconds < 0:
            raise SimulationError(f"cannot tick backwards ({seconds})")
        self.now += seconds
        pumped = 0
        for _, gateway in sorted(self.gateways.items()):
            pumped += gateway.pump(self.now)
        return pumped

    def commit(self) -> int:
        """Barrier commit: network deltas + pending queues, one txn."""
        self.barrier += 1
        return commit_network(
            self.store,
            self.network,
            self.tracker,
            barrier=self.barrier,
            extra=self._pending_puts(),
        )

    def stats(self) -> dict[str, Any]:
        """Operational counters for the status line / tests."""
        return {
            "barrier": self.barrier,
            "now": self.now,
            "messages_handled": self.messages_handled,
            "unroutable": self.unroutable,
            "pending_sends": sum(
                g.pending_sends for g in self.gateways.values()
            ),
            "conserved": (
                self.network.total_value()
                == self.network.expected_total_value()
            ),
        }


def run_selftest(store_path: str) -> dict[str, Any]:
    """``repro selftest``: checksum sweep, invariants, one round trip.

    Pure read: the store is verified and loaded but never written — the
    round-trip message runs against the rebuilt in-memory network copy.

    Returns a report dict with a ``passed`` verdict.

    Raises:
        SimulationError: on any checksum failure or missing state (the
            load path refuses corrupted stores before checking anything
            else).
    """
    with DurableStore.open(store_path) as store:
        records = store.verify()
        barrier = store.barrier
        overload_blob = store.get(_SERVICE_KIND, "overload")
        overload = (
            OverloadConfig(**overload_blob)
            if overload_blob is not None
            else None
        )
        service = ZmailService(store, overload=overload)
    network = service.network
    reconciliation = network.reconcile("direct")
    conserved = network.total_value() == network.expected_total_value()

    roundtrip = _smtp_roundtrip(service)
    passed = bool(reconciliation.consistent and conserved and roundtrip)
    return {
        "passed": passed,
        "records": records,
        "barrier": barrier,
        "isps": sorted(service.gateways),
        "anti_symmetric": reconciliation.consistent,
        "conserved": conserved,
        "roundtrip": roundtrip,
    }


def _smtp_roundtrip(service: ZmailService) -> bool:
    """Send one real SMTP message between the first two compliant ISPs.

    With a single compliant ISP the round trip is local (user 0 to user
    1 of the same domain); either way the message must land in the
    recipient's inbox as paid mail. Read-only with respect to the store:
    the service is stopped with ``commit=False``.
    """
    isp_ids = sorted(service.gateways)
    src = isp_ids[0]
    dst = isp_ids[1] if len(isp_ids) > 1 else isp_ids[0]
    sender = str(from_sim_address(Address(src, 0)))
    recipient = str(from_sim_address(Address(dst, 1)))

    async def _run() -> bool:
        await service.start()
        try:
            host, port = service.addresses[src]
            message = MailMessage.compose(
                sender=sender,
                recipient=recipient,
                subject="selftest",
                body="store selftest round trip",
            )
            client = SMTPClient(host, port)
            await client.connect()
            try:
                await client.send(Envelope(sender, recipient, message))
            finally:
                await client.quit()
        finally:
            await service.stop(commit=False)
        box = service.gateways[dst].mailbox(1)
        if service.overload is not None:
            # A rehydrated token bucket may be empty, deferring the probe
            # message; that is backpressure working, not a failure. Pump
            # logical time until the retry goes through (or gives up).
            for _ in range(service.overload.max_retries + 2):
                if box.inbox:
                    break
                service.tick(service.overload.retry_max_interval)
        return len(box.inbox) == 1 and box.inbox[0].paid

    return asyncio.run(_run())
