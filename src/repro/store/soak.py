"""Continuous soak: a durable deployment vs. an in-memory oracle.

The recovery-equivalence differential at the heart of the durable
store's correctness argument. One seeded scenario — days of virtual
traffic, an overload flood, periodic reconciliation, scheduled
crash/restart cycles — runs twice:

* **durable** — crash journals, reliable-endpoint queues and admission
  queues are persisted through the SQLite store; every restart rebuilds
  the node from *disk only* (the in-memory copy is dropped at the crash
  instant). Barrier commits run on a timer, and at every commit cut the
  run restores a complete second network from the store and asserts its
  durable digest equals the live one.
* **oracle** — the identical scenario with the historical in-memory
  crash model (journals held as sealed text in the controller). Same
  commit-cut timer cadence (digest-only, no disk), so the two engines
  process the same event schedule.

If the store round-trips state exactly, the two runs are
*byte-identical*: their :class:`~repro.obs.manifest.RunManifest`
documents — event multiset digest (store bookkeeping events excluded),
filtered metrics digest, cut-digest chain, invariant-monitor verdicts —
compare equal with ``cmp``. Any lossy encoding, missed dirty page or
ordering leak shows up as a manifest mismatch or a failed cut.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..chaos.crash import CrashController, CrashEvent
from ..chaos.deployment import ChaosDeployment
from ..chaos.faults import FaultSpec, FloodSpec, flood_requests
from ..core.overload import OverloadConfig
from ..errors import SimulationError
from ..obs.manifest import RunManifest, config_digest
from ..obs.metrics_export import METRICS_FORMAT_VERSION, export_deployment
from ..obs.trace import AdditiveMultisetDigest, DigestSink, TraceRecorder
from ..sim.clock import DAY
from ..sim.rng import SeededStreams, derive_seed
from ..sim.workload import NormalUserWorkload, merge_workloads
from .backend import DurableStore
from .network import (
    attach_tracker,
    commit_network,
    durable_digest,
    init_store,
    restore_network,
)
from .wire import decode_send, decode_wire, encode_send, encode_wire

__all__ = ["SoakSpec", "StoreCrashController", "run_soak", "STORE_EVENT_TYPES"]

#: Trace event types that exist only in durable mode; the soak manifest's
#: event digest excludes them so durable and oracle runs stay comparable.
STORE_EVENT_TYPES = (
    "store.commit",
    "store.restore",
    "store.crash",
    "store.restart",
)

_JOURNAL_KIND = "journal"
_ENDPOINT_KIND = "endpoint"
_ADMISSION_KIND = "admission"


@dataclass(frozen=True)
class SoakSpec:
    """One seeded soak scenario (deployment + workload + fault schedule)."""

    seed: int = 7
    n_isps: int = 3
    users_per_isp: int = 6
    days: float = 1.0
    rate_per_day: float = 2000.0
    commit_interval: float = 3600.0
    monitor_interval: float = 5.0
    reconcile_every: float = 300.0
    drain_window: float = 1800.0
    crash_nodes: tuple[str, ...] = ("isp1", "bank")
    crash_down_for: float = 60.0
    flood_rate_per_sec: float = 20.0
    flood_duration: float = 120.0
    overload: OverloadConfig | None = field(
        default_factory=lambda: OverloadConfig(
            admit_rate=10.0,
            admit_burst=20,
            queue_capacity=64,
            retry_base=2.0,
            retry_backoff=2.0,
            retry_max_interval=30.0,
            max_retries=3,
        )
    )
    faults: FaultSpec | None = field(
        default_factory=lambda: FaultSpec(
            drop_rate=0.05, duplicate_rate=0.05, reorder_rate=0.05
        )
    )

    @property
    def duration(self) -> float:
        return self.days * DAY

    def crash_plan(self) -> list[CrashEvent]:
        """Evenly spaced crash/restart cycles across the workload phase."""
        events = []
        n = len(self.crash_nodes)
        for index, node in enumerate(self.crash_nodes):
            events.append(
                CrashEvent(
                    node=node,
                    at=self.duration * (index + 1) / (n + 1),
                    down_for=self.crash_down_for,
                )
            )
        return events


class StoreCrashController(CrashController):
    """Crash/restart backed by the durable store instead of memory.

    At the crash instant the sealed node journal, the reliable
    endpoint's queue state and (for ISPs) the admission controller's
    deferred queue are committed to the store, and the in-memory copies
    are dropped. Restart reads *only* the store — the same information a
    freshly exec'd process would find on disk — making every injected
    crash a true process-death rehearsal.
    """

    def __init__(self, deployment: ChaosDeployment, store: DurableStore) -> None:
        super().__init__(deployment)
        self.store = store

    def crash(self, node: str) -> None:
        super().crash(node)
        deployment = self.deployment
        puts: list[tuple[str, str, Any]] = [
            (_JOURNAL_KIND, node, self._journals.pop(node)),
            (
                _ENDPOINT_KIND,
                node,
                deployment.endpoints[node].state_dict(encode_wire),
            ),
        ]
        admission = deployment.network.overload_controllers()
        if node != "bank":
            isp_id = self._isp_id(node)
            if isp_id in admission:
                puts.append(
                    (
                        _ADMISSION_KIND,
                        node,
                        admission[isp_id].state_dict(encode_send),
                    )
                )
        self.store.commit(puts, barrier=self.store.barrier)
        tracer = deployment.tracer
        if tracer.enabled:
            tracer.emit("store.crash", node=node)

    def restart(self, node: str) -> None:
        deployment = self.deployment
        journal_text = self.store.get(_JOURNAL_KIND, node)
        if journal_text is None:
            raise SimulationError(f"store holds no crash journal for {node!r}")
        # Hand the base restart the on-disk journal; it unseals (checksum
        # verification) and rebuilds the node from it.
        self._journals[node] = journal_text
        endpoint_state = self.store.get(_ENDPOINT_KIND, node)
        if endpoint_state is None:
            raise SimulationError(f"store holds no endpoint state for {node!r}")
        deployment.endpoints[node].load_state(endpoint_state, decode_wire)
        admission_state = self.store.get(_ADMISSION_KIND, node)
        if admission_state is not None:
            isp_id = self._isp_id(node)
            deployment.network.overload_controllers()[isp_id].load_state(
                admission_state, decode_send
            )
        super().restart(node)
        self.store.commit(
            [],
            barrier=self.store.barrier,
            deletes=[
                (_JOURNAL_KIND, node),
                (_ENDPOINT_KIND, node),
                (_ADMISSION_KIND, node),
            ],
        )
        tracer = deployment.tracer
        if tracer.enabled:
            tracer.emit("store.restart", node=node)


def _build_deployment(spec: SoakSpec, tracer: TraceRecorder) -> ChaosDeployment:
    return ChaosDeployment(
        n_isps=spec.n_isps,
        users_per_isp=spec.users_per_isp,
        seed=spec.seed,
        faults=spec.faults,
        monitor_interval=spec.monitor_interval,
        reconcile_every=spec.reconcile_every,
        overload=spec.overload,
        tracer=tracer,
    )


def _requests(spec: SoakSpec, deployment: ChaosDeployment):
    workload = NormalUserWorkload(
        n_isps=spec.n_isps,
        users_per_isp=spec.users_per_isp,
        streams=SeededStreams(derive_seed(deployment.seed, "chaos-workload")),
        rate_per_day=spec.rate_per_day,
    )
    requests = workload.generate(spec.duration)
    if spec.flood_rate_per_sec > 0 and spec.n_isps >= 2:
        flood = FloodSpec(
            attacker_isp=0,
            target_isp=1,
            rate_per_sec=spec.flood_rate_per_sec,
            start=spec.duration * 0.25,
            duration=spec.flood_duration,
        )
        requests = merge_workloads(
            requests,
            flood_requests(
                flood,
                n_isps=spec.n_isps,
                users_per_isp=spec.users_per_isp,
                streams=SeededStreams(derive_seed(deployment.seed, "flood:0")),
                name="flood0",
            ),
        )
    return requests


def _filtered_metrics_digest(deployment: ChaosDeployment) -> str:
    """The metrics-export digest minus durable-mode-only counters."""
    import hashlib

    flat = export_deployment(deployment).collect()
    filtered = {
        name: value
        for name, value in flat.items()
        if not name.startswith("zmail.store.")
    }
    canonical = json.dumps(
        {
            "format_version": METRICS_FORMAT_VERSION,
            "metrics": {name: filtered[name] for name in sorted(filtered)},
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def run_soak(
    spec: SoakSpec,
    *,
    store_path: str | None = None,
    manifest_path: str | None = None,
) -> dict[str, Any]:
    """Run one soak scenario; durable iff ``store_path`` is given.

    Returns the report dict (manifest, cut results, stats, verdict) and
    writes the manifest's canonical byte form to ``manifest_path`` when
    given — the file CI compares between durable and oracle runs with
    ``cmp``.

    Raises:
        SimulationError: the moment any commit cut's restored-from-disk
            digest diverges from the live network (durable mode only).
    """
    accumulator = AdditiveMultisetDigest(exclude_types=STORE_EVENT_TYPES)
    tracer = TraceRecorder(sink=DigestSink(accumulator))
    deployment = _build_deployment(spec, tracer)
    network = deployment.network

    store: DurableStore | None = None
    cuts: list[str] = []
    barriers = [0]
    if store_path is not None:
        store = DurableStore.create(store_path)
        init_store(store, network)
        tracker = attach_tracker(network)
        deployment.crash_controller = StoreCrashController(deployment, store)

        def commit_cut() -> None:
            barriers[0] += 1
            commit_network(store, network, tracker, barrier=barriers[0])
            live = durable_digest(network)
            restored = durable_digest(restore_network(store))
            if restored != live:
                raise SimulationError(
                    f"recovery-equivalence violated at barrier {barriers[0]}: "
                    f"restored {restored[:16]} != live {live[:16]}"
                )
            cuts.append(live)

    else:

        def commit_cut() -> None:
            barriers[0] += 1
            cuts.append(durable_digest(network))

    for event in spec.crash_plan():
        deployment.schedule_crash(event)
    commit_handle = deployment.engine.schedule_every(
        spec.commit_interval, commit_cut, label="store-commit"
    )
    converged = deployment.run(
        _requests(spec, deployment),
        until=spec.duration,
        drain_window=spec.drain_window,
    )
    commit_handle.cancel()
    commit_cut()  # final cut at quiescence

    stats = deployment.stats()
    conserved = network.total_value() == network.expected_total_value()
    passed = (
        converged
        and conserved
        and stats["violations"] == 0
        and stats["overload_violations"] == 0
    )
    manifest = RunManifest(
        seed=spec.seed,
        config_digest=config_digest(network.config),
        event_count=accumulator.count,
        event_digest=accumulator.digest(),
        metrics_digest=_filtered_metrics_digest(deployment),
        extra={
            "scenario": "store-soak",
            "days": spec.days,
            "n_isps": spec.n_isps,
            "users_per_isp": spec.users_per_isp,
            "cuts": len(cuts),
            "cut_chain": _chain_digest(cuts),
            "crashes": stats["crashes"],
            "restarts": stats["restarts"],
            "converged": converged,
            "conserved": conserved,
            "violations": stats["violations"],
            "overload_violations": stats["overload_violations"],
        },
    )
    if manifest_path is not None:
        with open(manifest_path, "w", encoding="utf-8") as handle:
            handle.write(manifest.to_json())
    report = {
        "mode": "durable" if store is not None else "oracle",
        "passed": passed,
        "converged": converged,
        "conserved": conserved,
        "cuts": len(cuts),
        "final_digest": cuts[-1],
        "manifest": manifest.to_dict(),
        "stats": stats,
    }
    if store is not None:
        report["store_records"] = store.verify()
        report["store_barrier"] = store.barrier
        store.close()
    return report


def _chain_digest(cuts: list[str]) -> str:
    """One hex digest pinning the whole ordered sequence of cut digests."""
    import hashlib

    return hashlib.sha256("\n".join(cuts).encode("ascii")).hexdigest()
