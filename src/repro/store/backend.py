"""SQLite (WAL mode) durable backend for Zmail deployment state.

The store is a key-value journal with per-record checksums:

* ``meta(key, value)`` — format versions, genesis topology (ISP count,
  users per ISP, compliant flags, config, seed) and the last committed
  barrier. Small, rewritten in full on every commit.
* ``records(kind, key, payload, checksum, barrier)`` — sealed state
  fragments keyed by ``(kind, key)``: per-ISP aggregates, dirty user
  purses, the bank ledger, gateway/endpoint retry queues, chaos crash
  journals. ``payload`` is canonical JSON; ``checksum`` binds the
  payload to its (kind, key) identity so any on-disk corruption —
  including a flipped digit that would still parse — raises
  :class:`~repro.errors.SimulationError` on read.

WAL mode gives atomic multi-row commits (a barrier's writes land
together or not at all) with readers never blocking the writer;
``synchronous=NORMAL`` is WAL's durable-at-checkpoint setting — a crash
can lose at most the tail after the last committed transaction, never
corrupt committed state. The restart path re-runs from the last barrier
either way, which is exactly the crash model the chaos harness tests.

All ``sqlite3`` errors surface as ``SimulationError``: callers handle
one failure vocabulary.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Iterator

from ..errors import SimulationError
from .codec import (
    STORE_FORMAT_VERSION,
    decode_payload,
    encode_payload,
    record_checksum,
)

__all__ = ["DurableStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS records (
    kind     TEXT    NOT NULL,
    key      TEXT    NOT NULL,
    payload  TEXT    NOT NULL,
    checksum TEXT    NOT NULL,
    barrier  INTEGER NOT NULL,
    PRIMARY KEY (kind, key)
) WITHOUT ROWID;
"""


class DurableStore:
    """A checksummed key-value journal over one SQLite file.

    Use :meth:`create` for a fresh store and :meth:`open` for an
    existing one (the latter verifies format versions). Writes go
    through :meth:`commit`, which wraps a batch of puts/deletes in one
    WAL transaction — the store's only unit of durability.
    """

    def __init__(self, path: str, *, _create: bool = False) -> None:
        self.path = path
        try:
            self._conn = sqlite3.connect(path, isolation_level=None)
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
        except sqlite3.Error as exc:
            raise SimulationError(f"cannot open store {path!r}: {exc}") from exc
        if _create:
            self._meta_put_now("store_format_version", str(STORE_FORMAT_VERSION))
        else:
            found = self.meta_get("store_format_version")
            if found != str(STORE_FORMAT_VERSION):
                raise SimulationError(
                    f"store {path!r} has format version {found!r}, "
                    f"expected {STORE_FORMAT_VERSION!r}"
                )

    # -- lifecycle ---------------------------------------------------------------

    @classmethod
    def create(cls, path: str) -> "DurableStore":
        """Create a fresh store (the file must not already hold one)."""
        return cls(path, _create=True)

    @classmethod
    def open(cls, path: str) -> "DurableStore":
        """Open an existing store, verifying its format version."""
        return cls(path)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- meta --------------------------------------------------------------------

    def _meta_put_now(self, key: str, value: str) -> None:
        try:
            self._conn.execute(
                "INSERT INTO meta(key, value) VALUES(?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                (key, value),
            )
        except sqlite3.Error as exc:
            raise SimulationError(f"store meta write failed: {exc}") from exc

    def meta_get(self, key: str) -> str | None:
        try:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key=?", (key,)
            ).fetchone()
        except sqlite3.Error as exc:
            raise SimulationError(f"store meta read failed: {exc}") from exc
        return row[0] if row is not None else None

    def meta_require(self, key: str) -> str:
        value = self.meta_get(key)
        if value is None:
            raise SimulationError(f"store is missing meta key {key!r}")
        return value

    # -- transactional writes ----------------------------------------------------

    def commit(
        self,
        puts: Iterator[tuple[str, str, Any]] | list[tuple[str, str, Any]] = (),
        *,
        barrier: int,
        deletes: Iterator[tuple[str, str]] | list[tuple[str, str]] = (),
        meta: dict[str, str] | None = None,
    ) -> int:
        """Atomically apply a batch of writes at one barrier point.

        ``puts`` yields ``(kind, key, value)`` triples; values are
        sealed (canonical JSON + checksum) and upserted. The whole batch
        plus the ``barrier`` meta bump lands in a single WAL
        transaction. Returns the number of records written.
        """
        written = 0
        try:
            self._conn.execute("BEGIN IMMEDIATE")
            for kind, key, value in puts:
                payload = encode_payload(value)
                self._conn.execute(
                    "INSERT INTO records(kind, key, payload, checksum, barrier) "
                    "VALUES(?, ?, ?, ?, ?) "
                    "ON CONFLICT(kind, key) DO UPDATE SET "
                    "payload=excluded.payload, checksum=excluded.checksum, "
                    "barrier=excluded.barrier",
                    (kind, key, payload, record_checksum(kind, key, payload), barrier),
                )
                written += 1
            for kind, key in deletes:
                self._conn.execute(
                    "DELETE FROM records WHERE kind=? AND key=?", (kind, key)
                )
            for meta_key, meta_value in (meta or {}).items():
                self._conn.execute(
                    "INSERT INTO meta(key, value) VALUES(?, ?) "
                    "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                    (meta_key, meta_value),
                )
            self._conn.execute(
                "INSERT INTO meta(key, value) VALUES('barrier', ?) "
                "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                (str(barrier),),
            )
            self._conn.execute("COMMIT")
        except BaseException as exc:
            # Roll back on *any* failure — including a value json.dumps
            # refuses to encode — so no partial batch is ever left in an
            # open transaction.
            try:
                self._conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            if isinstance(exc, sqlite3.Error):
                raise SimulationError(f"store commit failed: {exc}") from exc
            raise
        return written

    # -- reads -------------------------------------------------------------------

    def _verify_row(self, kind: str, key: str, payload: str, checksum: str) -> Any:
        if record_checksum(kind, key, payload) != checksum:
            raise SimulationError(
                f"store record ({kind!r}, {key!r}) failed its checksum — "
                "refusing to load a corrupted ledger"
            )
        return decode_payload(payload)

    def get(self, kind: str, key: str) -> Any:
        """Fetch and verify one record; ``None`` if absent."""
        try:
            row = self._conn.execute(
                "SELECT payload, checksum FROM records WHERE kind=? AND key=?",
                (kind, key),
            ).fetchone()
        except sqlite3.Error as exc:
            raise SimulationError(f"store read failed: {exc}") from exc
        if row is None:
            return None
        return self._verify_row(kind, key, row[0], row[1])

    def iter_kind(self, kind: str) -> Iterator[tuple[str, Any]]:
        """Yield ``(key, value)`` for every record of ``kind``, verified."""
        try:
            rows = self._conn.execute(
                "SELECT key, payload, checksum FROM records "
                "WHERE kind=? ORDER BY key",
                (kind,),
            ).fetchall()
        except sqlite3.Error as exc:
            raise SimulationError(f"store scan failed: {exc}") from exc
        for key, payload, checksum in rows:
            yield key, self._verify_row(kind, key, payload, checksum)

    def count(self, kind: str | None = None) -> int:
        try:
            if kind is None:
                row = self._conn.execute("SELECT COUNT(*) FROM records").fetchone()
            else:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM records WHERE kind=?", (kind,)
                ).fetchone()
        except sqlite3.Error as exc:
            raise SimulationError(f"store count failed: {exc}") from exc
        return int(row[0])

    @property
    def barrier(self) -> int:
        """The last committed barrier (0 before the first commit)."""
        value = self.meta_get("barrier")
        return int(value) if value is not None else 0

    def verify(self) -> int:
        """Integrity-check the whole file; returns the record count.

        Runs SQLite's own page-level check, then re-verifies every
        record checksum. Raises ``SimulationError`` on the first
        corruption found.
        """
        try:
            status = self._conn.execute("PRAGMA integrity_check").fetchone()[0]
        except sqlite3.Error as exc:
            raise SimulationError(f"store integrity check failed: {exc}") from exc
        if status != "ok":
            raise SimulationError(f"store file failed integrity check: {status}")
        checked = 0
        try:
            rows = self._conn.execute(
                "SELECT kind, key, payload, checksum FROM records"
            ).fetchall()
        except sqlite3.Error as exc:
            raise SimulationError(f"store scan failed: {exc}") from exc
        for kind, key, payload, checksum in rows:
            self._verify_row(kind, key, payload, checksum)
            checked += 1
        return checked
