"""Persisting a :class:`ZmailNetwork` through the durable store.

The representation is *genesis + ever-dirty deltas*: the store's meta
table pins the deterministic genesis parameters (topology, config,
seed), and the records table holds only state that has ever diverged
from genesis — per-ISP aggregates (pool, cash, credit, compliance view,
stats; O(n_isps), rewritten every barrier), the bank ledger, the
external-deposit conservation counter, and exactly the user purses the
dirty tracker saw mutate. Restore therefore costs
O(n_isps + ever-dirty-users), not O(users): an ISP with a million
accounts whose hot set is 1% restarts ~100× less state.

Why the dirty superset is sound: every path that mutates a user runs
through one of the three hooked funnels (``_send_admitted`` touches
sender *and* recipient, ``_deliver_letter`` the recipient,
``fund_user`` the funded user). Midnight's ``reset_daily`` only changes
users with ``sent_today > 0`` — necessarily touched by a send since the
last commit that persisted them — and auto-topup happens inside the
send path. Barrier commits flush the accumulated set atomically, so
after any crash the store holds a consistent prefix: genesis plus every
delta up to the last committed barrier.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..core import persistence
from ..core.protocol import ZmailNetwork
from .backend import DurableStore

__all__ = [
    "DirtyTracker",
    "init_store",
    "attach_tracker",
    "commit_network",
    "restore_network",
    "durable_digest",
]

_USER_KIND = "user"
_ISP_KIND = "isp"
_BANK_KIND = "bank"
_NET_KIND = "net"


def _user_key(isp_id: int, user_id: int) -> str:
    return f"{isp_id}:{user_id}"


class DirtyTracker:
    """Accumulates the (isp, user) pairs mutated since the last commit."""

    __slots__ = ("dirty",)

    def __init__(self) -> None:
        self.dirty: set[tuple[int, int]] = set()

    def touch(self, isp_id: int, user_id: int) -> None:
        self.dirty.add((isp_id, user_id))

    def drain(self) -> list[tuple[int, int]]:
        """Return the dirty set in deterministic order and clear it."""
        pairs = sorted(self.dirty)
        self.dirty.clear()
        return pairs


def attach_tracker(network: ZmailNetwork) -> DirtyTracker:
    """Install a fresh :class:`DirtyTracker` on ``network``'s touch hook."""
    tracker = DirtyTracker()
    network.set_touch_hook(tracker.touch)
    return tracker


def init_store(store: DurableStore, network: ZmailNetwork) -> None:
    """Write the genesis metadata for ``network`` into a fresh store.

    Must run before the first :func:`commit_network`; ``network`` should
    still be at (or near) genesis — any pre-existing divergence is
    captured as a full barrier-0 commit of every aggregate plus the
    bank, with no user assumed dirty.
    """
    compliant = [
        isp_id in network.compliant_isps() for isp_id in range(network.n_isps)
    ]
    store.commit(
        _aggregate_puts(network),
        barrier=0,
        meta={
            "journal_format_version": str(persistence.FORMAT_VERSION),
            "n_isps": str(network.n_isps),
            "users_per_isp": str(network.users_per_isp),
            "seed": str(network.seed),
            "compliant": json.dumps(compliant),
            "config": json.dumps(
                persistence.config_state(network.config), sort_keys=True
            ),
        },
    )


def _aggregate_puts(network: ZmailNetwork) -> list[tuple[str, str, Any]]:
    puts: list[tuple[str, str, Any]] = [
        (_ISP_KIND, str(isp_id), persistence.isp_aggregate_state(isp))
        for isp_id, isp in sorted(network.compliant_isps().items())
    ]
    puts.append((_BANK_KIND, "bank", persistence.bank_state(network.bank)))
    puts.append(
        (_NET_KIND, "net", {"external_deposit": network._external_deposit})
    )
    return puts


def commit_network(
    store: DurableStore,
    network: ZmailNetwork,
    tracker: DirtyTracker,
    *,
    barrier: int,
    extra: list[tuple[str, str, Any]] | None = None,
) -> int:
    """Write-ahead commit at one barrier point; returns records written.

    One WAL transaction covering the O(n_isps) aggregates, the bank,
    the conservation counter, the drained dirty user set, and any
    ``extra`` caller records (e.g. the service layer's pending gateway
    queues) that must land atomically with the same barrier. Read-only
    with respect to the simulation: no engine state, RNG draw or event
    ordering is perturbed, so a run with periodic commits stays
    bit-identical to one without.
    """
    puts = _aggregate_puts(network)
    if extra:
        puts.extend(extra)
    compliant = network.compliant_isps()
    for isp_id, user_id in tracker.drain():
        isp = compliant.get(isp_id)
        if isp is None:
            continue  # non-compliant ISPs keep no durable ledger
        puts.append(
            (
                _USER_KIND,
                _user_key(isp_id, user_id),
                persistence.user_state(isp.ledger.user(user_id)),
            )
        )
    written = store.commit(puts, barrier=barrier)
    tracer = network.tracer
    if tracer.enabled:
        tracer.emit("store.commit", barrier=barrier, records=written)
    network.metrics.counter("store.commits").increment()
    network.metrics.counter("store.records_written").increment(written)
    return written


def restore_network(
    store: DurableStore, *, tracer=None, spans=None
) -> ZmailNetwork:
    """Rebuild a direct-mode network from the store: genesis + deltas.

    Cost is O(n_isps + ever-dirty-users). Every record read is
    checksum-verified; any corruption raises ``SimulationError`` before
    a single balance is applied.
    """
    from ..errors import SimulationError

    journal_version = store.meta_require("journal_format_version")
    if journal_version != str(persistence.FORMAT_VERSION):
        raise SimulationError(
            f"store journal format {journal_version!r} does not match "
            f"persistence.FORMAT_VERSION {persistence.FORMAT_VERSION}"
        )
    try:
        n_isps = int(store.meta_require("n_isps"))
        users_per_isp = int(store.meta_require("users_per_isp"))
        seed = int(store.meta_require("seed"))
        compliant = json.loads(store.meta_require("compliant"))
        config_blob = json.loads(store.meta_require("config"))
    except (ValueError, json.JSONDecodeError) as exc:
        raise SimulationError(f"corrupted store metadata: {exc}") from exc
    config = persistence.config_from_state(config_blob)
    network = ZmailNetwork(
        n_isps=n_isps,
        users_per_isp=users_per_isp,
        compliant=compliant,
        config=config,
        seed=seed,
        tracer=tracer,
        spans=spans,
    )
    applied = 0
    for key, state in store.iter_kind(_ISP_KIND):
        isp = network.compliant_isps().get(int(key))
        if isp is None:
            raise SimulationError(
                f"store holds an aggregate for non-compliant isp{key}"
            )
        persistence.load_isp_aggregate_state(isp, state)
        applied += 1
    bank_blob = store.get(_BANK_KIND, "bank")
    if bank_blob is None:
        raise SimulationError("store holds no bank ledger")
    persistence.load_bank_state(network.bank, bank_blob)
    net_blob = store.get(_NET_KIND, "net")
    if net_blob is None:
        raise SimulationError("store holds no network counters")
    try:
        network._external_deposit = int(net_blob["external_deposit"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SimulationError(
            f"malformed network counters in store: {exc}"
        ) from exc
    compliant_map = network.compliant_isps()
    for key, state in store.iter_kind(_USER_KIND):
        try:
            isp_part, user_part = key.split(":")
            isp_id, user_id = int(isp_part), int(user_part)
        except ValueError as exc:
            raise SimulationError(f"malformed user record key {key!r}") from exc
        isp = compliant_map.get(isp_id)
        if isp is None:
            raise SimulationError(
                f"store holds a user record for non-compliant isp{isp_id}"
            )
        persistence.load_user_state(isp.ledger.user(user_id), state)
        applied += 1
    if network.tracer.enabled:
        network.tracer.emit(
            "store.restore", barrier=store.barrier, records=applied
        )
    network.metrics.counter("store.restores").increment()
    network.metrics.counter("store.records_read").increment(applied)
    return network


def durable_digest(network: ZmailNetwork) -> str:
    """SHA-256 over exactly the state the store persists.

    The recovery-equivalence oracle: after a crash mid-run,
    ``durable_digest(restore_network(store))`` must equal the live
    network's digest at the same barrier. Unlike
    ``chaos.monitors.accounting_digest`` this excludes volatile
    quantities (paid letters in flight) that a restart legitimately
    zeroes.
    """
    state = {
        "external_deposit": network._external_deposit,
        "bank": persistence.bank_state(network.bank),
        "isps": {
            str(isp_id): persistence.isp_state(isp)
            for isp_id, isp in sorted(network.compliant_isps().items())
        },
    }
    blob = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
