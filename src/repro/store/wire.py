"""JSON codecs for the in-flight payloads the durable store persists.

The retry machinery holds live objects — :class:`Letter` frames queued
in reliable endpoints, ``(sender, recipient, kind, content)`` tuples in
admission deferred queues, snapshot control messages — that must survive
a process restart. This module maps each to a tagged JSON-compatible
dict and back, exactly (the chaos differential asserts a restored run is
bit-identical to an uninterrupted one, so lossy encoding would show up
immediately).

Kept out of ``repro.store``'s package root: it imports the chaos
snapshot types, and :mod:`repro.chaos.crash` imports
:mod:`repro.store.codec` — the split keeps the dependency graph acyclic.
"""

from __future__ import annotations

from typing import Any

from ..chaos.snapshot import (
    ChaosSnapshotReply,
    ChaosSnapshotRequest,
    SnapshotAbort,
)
from ..core.transfer import Letter
from ..errors import SimulationError
from ..sim.workload import Address, TrafficKind

__all__ = ["encode_wire", "decode_wire", "encode_send", "decode_send"]


def _encode_address(address: Address) -> list[int]:
    return [address.isp, address.user]


def _decode_address(blob: Any) -> Address:
    return Address(int(blob[0]), int(blob[1]))


def encode_wire(payload: object) -> dict[str, Any]:
    """Encode one reliable-endpoint payload to a tagged JSON dict.

    Raises:
        SimulationError: for payload types that never belong in a
            durable queue (programming error, better loud than lossy).
    """
    if isinstance(payload, Letter):
        return {
            "t": "letter",
            "sender": _encode_address(payload.sender),
            "recipient": _encode_address(payload.recipient),
            "kind": payload.kind.value,
            "paid": payload.paid,
            "content": (
                list(payload.content) if payload.content is not None else None
            ),
        }
    if isinstance(payload, ChaosSnapshotRequest):
        return {"t": "snap-req", "token": payload.token, "quiesce": payload.quiesce}
    if isinstance(payload, ChaosSnapshotReply):
        return {
            "t": "snap-rep",
            "token": payload.token,
            "isp_id": payload.isp_id,
            "credit": {str(k): v for k, v in sorted(payload.credit.items())},
        }
    if isinstance(payload, SnapshotAbort):
        return {"t": "snap-abort", "token": payload.token}
    raise SimulationError(
        f"cannot persist wire payload of type {type(payload).__name__}"
    )


def decode_wire(blob: Any) -> object:
    """Decode :func:`encode_wire` output back to the live payload type.

    Raises:
        SimulationError: if the blob is malformed or carries an unknown
            tag.
    """
    try:
        tag = blob["t"]
        if tag == "letter":
            content = blob["content"]
            return Letter(
                sender=_decode_address(blob["sender"]),
                recipient=_decode_address(blob["recipient"]),
                kind=TrafficKind(blob["kind"]),
                paid=bool(blob["paid"]),
                content=tuple(content) if content is not None else None,
            )
        if tag == "snap-req":
            return ChaosSnapshotRequest(
                token=int(blob["token"]), quiesce=float(blob["quiesce"])
            )
        if tag == "snap-rep":
            return ChaosSnapshotReply(
                token=int(blob["token"]),
                isp_id=int(blob["isp_id"]),
                credit={int(k): int(v) for k, v in blob["credit"].items()},
            )
        if tag == "snap-abort":
            return SnapshotAbort(token=int(blob["token"]))
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise SimulationError(f"malformed wire payload: {exc}") from exc
    raise SimulationError(f"unknown wire payload tag {tag!r}")


def encode_send(payload: object) -> dict[str, Any]:
    """Encode a core deferred-send tuple ``(sender, recipient, kind, content)``."""
    try:
        sender, recipient, kind, content = payload  # type: ignore[misc]
        return {
            "sender": _encode_address(sender),
            "recipient": _encode_address(recipient),
            "kind": kind.value,
            "content": list(content) if content is not None else None,
        }
    except (TypeError, ValueError, AttributeError) as exc:
        raise SimulationError(
            f"cannot persist deferred send payload: {exc}"
        ) from exc


def decode_send(blob: Any) -> tuple[Address, Address, TrafficKind, tuple | None]:
    """Decode :func:`encode_send` output back to the live tuple."""
    try:
        content = blob["content"]
        return (
            _decode_address(blob["sender"]),
            _decode_address(blob["recipient"]),
            TrafficKind(blob["kind"]),
            tuple(content) if content is not None else None,
        )
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise SimulationError(f"malformed deferred send payload: {exc}") from exc
