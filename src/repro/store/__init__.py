"""Durable service-mode storage for Zmail deployments.

``repro.store`` keeps a deployment's money durable across process
lifetimes: a checksummed SQLite (WAL) key-value journal
(:mod:`backend`), a genesis+deltas persistence scheme with dirty-user
tracking so restarts cost O(dirty), not O(users) (:mod:`network`), and
a sealed-record codec shared with the chaos harness's crash journals
(:mod:`codec`).

Higher layers are imported by full path to keep this package root
dependency-light: :mod:`repro.store.wire` (payload codecs for retry
queues), :mod:`repro.store.soak` (the crash/restart soak driver with
its in-memory differential oracle) and :mod:`repro.store.service` (the
long-running SMTP service and the ``repro selftest`` ops check).
"""

from .backend import DurableStore
from .codec import STORE_FORMAT_VERSION, record_checksum, seal, unseal
from .network import (
    DirtyTracker,
    attach_tracker,
    commit_network,
    durable_digest,
    init_store,
    restore_network,
)

__all__ = [
    "DurableStore",
    "STORE_FORMAT_VERSION",
    "record_checksum",
    "seal",
    "unseal",
    "DirtyTracker",
    "attach_tracker",
    "commit_network",
    "durable_digest",
    "init_store",
    "restore_network",
]
