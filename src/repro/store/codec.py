"""Checksummed record codec for the durable store.

Every value that crosses a process-lifetime boundary — a row in the
SQLite store, a crash journal held by the chaos harness — travels as a
*sealed* record: canonical compact JSON plus a SHA-256 checksum bound to
the record's kind and key. Corruption of any byte (truncation, bit
flips, appended garbage, even a flipped digit that would still parse as
valid JSON) fails the checksum and raises
:class:`~repro.errors.SimulationError` — the ledger is money, so a wrong
value is strictly worse than a loud crash.

This module deliberately imports nothing beyond the stdlib and
``repro.errors`` so that low-level consumers (``chaos.crash``) can use
it without dragging in the store backend.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..errors import SimulationError

__all__ = [
    "STORE_FORMAT_VERSION",
    "encode_payload",
    "decode_payload",
    "record_checksum",
    "seal",
    "unseal",
]

# Version of the sealed-record / store schema itself; the journal
# *content* is additionally versioned by core.persistence.FORMAT_VERSION
# (kept in the store's meta table and checked on open).
STORE_FORMAT_VERSION = 1

_SEP = b"\x1f"  # unit separator: unambiguous kind/key/payload framing


def encode_payload(value: Any) -> str:
    """Canonical compact JSON — the byte-stable wire form of a value."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def decode_payload(payload: str) -> Any:
    """Parse a payload produced by :func:`encode_payload`.

    Raises:
        SimulationError: if the payload is not valid JSON.
    """
    try:
        return json.loads(payload)
    except json.JSONDecodeError as exc:
        raise SimulationError(f"corrupted store payload: {exc}") from exc


def record_checksum(kind: str, key: str, payload: str) -> str:
    """SHA-256 over (kind, key, payload) — binds a row to its identity.

    Including kind and key means a row copied onto another row's slot
    (a plausible filesystem-level corruption) also fails verification.
    """
    digest = hashlib.sha256()
    digest.update(kind.encode("utf-8"))
    digest.update(_SEP)
    digest.update(key.encode("utf-8"))
    digest.update(_SEP)
    digest.update(payload.encode("utf-8"))
    return digest.hexdigest()


def seal(value: Any, *, kind: str = "journal", key: str = "") -> str:
    """Wrap ``value`` in a self-verifying envelope (JSON text).

    The chaos harness seals its crash journals with this so a restart
    from a corrupted journal can never silently rebuild a wrong ledger.
    """
    payload = encode_payload(value)
    return json.dumps(
        {
            "kind": kind,
            "key": key,
            "payload": payload,
            "checksum": record_checksum(kind, key, payload),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def unseal(text: str, *, kind: str = "journal", key: str = "") -> Any:
    """Verify and unwrap a :func:`seal` envelope.

    Raises:
        SimulationError: on any corruption — unparseable envelope,
            wrong kind/key binding, or checksum mismatch.
    """
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SimulationError(f"corrupted sealed record: {exc}") from exc
    if not isinstance(envelope, dict) or not {
        "kind",
        "key",
        "payload",
        "checksum",
    } <= set(envelope):
        raise SimulationError("corrupted sealed record: envelope malformed")
    if envelope["kind"] != kind or envelope["key"] != key:
        raise SimulationError(
            f"sealed record identity mismatch: expected ({kind!r}, {key!r}), "
            f"got ({envelope['kind']!r}, {envelope['key']!r})"
        )
    payload = envelope["payload"]
    if not isinstance(payload, str) or record_checksum(
        kind, key, payload
    ) != envelope["checksum"]:
        raise SimulationError(
            f"sealed record checksum mismatch for ({kind!r}, {key!r})"
        )
    return decode_payload(payload)
