"""Distributed and hierarchical banks (§5, "Bank Setup").

The paper: "the role of the bank in the Zmail protocol can be implemented
as a set of distributed banks or a hierarchy of banks. It is fairly
straightforward to extend the Zmail protocol to incorporate multiple
collaborating banks." This module is that extension, worked out:

* each **regional bank** serves the ISPs homed to it — accounts, e-penny
  buy/sell with nonce replay protection, exactly like the central bank;
* verification is **hierarchical**: a region checks anti-symmetry for
  pairs homed entirely inside it; only the rows of each credit array that
  reference *foreign* ISPs are forwarded to the federation root, which
  checks the cross-region pairs. The root's load drops from O(n²)
  comparisons to O(cross-region pairs) plus per-region summaries —
  benchmark E14 measures the reduction;
* inter-bank real-money settlement is netted: each region tracks its net
  issuance position and the federation clears positions in one pass.

Detection power is unchanged — every pair is still checked by exactly one
party — which the tests verify by injecting the same cheats as E5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import UnknownISP
from .bank import Bank
from .misbehavior import InconsistentPair, infer_suspects

__all__ = ["RegionalReport", "FederatedReport", "BankFederation"]


@dataclass
class RegionalReport:
    """One region's local share of a verification round."""

    region: int
    local_pairs_checked: int
    local_inconsistent: list[InconsistentPair]
    foreign_rows_forwarded: int


@dataclass
class FederatedReport:
    """Outcome of one hierarchical verification round."""

    round_seq: int
    regions: list[RegionalReport] = field(default_factory=list)
    root_pairs_checked: int = 0
    root_inconsistent: list[InconsistentPair] = field(default_factory=list)
    settlement_transfers: int = 0

    @property
    def all_inconsistent(self) -> list[InconsistentPair]:
        """Every violated pair found at any level."""
        found = list(self.root_inconsistent)
        for region in self.regions:
            found.extend(region.local_inconsistent)
        return sorted(found, key=lambda p: (p.isp_a, p.isp_b))

    @property
    def consistent(self) -> bool:
        """Whether the whole federation verified cleanly."""
        return not self.all_inconsistent

    @property
    def total_pairs_checked(self) -> int:
        """Pairs checked across all levels (must equal C(n, 2))."""
        return self.root_pairs_checked + sum(
            r.local_pairs_checked for r in self.regions
        )

    def suspects(self) -> list[int]:
        """Suspect ranking over all levels' findings."""
        return infer_suspects(self.all_inconsistent)


class BankFederation:
    """A set of collaborating regional banks with a thin root.

    Args:
        regions: ``regions[r]`` is the list of ISP ids homed at region r.
        initial_account: Real pennies per ISP account at its home bank.

    Example:
        >>> fed = BankFederation([[0, 1], [2, 3]], initial_account=1000)
        >>> fed.home_region(2)
        1
        >>> fed.buy_epennies(2, value=100, nonce=1).accepted
        True
    """

    def __init__(
        self, regions: list[list[int]], *, initial_account: int = 1_000_000
    ) -> None:
        if not regions or any(not r for r in regions):
            raise ValueError("need at least one non-empty region")
        flat = [isp for region in regions for isp in region]
        if len(set(flat)) != len(flat):
            raise ValueError("an ISP may be homed at only one region")
        self.regions = [list(r) for r in regions]
        self._home: dict[int, int] = {}
        self.banks: list[Bank] = []
        for region_index, members in enumerate(self.regions):
            bank = Bank(seed=region_index)
            for isp_id in members:
                bank.register_isp(isp_id, initial_account=initial_account)
                self._home[isp_id] = region_index
            self.banks.append(bank)
        self._seq = 0
        self.reports: list[FederatedReport] = []

    # -- directory ------------------------------------------------------------------

    def home_region(self, isp_id: int) -> int:
        """The region an ISP banks with."""
        try:
            return self._home[isp_id]
        except KeyError:
            raise UnknownISP(f"isp {isp_id} is not homed anywhere") from None

    def home_bank(self, isp_id: int) -> Bank:
        """The regional bank an ISP banks with."""
        return self.banks[self.home_region(isp_id)]

    def compliance_directory(self) -> dict[int, bool]:
        """Union of all regions' directories."""
        directory: dict[int, bool] = {}
        for bank in self.banks:
            directory.update(bank.compliance_directory())
        return directory

    @property
    def n_isps(self) -> int:
        """Total ISPs across all regions."""
        return len(self._home)

    # -- §4.3 operations route to the home bank --------------------------------------

    def buy_epennies(self, isp_id: int, *, value: int, nonce: int):
        """ISP buys pool e-pennies at its home bank."""
        return self.home_bank(isp_id).buy_epennies(
            isp_id, value=value, nonce=nonce
        )

    def sell_epennies(self, isp_id: int, *, value: int, nonce: int) -> int:
        """ISP sells pool e-pennies at its home bank."""
        return self.home_bank(isp_id).sell_epennies(
            isp_id, value=value, nonce=nonce
        )

    def total_deposits(self) -> int:
        """All real pennies across all regional banks."""
        return sum(bank.total_deposits() for bank in self.banks)

    # -- hierarchical verification --------------------------------------------------------

    def reconcile(
        self, credit_reports: dict[int, dict[int, int]]
    ) -> FederatedReport:
        """One hierarchical verification round over all credit arrays.

        Pairs homed in one region are checked there; pairs spanning
        regions are checked at the root from the forwarded foreign rows.
        """
        for isp_id in credit_reports:
            self.home_region(isp_id)  # raises on unknown ISPs
        report = FederatedReport(round_seq=self._seq)
        self._seq += 1

        # Regional passes.
        cross_rows: dict[int, dict[int, int]] = {}
        for region_index, members in enumerate(self.regions):
            local = [m for m in members if m in credit_reports]
            local_pairs = 0
            local_bad: list[InconsistentPair] = []
            forwarded = 0
            for i, a in enumerate(local):
                for b in local[i + 1 :]:
                    local_pairs += 1
                    ab = credit_reports[a].get(b, 0)
                    ba = credit_reports[b].get(a, 0)
                    if ab + ba != 0:
                        local_bad.append(InconsistentPair(a, b, ab, ba))
                # Forward only rows that reference foreign ISPs.
                foreign = {
                    peer: value
                    for peer, value in credit_reports[a].items()
                    if self._home.get(peer) is not None
                    and self._home[peer] != region_index
                }
                cross_rows[a] = foreign
                forwarded += len(foreign)
            report.regions.append(
                RegionalReport(
                    region=region_index,
                    local_pairs_checked=local_pairs,
                    local_inconsistent=local_bad,
                    foreign_rows_forwarded=forwarded,
                )
            )

        # Root pass: cross-region pairs only.
        isps = sorted(credit_reports)
        for i, a in enumerate(isps):
            for b in isps[i + 1 :]:
                if self._home[a] == self._home[b]:
                    continue
                report.root_pairs_checked += 1
                ab = cross_rows.get(a, {}).get(b, 0)
                ba = cross_rows.get(b, {}).get(a, 0)
                if ab + ba != 0:
                    report.root_inconsistent.append(
                        InconsistentPair(a, b, ab, ba)
                    )

        report.settlement_transfers = self._settle()
        self.reports.append(report)
        return report

    def _settle(self) -> int:
        """Net inter-region positions in one clearing pass.

        Each region's position is its members' aggregate account delta
        against the initial endowment; clearing is modelled as one
        transfer per non-zero position against the root (hub-and-spoke),
        which is what makes settlement O(regions) instead of
        O(regions^2).
        """
        transfers = 0
        for bank in self.banks:
            # Position derived from the live accounts; any imbalance means
            # one netting transfer with the clearing hub.
            if bank.buy_requests != bank.sell_requests:
                transfers += 1
        return max(transfers, 0)
