"""Compliant and non-compliant ISPs.

:class:`CompliantISP` is the deployable counterpart of the paper's
``isp[i]`` process: it manages user purses through a :class:`Ledger`,
maintains the inter-ISP ``credit`` array, enforces daily limits, pauses
and buffers sends during credit snapshots, applies the configured policy
to mail from non-compliant peers, and rebalances its e-penny pool with
the bank.

:class:`NonCompliantISP` models the rest of the Internet: it forwards
mail without any accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import SimulationError, SnapshotInProgress
from ..sim.workload import Address, TrafficKind
from .config import NonCompliantMailPolicy, ZmailConfig
from .ledger import Ledger
from .transfer import (
    RECEIPT_BLOCKED_BALANCE,
    RECEIPT_BLOCKED_LIMIT,
    RECEIPT_BUFFERED,
    RECEIPT_DELIVERED_LOCAL,
    Letter,
    SendReceipt,
    SendStatus,
)

__all__ = ["DeliveryStats", "CompliantISP", "NonCompliantISP", "RemoteISP"]


@dataclass(slots=True)
class DeliveryStats:
    """Per-ISP message accounting used by the experiments."""

    sent_paid: int = 0
    sent_unpaid: int = 0
    delivered_local: int = 0
    received_paid: int = 0
    received_unpaid: int = 0
    blocked_balance: int = 0
    blocked_limit: int = 0
    buffered: int = 0
    junked: int = 0
    discarded: int = 0
    filtered_out: int = 0


@dataclass(slots=True)
class _SnapshotState:
    """Book-keeping while a credit snapshot is in progress."""

    seq: int
    replied: bool = False
    # Marker-method channel recording: once a peer's marker has arrived,
    # further mail from that peer books to the *next* period.
    marker_seen: set[int] = field(default_factory=set)
    new_period_credit: dict[int, int] = field(default_factory=dict)


class CompliantISP:
    """A Zmail-running ISP.

    Args:
        isp_id: Index of this ISP in the deployment.
        n_users: Users created up front (ids ``0..n_users-1``).
        config: Deployment parameters.
        spam_filter: Optional predicate for the FILTER policy; returns
            ``True`` when a message should be *kept* (not spam).
    """

    def __init__(
        self,
        isp_id: int,
        n_users: int,
        config: ZmailConfig | None = None,
        *,
        spam_filter: Callable[[Letter], bool] | None = None,
    ) -> None:
        self.isp_id = isp_id
        self.config = config or ZmailConfig()
        self.ledger = Ledger(initial_pool=self.config.initial_pool)
        # Lazy genesis: accounts materialise on first touch, so a
        # million-user ISP constructs in O(1) and holds O(hot set) memory.
        self.ledger.genesis_users(
            n_users,
            account=self.config.default_user_account,
            balance=self.config.default_user_balance,
            daily_limit=self.config.default_daily_limit,
        )
        self.credit: dict[int, int] = {}
        self.stats = DeliveryStats()
        self.cansend = True
        self._snapshot: _SnapshotState | None = None
        self._early_markers: set[int] = set()
        self._outbox_buffer: list[
            tuple[int, Address, TrafficKind, tuple[str, ...] | None]
        ] = []
        self._spam_filter = spam_filter
        self.compliance_view: dict[int, bool] = {isp_id: True}
        # Per-user limit-hit counters. A bounded dict (at most one entry
        # per user) rather than an append-only event log: a zombie
        # hammering its daily limit in a million-message run used to grow
        # this without bound; the zombie-detection signal only needs who
        # hit the limit and how often.
        self.limit_hits: dict[int, int] = {}

    # -- compliance directory -----------------------------------------------------

    def update_compliance(self, directory: dict[int, bool]) -> None:
        """Install the bank's published ``compliant`` array (§4)."""
        self.compliance_view = dict(directory)

    def _is_compliant(self, isp_id: int) -> bool:
        return self.compliance_view.get(isp_id, False)

    # -- sending (§4.1) ---------------------------------------------------------------

    def submit(
        self,
        sender_user: int,
        recipient: Address,
        kind: TrafficKind,
        content: tuple[str, ...] | None = None,
    ) -> SendReceipt:
        """A user asks to send one email; apply the §4.1 decision tree.

        Never raises for ordinary outcomes — blocked sends are reported in
        the receipt so workloads can count them.
        """
        if not self.cansend:
            # §4.4: "these emails will be buffered and sent right after
            # the timeout expires."
            self._outbox_buffer.append((sender_user, recipient, kind, content))
            self.stats.buffered += 1
            return RECEIPT_BUFFERED
        return self._submit_now(sender_user, recipient, kind, content)

    def _submit_now(
        self,
        sender_user: int,
        recipient: Address,
        kind: TrafficKind,
        content: tuple[str, ...] | None = None,
    ) -> SendReceipt:
        # Hot path: the limit/balance guards mirror
        # UserAccount.check_send_allowed / debit_epennies but without
        # raising — a blocked send is an ordinary outcome here, and at
        # campaign scale (millions of blocked spam sends) the exception
        # machinery dominated the profile.
        user = self.ledger.user(sender_user)
        if recipient.isp == self.isp_id:
            # Local delivery: e-penny moves between two local balances.
            if user.sent_today >= user.daily_limit:
                user.limit_warnings += 1
                self.stats.blocked_limit += 1
                self._note_limit_hit(user.user_id, user.sent_today)
                return RECEIPT_BLOCKED_LIMIT
            if user.balance < 1:
                self.stats.blocked_balance += 1
                return RECEIPT_BLOCKED_BALANCE
            user.balance -= 1
            user.note_sent()
            receiver = self.ledger.user(recipient.user)
            receiver.balance += 1
            receiver.note_received()
            self.stats.delivered_local += 1
            return RECEIPT_DELIVERED_LOCAL

        if self._is_compliant(recipient.isp):
            if user.sent_today >= user.daily_limit:
                user.limit_warnings += 1
                self.stats.blocked_limit += 1
                self._note_limit_hit(user.user_id, user.sent_today)
                return RECEIPT_BLOCKED_LIMIT
            if user.balance < 1:
                self.stats.blocked_balance += 1
                return RECEIPT_BLOCKED_BALANCE
            user.balance -= 1
            user.note_sent()
            self.credit[recipient.isp] = self.credit.get(recipient.isp, 0) + 1
            self.stats.sent_paid += 1
            letter = Letter(
                Address(self.isp_id, sender_user), recipient, kind,
                paid=True, content=content,
            )
            return SendReceipt(SendStatus.SENT_PAID, letter)

        # Non-compliant destination: no payment, no limit charge in the
        # paper's pseudocode (the compliant branch guards both).
        self.stats.sent_unpaid += 1
        letter = Letter(
            Address(self.isp_id, sender_user), recipient, kind,
            paid=False, content=content,
        )
        return SendReceipt(SendStatus.SENT_UNPAID, letter)

    def _note_limit_hit(self, user_id: int, sent_today: int) -> None:
        self.limit_hits[user_id] = self.limit_hits.get(user_id, 0) + 1

    # -- receiving (§4.1) ----------------------------------------------------------

    def deliver(self, letter: Letter) -> bool:
        """Handle an arriving letter; returns ``True`` if it reached a user.

        Payment attaches iff the *source ISP* is compliant — identity, not
        message content, decides (mirroring ``rcv email(s,r) from isp[g]``).
        """
        if letter.recipient.user not in self.ledger:
            return False  # unknown local part; silently dropped
        receiver = self.ledger.user(letter.recipient.user)
        src = letter.src_isp
        if self._is_compliant(src):
            receiver.balance += 1  # credit_epennies(1), sans the call
            self._book_received_credit(src)
            receiver.note_received()
            self.stats.received_paid += 1
            return True
        return self._deliver_noncompliant(letter, receiver)

    def _book_received_credit(self, src: int) -> None:
        snapshot = self._snapshot
        if snapshot is not None and src in snapshot.marker_seen:
            # Marker method: mail overtaking the cut books to next period.
            snapshot.new_period_credit[src] = (
                snapshot.new_period_credit.get(src, 0) - 1
            )
            return
        self.credit[src] = self.credit.get(src, 0) - 1

    def _deliver_noncompliant(self, letter: Letter, receiver) -> bool:
        policy = self.config.noncompliant_policy
        if policy is NonCompliantMailPolicy.DISCARD:
            self.stats.discarded += 1
            return False
        if policy is NonCompliantMailPolicy.SEGREGATE:
            receiver.note_received(junk=True, paid=False)
            self.stats.junked += 1
            self.stats.received_unpaid += 1
            return True
        if policy is NonCompliantMailPolicy.FILTER and self._spam_filter is not None:
            if not self._spam_filter(letter):
                self.stats.filtered_out += 1
                return False
        receiver.note_received(paid=False)
        self.stats.received_unpaid += 1
        return True

    # -- snapshots (§4.4) ------------------------------------------------------------

    def begin_snapshot(self, seq: int) -> None:
        """Bank request received: stop sending, start the quiesce window."""
        if self._snapshot is not None:
            raise SnapshotInProgress(
                f"isp {self.isp_id}: snapshot {self._snapshot.seq} still open"
            )
        self.cansend = False
        self._snapshot = _SnapshotState(seq=seq)
        # Markers that raced ahead of our own request still mark the cut on
        # their links (FIFO guarantees no mail slipped between them and now).
        self._snapshot.marker_seen = set(self._early_markers)
        self._early_markers = set()

    def note_marker(self, from_isp: int) -> None:
        """Marker method: a peer's channel marker arrived on our link."""
        if self._snapshot is not None:
            self._snapshot.marker_seen.add(from_isp)
        else:
            self._early_markers.add(from_isp)

    def snapshot_reply(self) -> dict[int, int]:
        """Produce the credit array for the bank and reset it (§4.4).

        The caller (a snapshot coordinator) invokes this once quiescence
        is reached; sending stays paused until :meth:`resume_sending`.
        """
        if self._snapshot is None:
            raise SnapshotInProgress(f"isp {self.isp_id}: no snapshot open")
        reply = dict(self.credit)
        self.credit = dict(self._snapshot.new_period_credit)
        self._snapshot.new_period_credit = {}
        self._snapshot.replied = True
        return reply

    def snapshot_peek(self) -> dict[int, int]:
        """Read the credit array mid-snapshot *without* committing the reset.

        The chaos harness's retrying coordinator verifies anti-symmetry on
        peeks first and only commits (:meth:`snapshot_reply`) once the cut
        is known consistent — an inconsistent attempt is aborted and
        retried with a longer quiesce window, leaving the arrays intact.
        """
        if self._snapshot is None:
            raise SnapshotInProgress(f"isp {self.isp_id}: no snapshot open")
        return dict(self.credit)

    def abort_snapshot(self) -> list[SendReceipt]:
        """Abandon an open snapshot without replying (crash/retry path).

        Equivalent to :meth:`resume_sending`: the pause ends, buffered
        sends flush, and the credit arrays are untouched — nothing was
        committed, so nothing needs rolling back.
        """
        return self.resume_sending()

    def resume_sending(self) -> list[SendReceipt]:
        """End the snapshot pause and flush the buffered outbox.

        Returns the receipts of the flushed sends so the network layer can
        route any letters they produced.
        """
        self._snapshot = None
        self.cansend = True
        buffered, self._outbox_buffer = self._outbox_buffer, []
        return [self._submit_now(s, r, k, c) for s, r, k, c in buffered]

    @property
    def snapshot_open(self) -> bool:
        """Whether a snapshot pause is currently in effect."""
        return self._snapshot is not None

    # -- pool management (§4.3) ---------------------------------------------------------

    def pool_deficit(self) -> int:
        """E-pennies needed to lift the pool back to the midpoint, or 0."""
        if self.ledger.pool >= self.config.minavail:
            return 0
        midpoint = (self.config.minavail + self.config.maxavail) // 2
        return midpoint - self.ledger.pool

    def pool_surplus(self) -> int:
        """E-pennies above maxavail to sell down to the midpoint, or 0."""
        if self.ledger.pool <= self.config.maxavail:
            return 0
        midpoint = (self.config.minavail + self.config.maxavail) // 2
        return self.ledger.pool - midpoint

    # -- daily cycle ---------------------------------------------------------------------

    def midnight(self) -> None:
        """Reset all users' daily send counters (§4.1 reset action)."""
        self.ledger.reset_daily_counters()

    def zombie_suspects(self) -> list[int]:
        """Users who hit their daily limit — §5's zombie detection signal."""
        return sorted(self.limit_hits)


class NonCompliantISP:
    """An ISP outside Zmail: delivers whatever arrives, pays nothing."""

    def __init__(self, isp_id: int, n_users: int) -> None:
        self.isp_id = isp_id
        self.n_users = n_users
        self.stats = DeliveryStats()

    def submit(
        self,
        sender_user: int,
        recipient: Address,
        kind: TrafficKind,
        content: tuple[str, ...] | None = None,
    ) -> SendReceipt:
        """Send without any accounting (free, unlimited)."""
        if recipient.isp == self.isp_id:
            self.stats.delivered_local += 1
            return RECEIPT_DELIVERED_LOCAL
        self.stats.sent_unpaid += 1
        letter = Letter(
            Address(self.isp_id, sender_user), recipient, kind,
            paid=False, content=content,
        )
        return SendReceipt(SendStatus.SENT_UNPAID, letter)

    def deliver(self, letter: Letter) -> bool:
        """Accept anything addressed to one of our user slots."""
        if letter.recipient.user >= self.n_users:
            return False
        self.stats.received_unpaid += 1
        return True


class RemoteISP:
    """A placeholder for an ISP homed on another shard.

    The cluster runtime gives each worker only its own slice of the
    deployment; every other ISP appears as a ``RemoteISP`` carrying just
    the identity and the advertised compliance flag (enough for the
    compliance directory and paid-route decisions). Any attempt to make
    it send or receive locally is a routing bug, so both entry points
    raise — cross-shard letters must travel the inter-shard links and be
    delivered by the destination ISP's home shard.
    """

    def __init__(self, isp_id: int, *, compliant: bool) -> None:
        self.isp_id = isp_id
        self.compliant = compliant

    def submit(
        self,
        sender_user: int,
        recipient: Address,
        kind: TrafficKind,
        content: tuple[str, ...] | None = None,
    ) -> SendReceipt:
        raise SimulationError(
            f"isp{self.isp_id} is remote: its home shard owns its senders"
        )

    def deliver(self, letter: Letter) -> bool:
        raise SimulationError(
            f"isp{self.isp_id} is remote: letter {letter!r} missed its shard"
        )
