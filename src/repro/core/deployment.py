"""Incremental deployment dynamics (§1.3, §5).

The paper's adoption argument is a positive-feedback loop: Zmail starts
with two compliant ISPs; users of compliant ISPs suffer less spam; their
good experience pulls users (and therefore ISPs) into compliance, which
strengthens the incentive further.

:class:`AdoptionSimulation` makes that loop concrete and measurable. In
each round:

1. spam pressure is computed per ISP — non-compliant ISPs relay spam
   freely, compliant ISPs price it away and can additionally discard
   non-compliant mail as more of the network complies;
2. each non-compliant ISP flips compliant with probability increasing in
   the *experienced advantage* (spam avoided by compliant peers) times a
   network-effect term (fraction of mail exchanged with compliant ISPs);
3. metrics are recorded so experiment E9 can plot the S-curve and verify
   that feedback is positive (adoption rate grows with adoption level in
   the early-to-middle regime).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .config import NonCompliantMailPolicy

__all__ = ["AdoptionParams", "AdoptionRound", "AdoptionSimulation"]


@dataclass(frozen=True)
class AdoptionParams:
    """Tunable forces in the adoption model.

    Attributes:
        n_isps: ISP population size.
        initial_compliant: How many ISPs start compliant (paper: two).
        spam_fraction: Share of traffic that is spam in the status quo
            (the paper cites Brightmail's 60%).
        base_switch_propensity: Probability scale for flipping compliant
            when the advantage is maximal.
        network_effect_weight: How strongly the compliant fraction itself
            amplifies the incentive (0 = none, 1 = linear).
        policy: What compliant ISPs do with non-compliant mail; stricter
            policies raise the pressure on non-compliant ISPs.
        seed: RNG seed.
    """

    n_isps: int = 100
    initial_compliant: int = 2
    spam_fraction: float = 0.6
    base_switch_propensity: float = 0.25
    network_effect_weight: float = 1.0
    policy: NonCompliantMailPolicy = NonCompliantMailPolicy.SEGREGATE
    seed: int = 0

    def __post_init__(self) -> None:
        if not 2 <= self.initial_compliant <= self.n_isps:
            raise ValueError("need 2 <= initial_compliant <= n_isps")
        if not 0.0 <= self.spam_fraction <= 1.0:
            raise ValueError("spam_fraction outside [0, 1]")
        if not 0.0 <= self.base_switch_propensity <= 1.0:
            raise ValueError("base_switch_propensity outside [0, 1]")


_POLICY_PRESSURE = {
    NonCompliantMailPolicy.DELIVER: 0.25,
    NonCompliantMailPolicy.FILTER: 0.5,
    NonCompliantMailPolicy.SEGREGATE: 0.75,
    NonCompliantMailPolicy.DISCARD: 1.0,
}


@dataclass(frozen=True)
class AdoptionRound:
    """State after one adoption round."""

    round_index: int
    compliant_count: int
    newly_compliant: int
    compliant_fraction: float
    spam_seen_by_compliant_user: float
    spam_seen_by_noncompliant_user: float


@dataclass
class AdoptionSimulation:
    """Round-based positive-feedback adoption model."""

    params: AdoptionParams
    rounds: list[AdoptionRound] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.params.seed)
        self._compliant = [
            i < self.params.initial_compliant for i in range(self.params.n_isps)
        ]
        self._record(round_index=0, newly=self.params.initial_compliant)

    # -- model ------------------------------------------------------------------------

    def _spam_exposure(self, compliant: bool, fraction: float) -> float:
        """Spam an average user of this ISP class sees per unit mail.

        A compliant ISP's users receive essentially no paid spam (priced
        out) and — depending on policy — a suppressed share of the spam
        arriving from the non-compliant remainder. A non-compliant ISP's
        users see the full status-quo spam load.
        """
        spam = self.params.spam_fraction
        if not compliant:
            return spam
        pressure = _POLICY_PRESSURE[self.params.policy]
        noncompliant_share = 1.0 - fraction
        return spam * noncompliant_share * (1.0 - pressure)

    def step(self) -> AdoptionRound:
        """Advance one round; returns its record."""
        n = self.params.n_isps
        fraction = sum(self._compliant) / n
        advantage = self._spam_exposure(False, fraction) - self._spam_exposure(
            True, fraction
        )
        # Network effect: the more peers are compliant, the more of your
        # correspartners' mail you lose by staying out.
        amplifier = 1.0 + self.params.network_effect_weight * fraction
        p_switch = min(
            1.0, self.params.base_switch_propensity * advantage * amplifier
        )
        newly = 0
        for i in range(n):
            if not self._compliant[i] and self._rng.random() < p_switch:
                self._compliant[i] = True
                newly += 1
        return self._record(round_index=len(self.rounds), newly=newly)

    def _record(self, *, round_index: int, newly: int) -> AdoptionRound:
        count = sum(self._compliant)
        fraction = count / self.params.n_isps
        record = AdoptionRound(
            round_index=round_index,
            compliant_count=count,
            newly_compliant=newly,
            compliant_fraction=fraction,
            spam_seen_by_compliant_user=self._spam_exposure(True, fraction),
            spam_seen_by_noncompliant_user=self._spam_exposure(False, fraction),
        )
        self.rounds.append(record)
        return record

    def run(self, max_rounds: int = 50) -> list[AdoptionRound]:
        """Run until full adoption or ``max_rounds``; returns the history."""
        for _ in range(max_rounds):
            record = self.step()
            if record.compliant_count == self.params.n_isps:
                break
        return self.rounds

    # -- analysis -----------------------------------------------------------------------

    def rounds_to_fraction(self, target: float) -> int | None:
        """First round index reaching ``target`` compliant fraction."""
        for record in self.rounds:
            if record.compliant_fraction >= target:
                return record.round_index
        return None

    def has_positive_feedback(self) -> bool:
        """Whether the per-ISP switching hazard grows with adoption level.

        The paper's qualitative claim is a feedback loop: the more ISPs
        comply, the stronger each holdout's incentive to comply. Absolute
        per-round adoption counts shrink late in the ramp simply because
        the holdout pool empties, so the right statistic is the *hazard*
        — newly compliant divided by the holdouts exposed that round.
        """
        n = self.params.n_isps
        hazards = []
        for record in self.rounds[1:]:
            holdouts_before = n - (record.compliant_count - record.newly_compliant)
            if holdouts_before <= 0 or record.compliant_fraction >= 0.95:
                break
            hazards.append(record.newly_compliant / holdouts_before)
        if len(hazards) < 4:
            return True  # adoption so fast there is no ramp to test
        half = len(hazards) // 2
        early = sum(hazards[:half]) / half
        late = sum(hazards[half:]) / (len(hazards) - half)
        return late >= early
