"""Credit-array snapshot coordinators (§4.4).

The bank must read every compliant ISP's credit array on a *consistent
cut*: every email counted by its sender must also be counted by its
receiver in the same period. Two coordinators implement two methods:

* :class:`TimeoutSnapshotCoordinator` — the paper's method. On request
  every ISP stops sending, waits a fixed quiesce window ("say 10
  minutes"), then replies and resumes. Consistency relies on the window
  exceeding request-delivery skew plus the maximum in-flight drain time;
  sweeping the window below that bound (benchmark E6a) shows the false
  alarms the paper's real-time assumption prevents.

* :class:`MarkerSnapshotCoordinator` — the alternative the paper alludes
  to ("one could choose other methods"). ISPs flood a marker down each
  FIFO link on receiving the request; a peer's pre-marker mail belongs to
  the closing period, post-marker mail to the next (classic
  Chandy–Lamport channel recording, simplified because the channel state
  *is* the credit adjustment). No real-time assumption, no send pause
  beyond the marker exchange.

Both coordinators drive the same :class:`~repro.core.isp.CompliantISP`
snapshot API and deliver collected arrays to
:meth:`~repro.core.bank.Bank.reconcile`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from .misbehavior import ReconciliationReport

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from .isp import CompliantISP

__all__ = [
    "SnapshotRequest",
    "SnapshotMarker",
    "SnapshotReply",
    "DirectSnapshotCoordinator",
    "TimeoutSnapshotCoordinator",
    "MarkerSnapshotCoordinator",
]


@dataclass(frozen=True)
class SnapshotRequest:
    """Bank → ISP: begin snapshot ``seq`` using ``method``."""

    seq: int
    method: str  # "timeout" | "marker"


@dataclass(frozen=True)
class SnapshotMarker:
    """ISP → ISP: channel marker for the marker method."""

    seq: int
    from_isp: int


@dataclass(frozen=True)
class SnapshotReply:
    """ISP → bank: the credit array for period ``seq``."""

    seq: int
    isp_id: int
    credit: dict[int, int]


class DirectSnapshotCoordinator:
    """Snapshot for synchronous (direct-mode) networks.

    With synchronous delivery there is never in-flight mail, so the cut is
    trivially consistent: collect, verify, done. Used by the large
    economics runs where latency is irrelevant.
    """

    def __init__(self, bank, isps: dict[int, "CompliantISP"]) -> None:
        self._bank = bank
        self._isps = isps

    def run(self) -> ReconciliationReport:
        """Execute one full snapshot + verification round synchronously."""
        seq = self._bank.next_seq
        reports: dict[int, dict[int, int]] = {}
        for isp in self._isps.values():
            isp.begin_snapshot(seq)
        for isp_id, isp in sorted(self._isps.items()):
            reports[isp_id] = isp.snapshot_reply()
        leftovers = []
        for isp in self._isps.values():
            leftovers.extend(isp.resume_sending())
        report = self._bank.reconcile(reports)
        # Synchronous networks cannot buffer mid-snapshot sends.
        assert not leftovers or all(r is not None for r in leftovers)
        return report


class TimeoutSnapshotCoordinator:
    """The paper's fixed-quiesce-window snapshot, on a latency network.

    Interaction with the engine-mode network is through callables so the
    coordinator stays decoupled from the transport:

    Args:
        send_control: ``send_control(src_isp_or_none, dst_isp, payload)``
            delivers a control message over the same FIFO links as email
            (``None`` source means the bank).
        schedule_after: engine's relative scheduler.
        on_complete: called with the :class:`ReconciliationReport`.
    """

    def __init__(
        self,
        bank,
        isps: dict[int, "CompliantISP"],
        *,
        quiesce_seconds: float,
        send_control: Callable[[int | None, int, object], None],
        schedule_after: Callable[[float, Callable[[], None]], object],
        on_complete: Callable[[ReconciliationReport], None] | None = None,
        route_receipts: Callable[[list], None] | None = None,
    ) -> None:
        self._bank = bank
        self._isps = isps
        self._quiesce = quiesce_seconds
        self._send_control = send_control
        self._schedule_after = schedule_after
        self._on_complete = on_complete
        self._route_receipts = route_receipts
        self._collected: dict[int, dict[int, int]] = {}
        self._seq: int | None = None
        self.report: ReconciliationReport | None = None

    def start(self) -> None:
        """Broadcast the snapshot request to every compliant ISP."""
        self._seq = self._bank.next_seq
        self._collected = {}
        self.report = None
        for isp_id in self._isps:
            self._send_control(None, isp_id, SnapshotRequest(self._seq, "timeout"))

    def on_request(self, isp_id: int, request: SnapshotRequest) -> None:
        """ISP-side: request arrived — pause sending, arm the window."""
        isp = self._isps[isp_id]
        isp.begin_snapshot(request.seq)

        def window_expired() -> None:
            reply = SnapshotReply(request.seq, isp_id, isp.snapshot_reply())
            receipts = isp.resume_sending()  # the paper resumes here
            if self._route_receipts is not None:
                self._route_receipts(receipts)
            self.on_reply(reply)

        self._schedule_after(self._quiesce, window_expired)

    def on_reply(self, reply: SnapshotReply) -> None:
        """Bank-side: collect a reply; verify once all ISPs answered."""
        self._collected[reply.isp_id] = reply.credit
        if len(self._collected) == len(self._isps):
            self.report = self._bank.reconcile(self._collected)
            if self._on_complete is not None:
                self._on_complete(self.report)


class MarkerSnapshotCoordinator:
    """Marker-based consistent cut over FIFO links.

    ISPs reply as soon as every peer's marker has arrived; mail that
    overtakes the cut books to the next period via the ISP's
    ``note_marker`` channel recording. Requires FIFO links shared by
    markers and email (the network model guarantees this).
    """

    def __init__(
        self,
        bank,
        isps: dict[int, "CompliantISP"],
        *,
        send_control: Callable[[int | None, int, object], None],
        on_complete: Callable[[ReconciliationReport], None] | None = None,
        route_receipts: Callable[[list], None] | None = None,
    ) -> None:
        self._bank = bank
        self._isps = isps
        self._send_control = send_control
        self._on_complete = on_complete
        self._route_receipts = route_receipts
        self._collected: dict[int, dict[int, int]] = {}
        self._markers: dict[int, set[int]] = {}
        self._seq: int | None = None
        self.report: ReconciliationReport | None = None
        self.control_messages = 0

    def start(self) -> None:
        """Broadcast the snapshot request to every compliant ISP."""
        self._seq = self._bank.next_seq
        self._collected = {}
        self._markers = {isp_id: set() for isp_id in self._isps}
        self.report = None
        for isp_id in self._isps:
            self._send_control(None, isp_id, SnapshotRequest(self._seq, "marker"))
            self.control_messages += 1

    def on_request(self, isp_id: int, request: SnapshotRequest) -> None:
        """ISP-side: pause, flood markers to all compliant peers."""
        isp = self._isps[isp_id]
        isp.begin_snapshot(request.seq)
        for peer_id in self._isps:
            if peer_id != isp_id:
                self._send_control(
                    isp_id, peer_id, SnapshotMarker(request.seq, isp_id)
                )
                self.control_messages += 1
        self._maybe_reply(isp_id)

    def on_marker(self, isp_id: int, marker: SnapshotMarker) -> None:
        """ISP-side: a peer's marker arrived on our FIFO link."""
        isp = self._isps[isp_id]
        isp.note_marker(marker.from_isp)
        self._markers[isp_id].add(marker.from_isp)
        self._maybe_reply(isp_id)

    def _maybe_reply(self, isp_id: int) -> None:
        isp = self._isps[isp_id]
        if not isp.snapshot_open:
            return
        expected = set(self._isps) - {isp_id}
        if self._markers[isp_id] >= expected:
            reply = SnapshotReply(self._seq or 0, isp_id, isp.snapshot_reply())
            receipts = isp.resume_sending()
            if self._route_receipts is not None:
                self._route_receipts(receipts)
            self.control_messages += 1
            self.on_reply(reply)

    def on_reply(self, reply: SnapshotReply) -> None:
        """Bank-side: collect; verify when the round is complete."""
        self._collected[reply.isp_id] = reply.credit
        if len(self._collected) == len(self._isps):
            self.report = self._bank.reconcile(self._collected)
            if self._on_complete is not None:
                self._on_complete(self.report)
