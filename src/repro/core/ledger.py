"""The compliant ISP's internal ledger.

Holds every user's purses plus the ISP's own sellable e-penny pool
(the paper's ``avail``), and implements the §4.2 user-facing exchange:
users buy e-pennies from the pool with real pennies and sell them back,
always 1:1 at the fixed e-penny price.

Every mutation preserves the ledger-local conservation law::

    sum(user accounts) + sum(user balances) + pool  ==  constant
                                            (absent external transfers)

External transfers — e-pennies leaving with an email, arriving with one,
or moving to/from the bank — go through the explicit ``external_*``
methods so auditors (and tests) can account for every unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InsufficientBalance, UnknownUser
from .user import UserAccount

__all__ = ["Ledger", "LedgerTotals"]


@dataclass(frozen=True)
class LedgerTotals:
    """A point-in-time summary used by audits and conservation checks."""

    user_accounts: int
    user_balances: int
    pool: int
    cash: int

    @property
    def total_value(self) -> int:
        """All value held at the ISP, in penny-equivalents."""
        return self.user_accounts + self.user_balances + self.pool + self.cash


class Ledger:
    """User purses plus the ISP e-penny pool, with §4.2 exchange ops."""

    __slots__ = ("_users", "pool", "cash", "_genesis")

    def __init__(self, *, initial_pool: int) -> None:
        if initial_pool < 0:
            raise ValueError("initial_pool must be non-negative")
        self._users: dict[int, UserAccount] = {}
        self.pool = initial_pool
        # The ISP's own real pennies from §4.2 exchanges with users. The
        # paper's spec drops this side of the trade; tracking it makes the
        # ledger conservation law exact (see module docstring).
        self.cash = 0
        # Lazy-genesis template: ``(n_users, account, balance,
        # daily_limit)``. Users below ``n_users`` exist virtually with
        # exactly the template purses until first touched, so a
        # million-account ISP costs O(hot set) memory and a restart
        # replays O(dirty) state instead of materialising everyone.
        self._genesis: tuple[int, int, int, int] | None = None

    # -- user management --------------------------------------------------------

    def genesis_users(
        self, n_users: int, *, account: int, balance: int, daily_limit: int
    ) -> None:
        """Declare ``n_users`` identical users without materialising them.

        Only valid on an empty ledger; users materialise from the
        template on first access via :meth:`user`.
        """
        if self._users or self._genesis is not None:
            raise ValueError("genesis_users requires an empty ledger")
        if n_users < 0:
            raise ValueError(f"negative user count {n_users}")
        self._genesis = (n_users, account, balance, daily_limit)

    def _materialize(self, user_id: int) -> UserAccount:
        _, account, balance, daily_limit = self._genesis
        user = UserAccount(
            user_id=user_id,
            account=account,
            balance=balance,
            daily_limit=daily_limit,
        )
        self._users[user_id] = user
        return user

    def add_user(
        self, user_id: int, *, account: int, balance: int, daily_limit: int
    ) -> UserAccount:
        """Create a user with initial purses; duplicate ids are rejected."""
        if user_id in self:
            raise ValueError(f"user {user_id} already exists")
        user = UserAccount(
            user_id=user_id,
            account=account,
            balance=balance,
            daily_limit=daily_limit,
        )
        self._users[user_id] = user
        return user

    def user(self, user_id: int) -> UserAccount:
        """Look up a user, raising :class:`UnknownUser` if absent."""
        try:
            return self._users[user_id]
        except KeyError:
            if self._genesis is not None and 0 <= user_id < self._genesis[0]:
                return self._materialize(user_id)
            raise UnknownUser(f"no user {user_id}") from None

    def users(self) -> list[UserAccount]:
        """All users, ordered by id (materialises any pristine users)."""
        if self._genesis is not None:
            for user_id in range(self._genesis[0]):
                if user_id not in self._users:
                    self._materialize(user_id)
        return [self._users[k] for k in sorted(self._users)]

    def materialized_count(self) -> int:
        """How many accounts actually exist in memory (the hot set)."""
        return len(self._users)

    def __len__(self) -> int:
        if self._genesis is None:
            return len(self._users)
        n = self._genesis[0]
        return n + sum(1 for k in self._users if k >= n)

    def __contains__(self, user_id: int) -> bool:
        if user_id in self._users:
            return True
        return self._genesis is not None and 0 <= user_id < self._genesis[0]

    # -- §4.2 user <-> ISP exchange ------------------------------------------------

    def user_buys_epennies(self, user_id: int, amount: int) -> None:
        """User converts real pennies to e-pennies from the pool.

        Mirrors the paper's action: requires both ``account[t] >= x`` and
        ``avail >= x``; otherwise the request is refused (raises).
        """
        if amount <= 0:
            raise ValueError(f"purchase amount must be positive, got {amount}")
        user = self.user(user_id)
        if self.pool < amount:
            raise InsufficientBalance(
                f"ISP pool {self.pool} cannot cover purchase of {amount}"
            )
        user.debit_pennies(amount)
        self.cash += amount
        user.credit_epennies(amount)
        self.pool -= amount

    def user_sells_epennies(self, user_id: int, amount: int) -> None:
        """User converts e-pennies back to real pennies; pool absorbs them."""
        if amount <= 0:
            raise ValueError(f"sale amount must be positive, got {amount}")
        user = self.user(user_id)
        user.debit_epennies(amount)
        user.credit_pennies(amount)
        self.cash -= amount
        self.pool += amount

    # -- external transfers (email and bank) ------------------------------------

    def external_debit(self, user_id: int, amount: int = 1) -> None:
        """E-pennies leave the ISP with an outgoing email."""
        self.user(user_id).debit_epennies(amount)

    def external_credit(self, user_id: int, amount: int = 1) -> None:
        """E-pennies arrive at the ISP with an incoming email."""
        self.user(user_id).credit_epennies(amount)

    def pool_credit(self, amount: int) -> None:
        """E-pennies bought from the bank land in the pool."""
        if amount < 0:
            raise ValueError(f"negative pool credit {amount}")
        self.pool += amount

    def pool_debit(self, amount: int) -> None:
        """E-pennies sold to the bank leave the pool."""
        if amount < 0:
            raise ValueError(f"negative pool debit {amount}")
        if self.pool < amount:
            raise InsufficientBalance(f"pool {self.pool} < {amount}")
        self.pool -= amount

    # -- audit -------------------------------------------------------------------

    def totals(self) -> LedgerTotals:
        """Snapshot of all value held at this ISP.

        Pristine genesis users all hold exactly the template purses, so
        the audit is O(materialised), not O(users): the paper's
        conservation law stays checkable at million-account scale.
        """
        user_accounts = sum(u.account for u in self._users.values())
        user_balances = sum(u.balance for u in self._users.values())
        if self._genesis is not None:
            n, account, balance, _ = self._genesis
            pristine = n - sum(1 for k in self._users if k < n)
            user_accounts += pristine * account
            user_balances += pristine * balance
        return LedgerTotals(
            user_accounts=user_accounts,
            user_balances=user_balances,
            pool=self.pool,
            cash=self.cash,
        )

    def reset_daily_counters(self) -> None:
        """Midnight reset of every user's §4.1 ``sent`` counter."""
        for user in self._users.values():
            user.reset_daily()
