"""Transfer records: what happens when a user asks to send an email.

The Zmail decision tree of §4.1, reified as data so experiments can
account for every message:

* local delivery (same ISP) — e-penny moves between two local balances;
* compliant-to-compliant — sender debited, inter-ISP credit incremented,
  receiver's ISP credits on delivery (zero-sum end to end);
* compliant-to-non-compliant — sent unpaid (the paper's ``~compliant[j]``
  branch);
* blocked — empty balance or daily limit (the zombie brake);
* buffered — a credit snapshot is in progress; the message is queued and
  flushed when sending resumes;
* shed / deferred — the overload layer refused or queued the message
  *before* any ledger operation, so neither outcome moves value.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..sim.workload import Address, TrafficKind

__all__ = [
    "SendStatus",
    "Letter",
    "SendReceipt",
    "RECEIPT_DELIVERED_LOCAL",
    "RECEIPT_BLOCKED_BALANCE",
    "RECEIPT_BLOCKED_LIMIT",
    "RECEIPT_BUFFERED",
    "RECEIPT_SHED",
    "RECEIPT_DEFERRED",
]


class SendStatus(Enum):
    """Terminal classification of one send attempt."""

    DELIVERED_LOCAL = "delivered_local"
    SENT_PAID = "sent_paid"
    SENT_UNPAID = "sent_unpaid"
    BLOCKED_BALANCE = "blocked_balance"
    BLOCKED_LIMIT = "blocked_limit"
    BUFFERED = "buffered"
    SHED = "shed"
    DEFERRED = "deferred"

    @property
    def left_the_isp(self) -> bool:
        """Whether a message actually entered the inter-ISP network."""
        return self in (SendStatus.SENT_PAID, SendStatus.SENT_UNPAID)

    @property
    def blocked(self) -> bool:
        """Whether the send was refused outright."""
        return self in (SendStatus.BLOCKED_BALANCE, SendStatus.BLOCKED_LIMIT)


@dataclass(frozen=True, slots=True)
class Letter:
    """An email in flight between ISPs.

    ``paid`` records whether the sending ISP debited an e-penny (i.e. the
    sender's ISP is compliant and so is the destination); the receiving
    ISP decides payment by the *source ISP's* compliance, mirroring the
    paper's receive action, so ``paid`` is carried for audit only.

    ``content`` optionally carries the message's token stream so
    content-based policies (the FILTER handling of non-compliant mail)
    can actually read it; economics experiments leave it ``None`` to keep
    the hot path allocation-free.
    """

    sender: Address
    recipient: Address
    kind: TrafficKind
    paid: bool
    content: tuple[str, ...] | None = None

    @property
    def src_isp(self) -> int:
        """The sending ISP's index."""
        return self.sender.isp

    @property
    def dst_isp(self) -> int:
        """The destination ISP's index."""
        return self.recipient.isp

    @property
    def pair(self) -> tuple[int, int]:
        """The unordered ``(min, max)`` ISP pair this letter travels between.

        Per-pair in-flight accounting (the chaos invariant monitors) needs
        a direction-free key: a paid letter in flight on either direction
        of the i↔j link contributes +1 to ``credit_i[j] + credit_j[i]``.
        """
        a, b = self.sender.isp, self.recipient.isp
        return (a, b) if a <= b else (b, a)


@dataclass(frozen=True, slots=True)
class SendReceipt:
    """What a send attempt produced.

    ``letter`` is populated only when the message left the ISP (the
    network layer routes it); local deliveries and blocks carry ``None``.
    """

    status: SendStatus
    letter: Letter | None = None


# Interned letter-less receipts for the hot send path: a blocked or local
# outcome carries no per-message state, so every caller can share one
# frozen instance instead of allocating per send. (Receipts compare by
# value, so ``SendReceipt(SendStatus.BUFFERED) == RECEIPT_BUFFERED``.)
RECEIPT_DELIVERED_LOCAL = SendReceipt(SendStatus.DELIVERED_LOCAL)
RECEIPT_BLOCKED_BALANCE = SendReceipt(SendStatus.BLOCKED_BALANCE)
RECEIPT_BLOCKED_LIMIT = SendReceipt(SendStatus.BLOCKED_LIMIT)
RECEIPT_BUFFERED = SendReceipt(SendStatus.BUFFERED)
RECEIPT_SHED = SendReceipt(SendStatus.SHED)
RECEIPT_DEFERRED = SendReceipt(SendStatus.DEFERRED)
