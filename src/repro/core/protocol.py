"""The Zmail deployment glue: users, ISPs, the bank, and a transport.

:class:`ZmailNetwork` assembles a complete deployment — ``n`` ISPs (a
configurable subset compliant), ``m`` users each, one central bank — and
routes :class:`~repro.sim.workload.SendRequest` traffic through it.

Two drive modes share all of the protocol logic:

* **direct mode** (no engine): sends deliver synchronously. Fast enough
  for the million-message economics experiments; snapshots are trivially
  consistent.
* **engine mode** (with a :class:`~repro.sim.engine.Engine`): letters
  travel over a FIFO latency/loss network, midnight resets and
  reconciliation run on virtual time, and the §4.4 snapshot methods can
  actually race with in-flight mail.

The network also implements the operational conveniences the paper
describes informally: automatic e-penny top-up from a user's real-money
deposit, ISP pool rebalancing against the bank (§4.3), and the published
compliance directory.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..crypto import NonceSource
from ..errors import InsufficientBalance, SimulationError
from ..obs.spans import NULL_SPANS, SpanRegistry
from ..obs.trace import NULL_TRACER, TraceRecorder
from ..sim.clock import DAY
from ..sim.engine import Engine
from ..sim.metrics import MetricsRegistry
from ..sim.network import LinkSpec, Network
from ..sim.rng import SeededStreams
from ..sim.workload import Address, SendRequest, TrafficKind
from .bank import Bank
from .config import ZmailConfig
from .isp import CompliantISP, NonCompliantISP, RemoteISP
from .misbehavior import ReconciliationReport
from .overload import AdmissionController, OverloadConfig, shed_class_for
from .snapshot import (
    DirectSnapshotCoordinator,
    MarkerSnapshotCoordinator,
    SnapshotMarker,
    SnapshotReply,
    SnapshotRequest,
    TimeoutSnapshotCoordinator,
)
from .transfer import (
    RECEIPT_BLOCKED_BALANCE,
    RECEIPT_DEFERRED,
    RECEIPT_SHED,
    Letter,
    SendReceipt,
    SendStatus,
)

__all__ = ["ZmailNetwork"]


class _IspEndpoint:
    """Adapter giving an ISP a :class:`~repro.sim.network.Network` mailbox."""

    def __init__(self, network: "ZmailNetwork", isp_id: int) -> None:
        self._network = network
        self.isp_id = isp_id

    def on_message(self, src: str, payload: object) -> None:
        self._network._on_isp_message(self.isp_id, payload)


class _BankEndpoint:
    """Adapter for the bank's mailbox (snapshot replies)."""

    def __init__(self, network: "ZmailNetwork") -> None:
        self._network = network

    def on_message(self, src: str, payload: object) -> None:
        self._network._on_bank_message(payload)


class ZmailNetwork:
    """A complete Zmail deployment, drivable by workload streams.

    Args:
        n_isps: Number of ISPs.
        users_per_isp: Users created at each ISP.
        compliant: Per-ISP compliance flags; defaults to all compliant.
        config: Deployment parameters shared by all compliant ISPs.
        seed: Root seed for nonces and the latency network.
        engine: Attach to this discrete-event engine (engine mode); omit
            for synchronous direct mode.
        link: Latency/loss characteristics for engine mode.
        transport: Custom letter carrier. When set, letters that leave an
            ISP are handed to this callable instead of being delivered
            directly or via the built-in latency network; the carrier must
            eventually call :meth:`deliver_transported` for each letter
            (exactly once). This is how the chaos harness interposes
            reliable links and fault injection between ISPs.
        overload: Enable the overload-protection layer with these
            parameters: every send passes a per-ISP
            :class:`~repro.core.overload.AdmissionController` *before*
            any ledger operation, so shed/deferred outcomes never move
            value. Deferred messages retry with capped exponential
            backoff (engine timers in engine mode, :meth:`note_time`
            pumping in direct mode) and terminally bounce when their
            retry budget runs out. Omit (the default) for the historical
            unbounded behaviour.
        overload_clock: Virtual-time source for the overload layer when
            the network itself runs in direct mode but an external engine
            drives time (the chaos harness). Defaults to the attached
            engine's clock, or the latest :meth:`note_time` value.
        overload_scheduler: ``(delay, callback)`` timer facility for
            retry wake-ups, same defaulting as ``overload_clock``.
        overload_gate: Optional readiness predicate per ISP id; a retry
            pump for an ISP whose gate answers ``False`` (e.g. the node
            is crashed in the chaos harness) is postponed rather than
            processed, so retries never mutate a dead node's ledger.
        local_isps: Restrict materialization to this subset of ISP ids
            (the cluster runtime's shard slice). Non-local ISPs become
            :class:`~repro.core.isp.RemoteISP` placeholders: they appear
            in the compliance directory with their configured flag so
            local senders pay them correctly, but carry no users, no
            ledger and no bank account — their home shard owns those.
            Letters addressed to a remote ISP must leave through
            ``transport``. Default: every ISP is local (single-process
            behaviour, unchanged).
        tracer: Observability event bus (:mod:`repro.obs.trace`). Every
            ledger-visible step — sends, deliveries, top-ups, bank
            trades, midnights, reconciliations, overload decisions —
            emits one virtual-time-stamped event through it. Defaults
            to the shared disabled recorder; every emit site is guarded
            on ``tracer.enabled`` so the disabled path costs one
            attribute check. If the recorder has no clock yet, the
            network installs its own (engine time, or the direct-mode
            driver time advanced by :meth:`note_time`).
        spans: Wall-clock span registry (:mod:`repro.obs.spans`) timing
            snapshot rounds and workload batches; never part of any
            digest.

    Example (direct mode)::

        net = ZmailNetwork(n_isps=2, users_per_isp=10)
        receipt = net.send(Address(0, 1), Address(1, 2))
        assert receipt.status is SendStatus.SENT_PAID
    """

    def __init__(
        self,
        *,
        n_isps: int,
        users_per_isp: int,
        compliant: Iterable[bool] | None = None,
        config: ZmailConfig | None = None,
        seed: int = 0,
        engine: Engine | None = None,
        link: LinkSpec | None = None,
        transport: Callable[[Letter], None] | None = None,
        overload: OverloadConfig | None = None,
        overload_clock: Callable[[], float] | None = None,
        overload_scheduler: (
            Callable[[float, Callable[[], None]], object] | None
        ) = None,
        overload_gate: Callable[[int], bool] | None = None,
        local_isps: Iterable[int] | None = None,
        tracer: TraceRecorder | None = None,
        spans: SpanRegistry | None = None,
    ) -> None:
        if n_isps <= 0 or users_per_isp <= 0:
            raise ValueError("need at least one ISP and one user per ISP")
        self.config = config or ZmailConfig()
        self.n_isps = n_isps
        self.users_per_isp = users_per_isp
        self.seed = seed
        flags = list(compliant) if compliant is not None else [True] * n_isps
        if len(flags) != n_isps:
            raise ValueError("compliant flags length must equal n_isps")
        local = set(range(n_isps)) if local_isps is None else set(local_isps)
        if not local <= set(range(n_isps)):
            raise ValueError(f"local_isps out of range: {sorted(local)}")
        if local != set(range(n_isps)) and transport is None:
            raise ValueError("a sharded slice (local_isps) needs a transport")
        self.local_isps = frozenset(local)

        self.bank = Bank(use_crypto=self.config.use_crypto, seed=seed)
        self.isps: dict[int, CompliantISP | NonCompliantISP | RemoteISP] = {}
        self._nonce_sources: dict[int, NonceSource] = {}
        for isp_id, is_compliant in enumerate(flags):
            if isp_id not in local:
                self.isps[isp_id] = RemoteISP(isp_id, compliant=is_compliant)
            elif is_compliant:
                self.isps[isp_id] = CompliantISP(
                    isp_id, users_per_isp, self.config
                )
                self.bank.register_isp(
                    isp_id, initial_account=self.config.initial_bank_account
                )
                self._nonce_sources[isp_id] = NonceSource(
                    seed ^ 0x5EED, owner=f"isp{isp_id}"
                )
            else:
                self.isps[isp_id] = NonCompliantISP(isp_id, users_per_isp)
        self._push_directory()

        self.metrics = MetricsRegistry()
        # Hot-path counters, resolved once: the per-send/per-delivery code
        # calls a cached bound increment instead of formatting a metric
        # name and re-looking it up for every message.
        metrics = self.metrics
        self._inc_send_status = {
            status: metrics.counter(f"send.{status.value}").increment
            for status in SendStatus
        }
        self._inc_send_kind = {
            kind: metrics.counter(f"send.kind.{kind.value}").increment
            for kind in TrafficKind
        }
        self._inc_deliver_kind = {
            kind: metrics.counter(f"deliver.kind.{kind.value}").increment
            for kind in TrafficKind
        }
        self._inc_delivered = metrics.counter("deliver.delivered").increment
        self._inc_dropped = metrics.counter("deliver.dropped").increment
        self._inc_topup_count = metrics.counter("topup.count").increment
        self._inc_topup_epennies = metrics.counter("topup.epennies").increment
        self.paid_letters_in_flight = 0
        # Requests seen by run_workload/_dispatch_request; lets streaming
        # callers read the attempt count without wrapping the (hot) request
        # iterator in a counting generator.
        self.workload_attempted = 0
        self._last_day_seen = 0
        self._external_deposit = 0
        # Durable-store dirty hook: called as touch(isp_id, user_id) at
        # every funnel that can mutate per-user state (send, deliver,
        # fund). None (the default) keeps the hot path branch-predictable.
        self._touch: Callable[[int, int], None] | None = None
        self._bank_reply_handler = None
        self.midnight_handle = None  # set by run_workload in engine mode
        self.last_report: ReconciliationReport | None = None
        self._isp_names = [f"isp{isp_id}" for isp_id in range(n_isps)]

        self.overload = overload
        self._admission: dict[int, AdmissionController] | None = None
        self._retry_armed: dict[int, float] = {}
        self._direct_now = 0.0
        self._overload_clock = overload_clock
        self._overload_scheduler = overload_scheduler
        self._overload_gate = overload_gate
        if overload is not None:
            self._admission = {
                isp_id: AdmissionController(f"isp{isp_id}", overload)
                for isp_id in range(n_isps)
            }
            self._inc_shed = metrics.counter("overload.shed").increment
            self._inc_deferred = metrics.counter("overload.deferred").increment
            self._inc_bounced = metrics.counter("overload.bounced").increment
            self._inc_retried = metrics.counter("overload.retries").increment

        self.engine = engine
        self.transport = transport
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.spans = spans if spans is not None else NULL_SPANS
        if tracer is not None and tracer is not NULL_TRACER and tracer.clock is None:
            # The outermost clock owner wins: a chaos harness or CLI that
            # installed its own clock first keeps it.
            if engine is not None:
                engine_clock = engine.clock
                tracer.clock = lambda: engine_clock.now
            else:
                tracer.clock = lambda: self._direct_now
        self.net: Network | None = None
        self._active_coordinator: object | None = None
        if engine is not None:
            streams = SeededStreams(seed)
            self.net = Network(
                engine,
                streams,
                default_link=link or LinkSpec(),
                tracer=self.tracer,
            )
            for isp_id in range(n_isps):
                self.net.register(f"isp{isp_id}", _IspEndpoint(self, isp_id))
            self.net.register("bank", _BankEndpoint(self))

    # -- directory ---------------------------------------------------------------

    def _push_directory(self) -> None:
        directory = self.bank.compliance_directory()
        # Non-compliant ISPs are absent from the bank; fill them in as
        # False. Remote ISPs are absent too (their home shard's bank slice
        # owns the account) — advertise their configured flag so local
        # senders pay compliant remote destinations.
        for isp_id, isp in self.isps.items():
            if isinstance(isp, RemoteISP):
                directory.setdefault(isp_id, isp.compliant)
            else:
                directory.setdefault(isp_id, False)
        for isp in self.isps.values():
            if isinstance(isp, CompliantISP):
                isp.update_compliance(directory)

    def compliant_isps(self) -> dict[int, CompliantISP]:
        """The compliant subset, keyed by ISP id."""
        return {
            isp_id: isp
            for isp_id, isp in self.isps.items()
            if isinstance(isp, CompliantISP)
        }

    def make_compliant(self, isp_id: int) -> None:
        """Convert a non-compliant ISP to compliant (incremental deployment).

        User mailboxes start fresh; the bank opens an account and the
        directory update is broadcast, exactly the §5 adoption step.
        """
        isp = self.isps[isp_id]
        if isinstance(isp, CompliantISP):
            return
        if isinstance(isp, RemoteISP):
            raise SimulationError(
                f"isp{isp_id} is remote; its home shard owns compliance"
            )
        self.isps[isp_id] = CompliantISP(isp_id, self.users_per_isp, self.config)
        self.bank.register_isp(
            isp_id, initial_account=self.config.initial_bank_account
        )
        self._nonce_sources[isp_id] = NonceSource(0x5EED ^ isp_id, owner=f"isp{isp_id}")
        self._push_directory()

    def set_touch_hook(
        self, touch: Callable[[int, int], None] | None
    ) -> None:
        """Install (or clear) the durable-store dirty-tracking hook.

        ``touch(isp_id, user_id)`` is invoked for every user whose state
        may have changed; the set it accumulates is a superset of the
        actually-mutated users (blocked sends still touch the sender),
        which is safe — re-persisting a clean record is a no-op. Midnight
        resets and auto-topups need no extra hook calls: both only change
        users already touched by a send on the same path.
        """
        self._touch = touch

    # -- funding helpers --------------------------------------------------------------

    def fund_user(
        self, address: Address, *, pennies: int = 0, epennies: int = 0
    ) -> None:
        """Top up a user's purses directly (workload setup, e.g. spammers).

        Both injections are out-of-band endowments (real deposit, e-penny
        grant) tracked in :meth:`expected_total_value` so conservation
        audits still balance.
        """
        isp = self.isps[address.isp]
        if not isinstance(isp, CompliantISP):
            return
        user = isp.ledger.user(address.user)
        if pennies:
            user.credit_pennies(pennies)
            self._external_deposit += pennies
        if epennies:
            user.credit_epennies(epennies)
            self._external_deposit += epennies
        if self._touch is not None:
            self._touch(address.isp, address.user)

    # -- sending ------------------------------------------------------------------------

    def send(
        self,
        sender: Address,
        recipient: Address,
        kind: TrafficKind = TrafficKind.NORMAL,
        *,
        content: tuple[str, ...] | None = None,
    ) -> SendReceipt:
        """Route one send attempt through the sender's ISP.

        In direct mode a produced letter is delivered immediately; in
        engine mode it is handed to the latency network. ``content``
        optionally attaches the message's tokens for content-based
        receiving policies (FILTER).

        With an :class:`OverloadConfig` active, the sender ISP's
        admission controller runs first: a saturated ISP answers
        ``SHED`` (refused outright, audited) or ``DEFERRED`` (queued for
        backoff retry) without touching any ledger.
        """
        if not (0 <= sender.isp < self.n_isps and 0 <= recipient.isp < self.n_isps):
            raise SimulationError(f"address out of range: {sender} -> {recipient}")
        if self._admission is not None:
            receipt = self._admit_send(sender, recipient, kind, content)
            if receipt is not None:
                self._inc_send_status[receipt.status]()
                self._inc_send_kind[kind]()
                tracer = self.tracer
                if tracer.enabled:
                    tracer.emit(
                        "send",
                        src=str(sender),
                        dst=str(recipient),
                        kind=kind.value,
                        status=receipt.status.value,
                    )
                return receipt
        return self._send_admitted(sender, recipient, kind, content)

    def _send_admitted(
        self,
        sender: Address,
        recipient: Address,
        kind: TrafficKind,
        content: tuple[str, ...] | None,
    ) -> SendReceipt:
        """The pre-overload send path: admission already granted (or off)."""
        isp = self.isps[sender.isp]
        if self._touch is not None:
            # Sender always (counters/purse even on blocked sends); the
            # recipient too, covering the local-delivery short circuit
            # where no Letter ever reaches _deliver_letter.
            self._touch(sender.isp, sender.user)
            self._touch(recipient.isp, recipient.user)
        receipt = isp.submit(sender.user, recipient, kind, content)
        if (
            receipt.status is SendStatus.BLOCKED_BALANCE
            and isinstance(isp, CompliantISP)
            and self.config.auto_topup_amount > 0
        ):
            receipt = self._retry_with_topup(isp, sender, recipient, kind, content)
        self._inc_send_status[receipt.status]()
        self._inc_send_kind[kind]()
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                "send",
                src=str(sender),
                dst=str(recipient),
                kind=kind.value,
                status=receipt.status.value,
            )
        if receipt.letter is not None:
            self._route_letter(receipt.letter)
        return receipt

    def _retry_with_topup(
        self,
        isp: CompliantISP,
        sender: Address,
        recipient: Address,
        kind: TrafficKind,
        content: tuple[str, ...] | None = None,
    ) -> SendReceipt:
        """Auto top-up: buy e-pennies from the pool and retry once."""
        user = isp.ledger.user(sender.user)
        amount = min(
            self.config.auto_topup_amount, user.account, isp.ledger.pool
        )
        if amount <= 0:
            return RECEIPT_BLOCKED_BALANCE
        try:
            isp.ledger.user_buys_epennies(sender.user, amount)
        except InsufficientBalance:
            return RECEIPT_BLOCKED_BALANCE
        self._inc_topup_count()
        self._inc_topup_epennies(amount)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit("topup", isp=sender.isp, user=sender.user, amount=amount)
        return isp.submit(sender.user, recipient, kind, content)

    # -- overload admission -------------------------------------------------------------

    def _overload_now(self) -> float:
        if self._overload_clock is not None:
            return self._overload_clock()
        return self.engine.now if self.engine is not None else self._direct_now

    def _retry_timer(self) -> Callable[[float, Callable[[], None]], object] | None:
        if self._overload_scheduler is not None:
            return self._overload_scheduler
        if self.engine is not None:
            return lambda delay, cb: self.engine.schedule_after(
                delay, cb, label="overload-retry"
            )
        return None

    def _is_paid_route(self, sender: Address, recipient: Address) -> bool:
        return isinstance(self.isps[sender.isp], CompliantISP) and isinstance(
            self.isps[recipient.isp], CompliantISP
        )

    def _admit_send(
        self,
        sender: Address,
        recipient: Address,
        kind: TrafficKind,
        content: tuple[str, ...] | None,
    ) -> SendReceipt | None:
        """Run admission control; ``None`` means accepted (proceed now)."""
        assert self._admission is not None
        controller = self._admission[sender.isp]
        now = self._overload_now()
        shed_class = shed_class_for(
            kind, paid=self._is_paid_route(sender, recipient)
        )
        bounced_before = controller.bounced
        decision = controller.admit(now, shed_class)
        tracer = self.tracer
        if controller.bounced > bounced_before:  # a queued victim was evicted
            evicted = controller.bounced - bounced_before
            self._inc_bounced(evicted)
            if tracer.enabled:
                tracer.emit("overload.bounce", isp=sender.isp, n=evicted)
        if decision == "accept":
            return None
        if decision == "shed":
            self._inc_shed()
            if tracer.enabled:
                tracer.emit("overload.shed", isp=sender.isp)
            return RECEIPT_SHED
        controller.defer(now, (sender, recipient, kind, content), shed_class)
        self._inc_deferred()
        if tracer.enabled:
            tracer.emit("overload.defer", isp=sender.isp)
        self._arm_retry(sender.isp, controller)
        return RECEIPT_DEFERRED

    def _arm_retry(self, isp_id: int, controller: AdmissionController) -> None:
        """Engine mode: make sure a timer covers the earliest pending retry.

        Direct mode needs no timers — :meth:`note_time` pumps as the
        driver advances virtual time. Superseded timers fire spuriously
        and pump an empty queue, which is harmless.
        """
        timer = self._retry_timer()
        if timer is None:
            return
        due = controller.next_due()
        if due is None:
            return
        armed = self._retry_armed.get(isp_id)
        if armed is not None and armed <= due:
            return
        self._retry_armed[isp_id] = due
        timer(max(0.0, due - self._overload_now()), lambda: self._retry_fire(isp_id))

    def _retry_fire(self, isp_id: int) -> None:
        self._retry_armed.pop(isp_id, None)
        self._pump_overload(isp_id)

    def _pump_overload(self, isp_id: int) -> None:
        """Process due deferred sends for one ISP: deliver or bounce."""
        assert self._admission is not None
        controller = self._admission[isp_id]
        now = self._overload_now()
        if self._overload_gate is not None and not self._overload_gate(isp_id):
            # Node not ready (crashed); hold the queue and try again after
            # one base-backoff interval.
            timer = self._retry_timer()
            if timer is not None and controller.pending:
                delay = self.overload.retry_base  # type: ignore[union-attr]
                self._retry_armed[isp_id] = now + delay
                timer(delay, lambda: self._retry_fire(isp_id))
            return
        tracer = self.tracer
        for outcome, item in controller.pump(now):
            if outcome == "accept":
                sender, recipient, kind, content = item.payload
                self._inc_retried()
                if tracer.enabled:
                    tracer.emit("overload.retry", isp=isp_id)
                self._send_admitted(sender, recipient, kind, content)
            else:
                self._inc_bounced()
                if tracer.enabled:
                    tracer.emit("overload.bounce", isp=isp_id, n=1)
        self._arm_retry(isp_id, controller)

    def overload_pending(self) -> int:
        """Messages sitting in deferred queues across all ISPs."""
        if self._admission is None:
            return 0
        return sum(c.pending for c in self._admission.values())

    def overload_controllers(self) -> dict[int, AdmissionController]:
        """The per-ISP admission controllers (empty dict when disabled)."""
        return dict(self._admission) if self._admission is not None else {}

    def overload_stats(self) -> dict[str, int]:
        """Aggregate admission counters across all ISPs (zeros when off)."""
        keys = (
            "attempts", "accepted", "shed", "bounced", "evicted", "retries"
        )
        stats = {f"overload_{key}": 0 for key in keys}
        stats["overload_pending"] = 0
        stats["overload_peak_pending"] = 0
        if self._admission is None:
            return stats
        for controller in self._admission.values():
            for key in keys:
                stats[f"overload_{key}"] += getattr(controller, key)
            stats["overload_pending"] += controller.pending
            stats["overload_peak_pending"] = max(
                stats["overload_peak_pending"], controller.peak_pending
            )
        return stats

    def drain_overload(self, *, deadline: float | None = None) -> bool:
        """Direct mode: advance time through every pending retry.

        Returns ``True`` when the deferred queues drained (every admitted
        message delivered or bounced); ``False`` if ``deadline`` cut the
        drain short. Engine mode drains through its own retry timers —
        run the engine instead.
        """
        if self._admission is None or self._retry_timer() is not None:
            return self.overload_pending() == 0
        while self.overload_pending():
            dues = [
                due
                for c in self._admission.values()
                if (due := c.next_due()) is not None
            ]
            if not dues:
                break
            next_due = min(dues)
            if deadline is not None and next_due > deadline:
                return False
            self.note_time(next_due)
        return self.overload_pending() == 0

    def _route_letter(self, letter: Letter) -> None:
        if letter.paid:
            self.paid_letters_in_flight += 1
        if self.transport is not None:
            self.transport(letter)
        elif self.net is None:
            self._deliver_letter(letter)
        else:
            names = self._isp_names
            self.net.send(
                names[letter.sender.isp],
                names[letter.recipient.isp],
                letter,
                size=1024,
            )

    def _deliver_letter(self, letter: Letter) -> None:
        if letter.paid:
            self.paid_letters_in_flight -= 1
        if self._touch is not None:
            self._touch(letter.recipient.isp, letter.recipient.user)
        delivered = self.isps[letter.recipient.isp].deliver(letter)
        if delivered:
            self._inc_delivered()
        else:
            self._inc_dropped()
        self._inc_deliver_kind[letter.kind]()
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                "deliver",
                src=str(letter.sender),
                dst=str(letter.recipient),
                kind=letter.kind.value,
                ok=delivered,
            )

    def deliver_transported(self, letter: Letter) -> None:
        """Complete delivery of a letter carried by a custom transport.

        The transport handed out by :attr:`transport` must call this
        exactly once per letter it accepted — it settles the in-flight
        accounting and hands the letter to the destination ISP.
        """
        self._deliver_letter(letter)

    # -- engine-mode message pump -----------------------------------------------------------

    def _on_isp_message(self, isp_id: int, payload: object) -> None:
        if isinstance(payload, Letter):
            self._deliver_letter(payload)
            return
        coordinator = self._active_coordinator
        if isinstance(payload, SnapshotRequest) and coordinator is not None:
            coordinator.on_request(isp_id, payload)  # type: ignore[attr-defined]
            return
        if isinstance(payload, SnapshotMarker) and coordinator is not None:
            coordinator.on_marker(isp_id, payload)  # type: ignore[attr-defined]
            return
        raise SimulationError(f"isp{isp_id}: unexpected payload {payload!r}")

    def _on_bank_message(self, payload: object) -> None:
        if isinstance(payload, SnapshotReply) and self._bank_reply_handler:
            self._bank_reply_handler(payload)
            return
        raise SimulationError(f"bank: unexpected payload {payload!r}")

    def _send_control(self, src_isp: int | None, dst_isp: int, payload: object) -> None:
        assert self.net is not None
        src = "bank" if src_isp is None else f"isp{src_isp}"
        self.net.send(src, f"isp{dst_isp}", payload, size=64)

    def _send_reply_to_bank(self, reply: SnapshotReply) -> None:
        assert self.net is not None
        self.net.send(f"isp{reply.isp_id}", "bank", reply, size=256)

    # -- snapshots / reconciliation -----------------------------------------------------------

    def reconcile(self, method: str = "direct") -> ReconciliationReport | None:
        """Run one §4.4 reconciliation round.

        Args:
            method: ``"direct"`` (synchronous, direct mode only),
                ``"timeout"`` (the paper's quiesce window) or ``"marker"``
                (consistent-cut markers); the latter two require engine
                mode and return ``None`` immediately — the report appears
                on :attr:`last_report` once the round completes in virtual
                time.
        """
        compliant = self.compliant_isps()
        if method == "direct":
            if self.net is not None and self.paid_letters_in_flight:
                raise SimulationError(
                    "direct reconciliation with letters in flight; "
                    "run the engine to quiescence first or use "
                    "method='timeout'/'marker'"
                )
            coordinator = DirectSnapshotCoordinator(self.bank, compliant)
            with self.spans.span("snapshot.round"):
                report = coordinator.run()
            self.last_report = report
            self._trace_reconcile("direct", report)
            return report
        if self.net is None or self.engine is None:
            raise SimulationError(f"method {method!r} requires engine mode")

        def route_receipts(receipts: list[SendReceipt]) -> None:
            for receipt in receipts:
                if receipt.letter is not None:
                    self._route_letter(receipt.letter)

        def complete(report: ReconciliationReport) -> None:
            self.last_report = report
            self._active_coordinator = None
            self._bank_reply_handler = None
            self._trace_reconcile(method, report)

        if method == "timeout":
            coordinator = TimeoutSnapshotCoordinator(
                self.bank,
                compliant,
                quiesce_seconds=self.config.snapshot_quiesce_seconds,
                send_control=self._send_control,
                schedule_after=lambda d, cb: self.engine.schedule_after(d, cb),
                on_complete=complete,
                route_receipts=route_receipts,
            )
        elif method == "marker":
            coordinator = MarkerSnapshotCoordinator(
                self.bank,
                compliant,
                send_control=self._send_control,
                on_complete=complete,
                route_receipts=route_receipts,
            )
        else:
            raise ValueError(f"unknown snapshot method {method!r}")
        # ISP-side replies traverse the network; the bank endpoint funnels
        # delivered replies back into the coordinator's collection logic.
        self._bank_reply_handler = coordinator.on_reply
        coordinator.on_reply = self._send_reply_to_bank  # type: ignore[method-assign]
        self._active_coordinator = coordinator
        coordinator.start()
        return None

    # -- time ---------------------------------------------------------------------------------

    def _trace_reconcile(self, method: str, report: ReconciliationReport) -> None:
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                "reconcile",
                method=method,
                round=report.round_seq,
                consistent=report.consistent,
                flagged=sorted(report.flagged_isps()),
            )

    def advance_day_to(self, day: int) -> None:
        """Apply midnight resets and pool rebalancing up to ``day``."""
        while self._last_day_seen < day:
            self._last_day_seen += 1
            tracer = self.tracer
            if tracer.enabled:
                tracer.emit("midnight", day=self._last_day_seen)
            for isp in self.compliant_isps().values():
                isp.midnight()
            self.rebalance_pools()

    def note_time(self, t: float) -> None:
        """Direct-mode driver: midnight work at day boundaries, plus the
        overload retry pump (deferred sends whose backoff expired by ``t``).

        Also advances the direct-mode virtual clock the tracer reads, so
        traced events carry the driver's time even with overload off.
        """
        if t > self._direct_now:
            self._direct_now = t
        self.advance_day_to(int(t // DAY))
        if self._admission is not None:
            for isp_id, controller in self._admission.items():
                due = controller.next_due()
                if due is not None and due <= self._direct_now:
                    self._pump_overload(isp_id)

    def rebalance_pools(self, isp_ids: Iterable[int] | None = None) -> None:
        """§4.3: compliant ISPs buy/sell pool e-pennies at the bank.

        Args:
            isp_ids: Restrict the round to this subset (the chaos harness
                skips crashed ISPs — a down node cannot trade with the
                bank). Default: every compliant ISP.
        """
        compliant = self.compliant_isps()
        if isp_ids is not None:
            compliant = {
                isp_id: compliant[isp_id]
                for isp_id in isp_ids
                if isp_id in compliant
            }
        tracer = self.tracer
        for isp_id, isp in sorted(compliant.items()):
            # An ISP the bank has flagged non-compliant cannot trade:
            # buy_epennies/sell_epennies would raise NotCompliant, and the
            # partial-rebalance path (chaos restarts rebalance a subset)
            # must not let one flagged member abort the whole round.
            if not self.bank.is_compliant(isp_id):
                continue
            deficit = isp.pool_deficit()
            if deficit > 0:
                nonce = self._nonce_sources[isp_id].next()
                result = self.bank.buy_epennies(isp_id, value=deficit, nonce=nonce)
                if result.accepted:
                    isp.ledger.pool_credit(deficit)
                    self.metrics.counter("bank.buys").increment()
                    if tracer.enabled:
                        tracer.emit(
                            "bank.trade", isp=isp_id, op="buy", amount=deficit
                        )
                continue
            surplus = isp.pool_surplus()
            if surplus > 0:
                nonce = self._nonce_sources[isp_id].next()
                # Bank first: debiting the pool before a sell_epennies
                # that raised (NotCompliant, replay) destroyed the surplus
                # outright. With the bank credited, pool_debit cannot fail
                # (the surplus is bounded by the pool).
                self.bank.sell_epennies(isp_id, value=surplus, nonce=nonce)
                isp.ledger.pool_debit(surplus)
                self.metrics.counter("bank.sells").increment()
                if tracer.enabled:
                    tracer.emit(
                        "bank.trade", isp=isp_id, op="sell", amount=surplus
                    )

    # -- workload driving --------------------------------------------------------------------

    def run_workload(
        self, requests: Iterable[SendRequest], *, streaming: bool = True
    ) -> None:
        """Drive a time-ordered request stream through the deployment.

        Direct mode: requests execute immediately, with midnight work
        applied at day boundaries.

        Engine mode with ``streaming=True`` (the default): the request
        iterator is attached as an engine stream, pulled lazily between
        heap events — the heap then only carries periodic/control timers
        (midnights, reconciliations, deliveries), so a million-message
        workload costs O(1) scheduling memory. With ``streaming=False``
        every request is materialized as its own heap event + closure
        (the legacy path, kept for comparison; the determinism tests
        assert both paths produce identical results). Callers then
        ``engine.run()`` either way.
        """
        if self.engine is None:
            note_time = self.note_time
            send = self.send
            count = 0
            for request in requests:
                note_time(request.time)
                send(request.sender, request.recipient, request.kind)
                count += 1
            self.workload_attempted += count
            return
        if streaming:
            self.engine.add_stream(
                requests, self._dispatch_request, label="workload"
            )
        else:
            dispatch = self._dispatch_request
            for request in requests:
                self.engine.schedule_at(
                    request.time,
                    lambda r=request: dispatch(r),
                    label="send",
                )
        # The perpetual midnight chain; exposed so bounded runs can cancel
        # it once the workload is done (otherwise the drain window would
        # apply midnight work — notably pool rebalancing — for days the
        # direct path never simulates, and cross-mode accounting would
        # diverge).
        self.midnight_handle = self.engine.schedule_every(
            DAY, self._engine_midnight, label="midnight"
        )

    def _dispatch_request(self, request: SendRequest) -> None:
        """Engine-stream dispatcher: one shared callback for all sends."""
        self.workload_attempted += 1
        self.send(request.sender, request.recipient, request.kind)

    def _engine_midnight(self) -> None:
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit("midnight", day=int(self.engine.now // DAY))
        for isp in self.compliant_isps().values():
            isp.midnight()
        self.rebalance_pools()

    # -- audits ---------------------------------------------------------------------------------

    def total_value(self) -> int:
        """All value in the system, for conservation checks.

        Counts user purses, ISP pools, bank accounts and paid letters in
        flight. Constant across any run apart from explicit
        :meth:`fund_user` injections (tracked separately).
        """
        total = 0
        for isp in self.compliant_isps().values():
            totals = isp.ledger.totals()
            total += totals.total_value
        total += self.bank.total_deposits()
        total += self.paid_letters_in_flight
        return total

    def expected_total_value(self) -> int:
        """Initial endowment plus external injections via fund_user."""
        n_compliant = len(self.compliant_isps())
        per_isp = (
            self.users_per_isp
            * (self.config.default_user_account + self.config.default_user_balance)
            + self.config.initial_pool
        )
        return (
            n_compliant * (per_isp + self.config.initial_bank_account)
            + self._external_deposit
        )
