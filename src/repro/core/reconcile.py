"""Streaming, barrier-free §4.4 reconciliation.

The lockstep path quiesces the whole deployment, merges every ISP's
snapshot reply into one credit matrix, and verifies it in a single
batch (:meth:`~repro.core.bank.Bank.reconcile`). This module replaces
that global synchronization point with **per-ISP-pair sequence-numbered
credit-delta streams** verified as they arrive:

* Each reconciliation *window* ``w`` (the w-th cut of the run) carries,
  per reporter ISP, a set of per-peer credit **deltas** — exactly what
  :meth:`CompliantISP.snapshot_reply` already returns, since the reply
  resets the credit array for the next period.
* A delta is addressed ``(reporter, peer, window)``; the window index is
  the stream's sequence number. Deltas for different windows may arrive
  **interleaved and out of order** — windows accumulate independently.
* A reporter **seals** a window when its report for that window is
  complete; unreported pairs then default to zero, matching
  :func:`~repro.core.misbehavior.verify_credit_matrix`.
* Windows **close strictly in order** (window ``w`` closes only after
  ``w-1``), once every reporter sealed it and — when conservation
  sources are configured — every source reported its
  ``(total_value, expected_total_value)`` pair. Closing runs the full
  §4.4 anti-symmetry verification plus the conservation check and
  produces a :class:`~repro.core.misbehavior.ReconciliationReport`
  identical to what the lockstep merge would have produced.

Disorder is classified exactly three ways (the contract the property
tests pin):

* **dup-drop** — a delta, seal or totals record that was already
  applied (or whose window already closed, e.g. a crash-replayed
  report) is dropped and counted, never an error;
* **gap-stall** — an out-of-order seal (window ``w+1`` sealed before
  ``w``) or a one-sided pair simply stalls window closure; nothing is
  lost, the window waits for its predecessors;
* **window-expiry fault** — when the observed frontier (the highest
  window index seen anywhere) runs more than ``max_lag`` windows ahead
  of the oldest still-open window, the staleness bound is violated:
  a :class:`StaleWindowError` under ``strict``, a recorded fault
  otherwise.

A duplicate that *disagrees* with the recorded value, a delta arriving
after its reporter sealed the window, or an unregistered reporter/peer
are **conflict faults**: evidence of misbehaviour, not disorder.

The verifier never touches accounting state — like the snapshot cut it
replaces, it is a pure observer — which is why the bounded-lag cluster
mode built on it converges to byte-identical final digests (DESIGN.md
§11, the lockstep-as-oracle contract).
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..errors import SimulationError
from .misbehavior import (
    ReconciliationReport,
    infer_suspects,
    verify_credit_matrix,
)

__all__ = [
    "ReconcileError",
    "StaleWindowError",
    "PairDeltaStream",
    "StreamingReconciler",
]


class ReconcileError(SimulationError):
    """A delta-stream protocol violation (conflict, unknown party, ...)."""


class StaleWindowError(ReconcileError):
    """An open window fell more than ``max_lag`` behind the frontier."""


class PairDeltaStream:
    """One directed ``reporter → peer`` credit-delta stream.

    Tracks the applied delta per window so duplicates can be told apart
    from conflicts while the window is still open. Closed windows are
    forgotten (:meth:`forget`) — a duplicate for a closed window is
    dropped unverified, the price of bounded memory.
    """

    __slots__ = ("reporter", "peer", "_values")

    def __init__(self, reporter: int, peer: int) -> None:
        self.reporter = reporter
        self.peer = peer
        self._values: dict[int, int] = {}

    def offer(self, window: int, delta: int) -> str:
        """Record one delta; returns ``"applied"``, ``"duplicate"`` or
        ``"conflict"``."""
        recorded = self._values.get(window)
        if recorded is None:
            self._values[window] = delta
            return "applied"
        return "duplicate" if recorded == delta else "conflict"

    def value(self, window: int) -> int | None:
        """The applied delta for ``window``, or ``None`` if none yet."""
        return self._values.get(window)

    def forget(self, window: int) -> None:
        """Release ``window``'s value (called when the window closes)."""
        self._values.pop(window, None)


class _Window:
    """Accumulation state for one not-yet-closed window."""

    __slots__ = ("claims", "totals", "sealed")

    def __init__(self) -> None:
        # reporter → {peer: delta} (explicit claims only; zeros implied
        # at closure for unreported pairs, per verify_credit_matrix).
        self.claims: dict[int, dict[int, int]] = {}
        # conservation source → (total_value, expected_total_value)
        self.totals: dict[int, tuple[int, int]] = {}
        self.sealed: set[int] = set()


class StreamingReconciler:
    """Incremental §4.4 verifier over per-pair delta streams.

    Args:
        reporters: The compliant directory — every ISP expected to seal
            every window. Deltas naming parties outside it are conflict
            faults.
        max_lag: Bounded-staleness window: the frontier may run at most
            this many windows ahead of the oldest open window.
        totals_sources: Conservation reporters (cluster shards). When
            set, a window also waits for every source's totals before
            closing, and closure checks Σ total == Σ expected. ``None``
            disables the conservation gate.
        strict: Raise on faults (:class:`ReconcileError` /
            :class:`StaleWindowError`) instead of only recording them.
        tracer: Optional :class:`~repro.obs.trace.TraceRecorder`;
            emits ``reconcile.delta`` / ``reconcile.window`` /
            ``reconcile.fault`` events.
        on_report: Called as ``on_report(report, meta)`` at each window
            closure, where ``meta`` carries the window index, summed
            totals and the conservation verdict.
    """

    def __init__(
        self,
        reporters: Iterable[int],
        *,
        max_lag: int = 1,
        totals_sources: Iterable[int] | None = None,
        strict: bool = True,
        tracer=None,
        on_report: Callable[[ReconciliationReport, dict], None] | None = None,
    ) -> None:
        self.reporters = frozenset(int(r) for r in reporters)
        if max_lag < 0:
            raise ValueError(f"max_lag must be >= 0, got {max_lag}")
        self.max_lag = int(max_lag)
        self.totals_sources = (
            None if totals_sources is None
            else frozenset(int(s) for s in totals_sources)
        )
        self.strict = strict
        self.tracer = tracer
        self.on_report = on_report
        self._streams: dict[tuple[int, int], PairDeltaStream] = {}
        self._windows: dict[int, _Window] = {}
        # Per-reporter seal cursor: windows [0, cursor) are sealed.
        self._seal_next: dict[int, int] = {r: 0 for r in self.reporters}
        self._pending_seals: dict[int, set[int]] = {
            r: set() for r in self.reporters
        }
        self._next_close = 0
        self._frontier = -1
        self._finalized = False
        self.reports: list[ReconciliationReport] = []
        self.window_meta: list[dict] = []
        self.faults: list[dict] = []
        self.counters: dict[str, int] = {
            "deltas_applied": 0,
            "dup_deltas_dropped": 0,
            "seals_applied": 0,
            "seals_buffered": 0,
            "dup_seals_dropped": 0,
            "totals_applied": 0,
            "dup_totals_dropped": 0,
            "pairs_verified_early": 0,
            "windows_closed": 0,
            "pairs_verified": 0,
            "faults": 0,
        }

    # -- introspection -------------------------------------------------------

    @property
    def windows_closed(self) -> int:
        return self._next_close

    @property
    def open_windows(self) -> list[int]:
        return sorted(self._windows)

    @property
    def all_consistent(self) -> bool:
        """Whether every closed window verified cleanly."""
        return all(report.consistent for report in self.reports)

    # -- fault plumbing ------------------------------------------------------

    def _fault(self, kind: str, detail: dict, *, exc=ReconcileError) -> None:
        self.counters["faults"] += 1
        record = {"kind": kind, **detail}
        self.faults.append(record)
        if self.tracer is not None:
            self.tracer.emit("reconcile.fault", kind=kind, **detail)
        if self.strict:
            raise exc(f"reconcile fault {kind}: {detail}")

    def _check_party(self, role: str, isp: int) -> bool:
        if isp in self.reporters:
            return True
        self._fault(f"unknown-{role}", {role: isp})
        return False

    def _observe(self, window: int) -> None:
        if window > self._frontier:
            self._frontier = window

    def _check_staleness(self) -> None:
        # After closures: the message that finally closes a lagging
        # window must not itself trip the bound it just restored.
        lag = self._frontier - self._next_close
        if lag > self.max_lag:
            self._fault(
                "window-expiry",
                {
                    "window": self._next_close,
                    "frontier": self._frontier,
                    "max_lag": self.max_lag,
                },
                exc=StaleWindowError,
            )

    # -- ingest --------------------------------------------------------------

    def _window_state(self, window: int) -> _Window:
        state = self._windows.get(window)
        if state is None:
            state = self._windows[window] = _Window()
        return state

    def ingest_delta(
        self, reporter: int, peer: int, window: int, delta: int
    ) -> str:
        """Apply one ``(reporter, peer, window)`` credit delta.

        Returns ``"applied"`` or ``"duplicate"``; faults (conflicting
        duplicate, post-seal delta, unknown party, expired window)
        raise under ``strict`` and are recorded otherwise.
        """
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        if not (self._check_party("reporter", reporter)
                and self._check_party("peer", peer)):
            return "fault"
        self._observe(window)
        if window < self._next_close:
            # The window already closed and its values were forgotten:
            # a crash-replayed report. Drop it unverified.
            self.counters["dup_deltas_dropped"] += 1
            self._check_staleness()
            return "duplicate"
        stream = self._streams.get((reporter, peer))
        if stream is None:
            stream = self._streams[(reporter, peer)] = PairDeltaStream(
                reporter, peer
            )
        sealed = window < self._seal_next[reporter] or (
            window in self._pending_seals[reporter]
        )
        outcome = "duplicate" if sealed else stream.offer(window, delta)
        if outcome == "duplicate":
            if sealed and stream.value(window) != delta:
                # New or disagreeing information after the reporter
                # declared the window complete: misbehaviour evidence.
                self._fault(
                    "post-seal-delta",
                    {"reporter": reporter, "peer": peer, "window": window},
                )
                return "fault"
            self.counters["dup_deltas_dropped"] += 1
            self._check_staleness()
            return "duplicate"
        if outcome == "conflict":
            self._fault(
                "conflicting-delta",
                {"reporter": reporter, "peer": peer, "window": window},
            )
            return "fault"
        self._window_state(window).claims.setdefault(reporter, {})[
            peer
        ] = delta
        self.counters["deltas_applied"] += 1
        if self.tracer is not None:
            self.tracer.emit(
                "reconcile.delta", reporter=reporter, peer=peer, window=window
            )
        # Verified as it arrives: the moment both directions of a pair
        # exist, anti-symmetry is checked eagerly — a misreporting ISP
        # is visible long before the window closes.
        reverse = self._streams.get((peer, reporter))
        if reverse is not None and reverse.value(window) is not None:
            self.counters["pairs_verified_early"] += 1
        self._check_staleness()
        return "applied"

    def seal(self, reporter: int, window: int) -> str:
        """Mark ``reporter``'s report for ``window`` complete.

        Seals are sequence-numbered per reporter: a seal below the
        cursor is a dropped duplicate, one above it is buffered until
        the gap fills (gap-stall), the expected one applies and drains
        any buffered successors.
        """
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        if not self._check_party("reporter", reporter):
            return "fault"
        self._observe(window)
        cursor = self._seal_next[reporter]
        if window < cursor:
            self.counters["dup_seals_dropped"] += 1
            self._check_staleness()
            return "duplicate"
        if window > cursor:
            pending = self._pending_seals[reporter]
            if window in pending:
                self.counters["dup_seals_dropped"] += 1
                self._check_staleness()
                return "duplicate"
            pending.add(window)
            self.counters["seals_buffered"] += 1
            self._check_staleness()
            return "buffered"
        pending = self._pending_seals[reporter]
        while True:
            pending.discard(cursor)
            self._window_state(cursor).sealed.add(reporter)
            self.counters["seals_applied"] += 1
            self._seal_next[reporter] = cursor + 1
            cursor += 1
            if cursor not in pending:
                break
        self._advance()
        self._check_staleness()
        return "applied"

    def ingest_totals(
        self, source: int, window: int, total_value: int,
        expected_total_value: int,
    ) -> str:
        """Record one conservation source's totals for ``window``."""
        if (self.totals_sources is not None
                and source not in self.totals_sources):
            self._fault("unknown-source", {"source": source, "window": window})
            return "fault"
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        self._observe(window)
        pair = (int(total_value), int(expected_total_value))
        if window < self._next_close:
            self.counters["dup_totals_dropped"] += 1
            self._check_staleness()
            return "duplicate"
        state = self._window_state(window)
        recorded = state.totals.get(source)
        if recorded is not None:
            if recorded != pair:
                self._fault(
                    "conflicting-totals", {"source": source, "window": window}
                )
                return "fault"
            self.counters["dup_totals_dropped"] += 1
            self._check_staleness()
            return "duplicate"
        state.totals[source] = pair
        self.counters["totals_applied"] += 1
        self._advance()
        self._check_staleness()
        return "applied"

    def ingest_report(
        self, reporter: int, window: int, deltas: dict[int, int]
    ) -> None:
        """Bulk ingest: one reporter's full window report, then seal it.

        This is the bridge from snapshot-style replies (the cluster
        workers' cut records): each ``{peer: delta}`` entry becomes one
        stream delta, and the seal marks every unlisted pair zero.
        """
        for peer in sorted(deltas):
            self.ingest_delta(reporter, peer, window, deltas[peer])
        self.seal(reporter, window)

    # -- closure -------------------------------------------------------------

    def _closable(self, window: int) -> bool:
        state = self._windows.get(window)
        if state is None or state.sealed != self.reporters:
            return False
        if (self.totals_sources is not None
                and set(state.totals) != self.totals_sources):
            return False
        return True

    def _advance(self) -> None:
        while self._closable(self._next_close):
            self._close(self._next_close)
            self._next_close += 1

    def _close(self, window: int) -> None:
        state = self._windows.pop(window)
        claims = {
            reporter: state.claims.get(reporter, {})
            for reporter in self.reporters
        }
        for stream in self._streams.values():
            stream.forget(window)
        n = len(claims)
        inconsistent = verify_credit_matrix(claims)
        report = ReconciliationReport(
            round_seq=window,
            isps_polled=n,
            pairs_checked=n * (n - 1) // 2,
            inconsistent=inconsistent,
            suspects=infer_suspects(inconsistent),
            settlement_operations=2 * n + n * (n - 1) // 2,
            settlement_bytes=sum(
                4 * (len(arr) + 1) for arr in claims.values()
            ),
        )
        self.reports.append(report)
        total = sum(pair[0] for pair in state.totals.values())
        expected = sum(pair[1] for pair in state.totals.values())
        conserved = total == expected
        meta = {
            "window": window,
            "total_value": total,
            "expected_total_value": expected,
            "conserved": conserved,
        }
        self.window_meta.append(meta)
        self.counters["windows_closed"] += 1
        self.counters["pairs_verified"] += report.pairs_checked
        if self.tracer is not None:
            self.tracer.emit(
                "reconcile.window",
                window=window,
                consistent=report.consistent,
                flagged=sorted(report.flagged_isps()),
            )
        if self.on_report is not None:
            self.on_report(report, meta)
        if not conserved:
            self._fault(
                "conservation",
                {"window": window, "total_value": total,
                 "expected_total_value": expected},
            )

    def finalize(self) -> dict:
        """Declare quiescence: every observed window must have closed.

        Returns the run summary. An open window (missing seals, missing
        totals or a buffered out-of-order seal) is an ``incomplete``
        fault — raised under ``strict``.
        """
        if not self._finalized:
            self._finalized = True
            if self._windows:
                self._fault(
                    "incomplete",
                    {"open_windows": self.open_windows,
                     "frontier": self._frontier},
                )
        return {
            "windows_closed": self._next_close,
            "all_consistent": self.all_consistent,
            "max_lag": self.max_lag,
            "counters": dict(self.counters),
            "faults": [dict(f) for f in self.faults],
        }
