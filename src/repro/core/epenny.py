"""The e-penny: Zmail's unit of account.

"The cost of sending (or value of receiving) one email message is a unit
called an e-penny. For simplicity, assume that the 'real money' cost of
one e-penny is $0.01." (§1.2)

All monetary quantities in the library are **integer** e-pennies or
integer real pennies — money paths never touch floats. Conversions to
dollars exist only at reporting boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "EPENNY_PRICE_DOLLARS",
    "EMAIL_COST_EPENNIES",
    "epennies_to_dollars",
    "dollars_to_epennies",
    "Money",
]

# The paper's simplifying assumption: one e-penny costs one real cent.
EPENNY_PRICE_DOLLARS = 0.01

# Zmail charges exactly one e-penny per message.
EMAIL_COST_EPENNIES = 1


def epennies_to_dollars(amount: int) -> float:
    """Convert an integer e-penny amount to dollars (reporting only)."""
    return amount * EPENNY_PRICE_DOLLARS


def dollars_to_epennies(dollars: float) -> int:
    """Convert dollars to whole e-pennies, rounding toward zero."""
    return int(dollars / EPENNY_PRICE_DOLLARS)


@dataclass(frozen=True)
class Money:
    """A labelled integer amount, preventing unit mix-ups in interfaces.

    ``currency`` is ``"epenny"`` or ``"penny"`` (real cents). Arithmetic is
    only defined between like currencies.
    """

    amount: int
    currency: str = "epenny"

    def __post_init__(self) -> None:
        if self.currency not in ("epenny", "penny"):
            raise ValueError(f"unknown currency {self.currency!r}")

    def __add__(self, other: "Money") -> "Money":
        self._check(other)
        return Money(self.amount + other.amount, self.currency)

    def __sub__(self, other: "Money") -> "Money":
        self._check(other)
        return Money(self.amount - other.amount, self.currency)

    def _check(self, other: "Money") -> None:
        if not isinstance(other, Money):
            raise TypeError(f"cannot combine Money with {type(other).__name__}")
        if other.currency != self.currency:
            raise ValueError(
                f"currency mismatch: {self.currency} vs {other.currency}"
            )

    def __str__(self) -> str:
        unit = "e¢" if self.currency == "epenny" else "¢"
        return f"{self.amount}{unit}"
