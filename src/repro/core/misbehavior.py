"""Credit-array verification and misbehaviour inference (§4.4).

After a snapshot round the bank holds every compliant ISP's credit array.
For honest ISPs and a consistent cut, ``credit_i[j] + credit_j[i] == 0``
for every pair. :func:`verify_credit_matrix` finds the violating pairs;
:func:`infer_suspects` goes one step further than the paper (which stops
at "the bank may make further investigation") and ranks ISPs by how many
inconsistent pairs they appear in — a cheater that misreports against
many peers stands out, while a single inconsistent pair leaves an
ambiguous two-element suspect set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["InconsistentPair", "ReconciliationReport", "verify_credit_matrix", "infer_suspects"]


@dataclass(frozen=True)
class InconsistentPair:
    """One violated anti-symmetry constraint."""

    isp_a: int
    isp_b: int
    credit_ab: int  # what a reported about b
    credit_ba: int  # what b reported about a

    @property
    def discrepancy(self) -> int:
        """The nonzero sum — magnitude of the disagreement."""
        return self.credit_ab + self.credit_ba


@dataclass
class ReconciliationReport:
    """Outcome of one §4.4 verification round."""

    round_seq: int
    isps_polled: int
    pairs_checked: int
    inconsistent: list[InconsistentPair] = field(default_factory=list)
    suspects: list[int] = field(default_factory=list)
    settlement_operations: int = 0  # for the E6 cost comparison
    settlement_bytes: int = 0

    @property
    def consistent(self) -> bool:
        """Whether every pair satisfied anti-symmetry."""
        return not self.inconsistent

    def flagged_isps(self) -> set[int]:
        """Every ISP appearing in at least one inconsistent pair."""
        flagged: set[int] = set()
        for pair in self.inconsistent:
            flagged.add(pair.isp_a)
            flagged.add(pair.isp_b)
        return flagged


def verify_credit_matrix(
    reports: dict[int, dict[int, int]]
) -> list[InconsistentPair]:
    """Check anti-symmetry over all reported credit arrays.

    Args:
        reports: ``{isp_id: {peer_id: credit}}`` as collected by the bank.
            Missing entries default to 0 (an ISP that exchanged no mail
            with a peer reports nothing for it).

    Returns:
        The inconsistent pairs, ordered by ``(isp_a, isp_b)``.
    """
    bad: list[InconsistentPair] = []
    isps = sorted(reports)
    for index, a in enumerate(isps):
        for b in isps[index + 1 :]:
            credit_ab = reports[a].get(b, 0)
            credit_ba = reports[b].get(a, 0)
            if credit_ab + credit_ba != 0:
                bad.append(InconsistentPair(a, b, credit_ab, credit_ba))
    return bad


def infer_suspects(
    inconsistent: list[InconsistentPair], *, min_pair_count: int = 2
) -> list[int]:
    """Rank likely cheaters from the pattern of inconsistent pairs.

    An ISP misreporting its traffic is inconsistent with *every* honest
    peer it exchanged mail with, so ISPs appearing in ``min_pair_count``
    or more bad pairs are prime suspects. With a single bad pair the
    evidence cannot separate the two parties, so both are returned.

    Returns:
        Suspect ISP ids, most-implicated first.
    """
    if not inconsistent:
        return []
    counts: dict[int, int] = {}
    for pair in inconsistent:
        counts[pair.isp_a] = counts.get(pair.isp_a, 0) + 1
        counts[pair.isp_b] = counts.get(pair.isp_b, 0) + 1
    heavy = [isp for isp, c in counts.items() if c >= min_pair_count]
    if heavy:
        return sorted(heavy, key=lambda isp: (-counts[isp], isp))
    # Ambiguous: single isolated pair(s); report all participants.
    return sorted(counts, key=lambda isp: (-counts[isp], isp))
