"""Overload protection: admission control, load shedding, bounded retry.

The paper's economic argument assumes compliant ISPs stay up under the
very floods they are designed to price out — a spammer's last rational
move is a burst that overwhelms the gateway before accounting can bite.
This module provides the building blocks of the overload layer:

* :class:`TokenBucket` — a virtual-time token bucket bounding the
  sustained admission rate of each ISP (plus a configurable burst);
* :class:`DeferredQueue` — a **bounded** deferred-delivery queue with
  capped exponential-backoff retries; saturation evicts the
  lowest-priority queued message rather than growing without limit;
* :class:`ShedClass` — the shedding priority order: bulk (spam/zombie)
  traffic sheds first, unpaid mail next, paid compliant mail last;
* :class:`ShedAudit` — a bounded audit log so every shed/evict decision
  is attributable after the fact;
* :class:`AdmissionController` — the per-ISP policy combining the above,
  maintaining the *no-lost-accounting* identity
  ``attempts == accepted + shed + bounced + pending``;
* :class:`CircuitBreaker` — closed/open/half-open breaker guarding
  inter-ISP transfer and bank snapshot RPCs so a saturated peer degrades
  service instead of cascading.

Everything is driven by explicit ``now`` arguments (virtual seconds), so
the layer is deterministic and works identically under the discrete-event
engine, the direct-mode driver, and the SMTP gateway.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, Iterator

from ..errors import ConfigError, SimulationError
from ..sim.workload import TrafficKind

__all__ = [
    "OverloadConfig",
    "ShedClass",
    "shed_class_for",
    "TokenBucket",
    "DeferredItem",
    "DeferredQueue",
    "ShedRecord",
    "ShedAudit",
    "AdmissionController",
    "CircuitBreaker",
]


@dataclass(frozen=True)
class OverloadConfig:
    """Tunable parameters of the overload-protection layer.

    Attributes:
        admit_rate: Sustained admissions per second each ISP can process;
            the token bucket's refill rate (the "sustainable load").
        admit_burst: Bucket capacity — how large a burst is absorbed
            without deferring.
        queue_capacity: Hard bound on each ISP's deferred-delivery queue.
            Saturation beyond this sheds (new low-priority mail) or
            evicts (queued mail of lower priority than the arrival).
        retry_base: Delay before a deferred message's first retry.
        retry_backoff: Multiplier applied to the retry delay per attempt.
        retry_max_interval: Cap on the backed-off retry delay.
        max_retries: Delivery attempts before a deferred message is
            terminally bounced.
        shed_audit_cap: Maximum shed/evict/bounce records retained per
            ISP (the log is a bounded ring, never an unbounded list).
        breaker_failure_threshold: Consecutive failures before a circuit
            breaker opens.
        breaker_reset_timeout: Seconds an open breaker waits before
            letting one half-open trial through.
        breaker_backlog_limit: Unacked-frame backlog on a reliable link
            beyond which the transfer breaker counts a failure.
    """

    admit_rate: float = 50.0
    admit_burst: int = 100
    queue_capacity: int = 512
    retry_base: float = 2.0
    retry_backoff: float = 2.0
    retry_max_interval: float = 120.0
    max_retries: int = 4
    shed_audit_cap: int = 256
    breaker_failure_threshold: int = 3
    breaker_reset_timeout: float = 30.0
    breaker_backlog_limit: int = 256

    def __post_init__(self) -> None:
        if self.admit_rate <= 0:
            raise ConfigError("admit_rate must be positive")
        if self.admit_burst < 1:
            raise ConfigError("admit_burst must be at least 1")
        if self.queue_capacity < 0:
            raise ConfigError("queue_capacity must be non-negative")
        if self.retry_base <= 0 or self.retry_backoff < 1.0:
            raise ConfigError("retry_base must be > 0 and retry_backoff >= 1")
        if self.retry_max_interval < self.retry_base:
            raise ConfigError("retry_max_interval must be >= retry_base")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be non-negative")
        if self.shed_audit_cap < 1:
            raise ConfigError("shed_audit_cap must be at least 1")
        if self.breaker_failure_threshold < 1:
            raise ConfigError("breaker_failure_threshold must be at least 1")
        if self.breaker_reset_timeout <= 0:
            raise ConfigError("breaker_reset_timeout must be positive")
        if self.breaker_backlog_limit < 1:
            raise ConfigError("breaker_backlog_limit must be at least 1")

    def retry_delay(self, attempts: int) -> float:
        """The backoff delay before attempt ``attempts + 1``."""
        delay = self.retry_base * (self.retry_backoff ** attempts)
        return min(delay, self.retry_max_interval)


class ShedClass(IntEnum):
    """Shedding priority: lower values shed first.

    The policy mirrors the economics: mail that *pays* (and therefore
    funds the compliant ISP) is the last to be turned away; bulk traffic
    (spam campaigns, zombie bursts) — the very traffic overload protection
    exists to absorb — goes first.
    """

    BULK = 0  # spam / zombie bursts: shed first
    UNPAID = 1  # mail to or from non-compliant ISPs: no payment attaches
    PAID = 2  # paid compliant mail: sheds last


def shed_class_for(kind: TrafficKind, *, paid: bool) -> ShedClass:
    """Classify one send for the shedding policy.

    Args:
        kind: The workload-declared traffic kind.
        paid: Whether the send would carry an e-penny (compliant source
            *and* destination).
    """
    if kind is TrafficKind.SPAM or kind is TrafficKind.ZOMBIE:
        return ShedClass.BULK
    return ShedClass.PAID if paid else ShedClass.UNPAID


class TokenBucket:
    """A deterministic token bucket over virtual time.

    Tokens refill continuously at ``rate`` per second up to ``capacity``;
    :meth:`try_acquire` consumes one if available. All timing is explicit
    (the ``now`` arguments), so behaviour is reproducible under any
    driver.
    """

    __slots__ = ("rate", "capacity", "tokens", "_last")

    def __init__(self, rate: float, capacity: int) -> None:
        if rate <= 0 or capacity < 1:
            raise ConfigError("token bucket needs rate > 0 and capacity >= 1")
        self.rate = rate
        self.capacity = float(capacity)
        self.tokens = float(capacity)
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self.tokens = min(
                self.capacity, self.tokens + (now - self._last) * self.rate
            )
            self._last = now

    def available(self, now: float) -> float:
        """Tokens available at ``now`` (refills as a side effect)."""
        self._refill(now)
        return self.tokens

    def try_acquire(self, now: float, n: int = 1) -> bool:
        """Consume ``n`` tokens if available; ``False`` leaves state intact."""
        self._refill(now)
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False


@dataclass(slots=True)
class DeferredItem:
    """One message held in a deferred-delivery queue.

    ``payload`` is opaque to the queue — the core stores the send tuple,
    the SMTP gateway stores the stamped envelope ingredients. ``attempts``
    counts delivery attempts already consumed (admission + retries);
    ``cancelled`` marks items evicted in place (lazy heap deletion).
    """

    payload: object
    shed_class: ShedClass
    due: float
    seq: int
    attempts: int = 1
    enqueued_at: float = 0.0
    cancelled: bool = False


class DeferredQueue:
    """A bounded retry queue ordered by next-attempt time.

    Eviction (:meth:`evict_lowest`) implements the priority-shedding
    policy: when the queue is full and a higher-class message arrives,
    the lowest-class queued message is bounced to make room. Evicted
    items are tombstoned in the heap and skipped on pop, so eviction is
    O(n) only at shed time (the queue is bounded, so n is small).
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._heap: list[tuple[float, int, DeferredItem]] = []
        self._seq = 0
        self._live = 0
        self.peak_size = 0

    def __len__(self) -> int:
        return self._live

    @property
    def size(self) -> int:
        """Live (non-evicted) items currently queued."""
        return self._live

    def push(self, item: DeferredItem) -> None:
        """Queue ``item`` for retry at ``item.due``; caller checks capacity."""
        self._seq += 1
        item.seq = self._seq
        heapq.heappush(self._heap, (item.due, item.seq, item))
        self._live += 1
        if self._live > self.peak_size:
            self.peak_size = self._live

    def pop_due(self, now: float) -> Iterator[DeferredItem]:
        """Yield (and remove) every live item whose retry time has come."""
        heap = self._heap
        while heap and heap[0][0] <= now:
            _, _, item = heapq.heappop(heap)
            if item.cancelled:
                continue
            self._live -= 1
            yield item

    def evict_lowest(self, below: ShedClass) -> DeferredItem | None:
        """Tombstone and return the lowest-class queued item strictly below
        ``below``, oldest first within a class; ``None`` if no item
        qualifies (the arrival sheds instead)."""
        victim: DeferredItem | None = None
        for _, _, item in self._heap:
            if item.cancelled or item.shed_class >= below:
                continue
            if (
                victim is None
                or item.shed_class < victim.shed_class
                or (item.shed_class == victim.shed_class and item.seq < victim.seq)
            ):
                victim = item
        if victim is not None:
            victim.cancelled = True
            self._live -= 1
        return victim

    def next_due(self) -> float | None:
        """Earliest live retry time, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None


@dataclass(frozen=True, slots=True)
class ShedRecord:
    """One audited overload decision (shed, evict, or bounce)."""

    time: float
    action: str  # "shed" | "evict" | "bounce"
    shed_class: ShedClass
    detail: str


class ShedAudit:
    """A bounded ring of :class:`ShedRecord` plus total counts.

    The ring keeps the *most recent* ``cap`` records — under a sustained
    flood the interesting decisions are the latest ones — while the
    per-action totals stay exact, so reports lose no aggregate signal.
    """

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self.records: list[ShedRecord] = []
        self.total = 0
        self.totals_by_action: dict[str, int] = {}

    def record(
        self, time: float, action: str, shed_class: ShedClass, detail: str
    ) -> None:
        """Append one decision, evicting the oldest past the cap."""
        self.total += 1
        self.totals_by_action[action] = self.totals_by_action.get(action, 0) + 1
        self.records.append(ShedRecord(time, action, shed_class, detail))
        if len(self.records) > self.cap:
            del self.records[0]


class AdmissionController:
    """Per-ISP admission control: token bucket + bounded deferred queue.

    Decisions (:meth:`admit`):

    * ``"accept"`` — a token was available; process the message now.
    * ``"defer"``  — saturated but the queue has (or made) room; the
      caller queues the message via :meth:`defer` and retries later.
    * ``"shed"``   — saturated, queue full, and nothing lower-priority to
      evict; the message is refused (SMTP ``451``), recorded for audit.

    The controller maintains the no-lost-accounting identity checked by
    the chaos monitors::

        attempts == accepted + shed + bounced + pending

    where ``accepted`` counts both immediate and after-defer acceptances
    and ``pending`` is the live deferred-queue size. Shed and bounced
    messages never touched the ledger, so e-penny conservation is
    unaffected by any admission decision.
    """

    def __init__(self, owner: str, config: OverloadConfig) -> None:
        self.owner = owner
        self.config = config
        self.bucket = TokenBucket(config.admit_rate, config.admit_burst)
        self.queue = DeferredQueue(config.queue_capacity)
        self.audit = ShedAudit(config.shed_audit_cap)
        #: Optional hook fired for every terminal bounce — including
        #: evictions inside :meth:`admit`, whose victims the caller never
        #: sees otherwise. The SMTP gateway uses it to file DSN notices.
        self.on_bounce: Callable[[float, DeferredItem, str], None] | None = None
        self.attempts = 0
        self.accepted = 0
        self.accepted_after_defer = 0
        self.shed = 0
        self.bounced = 0
        self.evicted = 0
        self.retries = 0

    # -- admission ---------------------------------------------------------------

    def admit(self, now: float, shed_class: ShedClass) -> str:
        """Decide one *new* message; returns "accept" | "defer" | "shed".

        An ``"accept"`` has consumed a token; a ``"defer"`` has reserved
        queue room (evicting a lower-class item if necessary — the
        eviction is already bounced and audited when this returns); a
        ``"shed"`` is terminal and audited.
        """
        self.attempts += 1
        if self.bucket.try_acquire(now):
            self.accepted += 1
            return "accept"
        if self.queue.size < self.queue.capacity:
            return "defer"
        victim = self.queue.evict_lowest(shed_class)
        if victim is not None:
            self.evicted += 1
            self._bounce(now, victim, "evicted by higher-priority arrival")
            self.audit.record(
                now, "evict", victim.shed_class,
                f"{self.owner}: class {victim.shed_class.name} evicted for "
                f"{shed_class.name} arrival",
            )
            return "defer"
        self.shed += 1
        self.audit.record(
            now, "shed", shed_class,
            f"{self.owner}: queue full ({self.queue.capacity}), "
            f"no lower class to evict",
        )
        return "shed"

    def defer(
        self, now: float, payload: object, shed_class: ShedClass
    ) -> DeferredItem:
        """Queue a message :meth:`admit` answered ``"defer"`` for."""
        item = DeferredItem(
            payload=payload,
            shed_class=shed_class,
            due=now + self.config.retry_delay(0),
            seq=0,
            attempts=1,
            enqueued_at=now,
        )
        self.queue.push(item)
        return item

    # -- retry pump --------------------------------------------------------------

    def pump(self, now: float) -> Iterator[tuple[str, DeferredItem]]:
        """Process due retries; yields ("accept" | "bounce", item) pairs.

        For each yielded ``"accept"`` a token has been consumed and the
        caller must perform the actual delivery; ``"bounce"`` items are
        terminal (already counted and audited). Items that find no token
        but still have retry budget are requeued with backoff internally.
        """
        for item in self.queue.pop_due(now):
            if self.bucket.try_acquire(now):
                self.accepted += 1
                self.accepted_after_defer += 1
                self.retries += 1
                yield "accept", item
            elif item.attempts > self.config.max_retries:
                self._bounce(now, item, "retries exhausted")
                yield "bounce", item
            else:
                self.retries += 1
                item.attempts += 1
                item.due = now + self.config.retry_delay(item.attempts - 1)
                self.queue.push(item)

    def _bounce(self, now: float, item: DeferredItem, reason: str) -> None:
        self.bounced += 1
        self.audit.record(
            now, "bounce", item.shed_class,
            f"{self.owner}: {reason} after {item.attempts} attempt(s)",
        )
        if self.on_bounce is not None:
            self.on_bounce(now, item, reason)

    # -- durable state (crash/restart with a persistent store) -------------------

    def state_dict(
        self, encode: Callable[[object], object] | None = None
    ) -> dict[str, object]:
        """The controller's durable state: queue, bucket, and counters.

        The deferred queue *is* accepted-but-undelivered mail, so it must
        survive a restart for the no-lost-accounting identity to keep
        holding; the counters are the other side of that identity. The
        audit ring is volatile diagnostics and is not persisted.
        ``encode`` maps queued payloads to JSON-compatible values.
        """
        enc = encode if encode is not None else (lambda payload: payload)
        items = sorted(
            (entry for entry in self.queue._heap if not entry[2].cancelled),
            key=lambda entry: (entry[0], entry[1]),
        )
        return {
            "bucket": {"tokens": self.bucket.tokens, "last": self.bucket._last},
            "queue": {
                "seq": self.queue._seq,
                "peak_size": self.queue.peak_size,
                "items": [
                    {
                        "payload": enc(item.payload),
                        "shed_class": int(item.shed_class),
                        "due": item.due,
                        "seq": item.seq,
                        "attempts": item.attempts,
                        "enqueued_at": item.enqueued_at,
                    }
                    for _, _, item in items
                ],
            },
            "counters": {
                "attempts": self.attempts,
                "accepted": self.accepted,
                "accepted_after_defer": self.accepted_after_defer,
                "shed": self.shed,
                "bounced": self.bounced,
                "evicted": self.evicted,
                "retries": self.retries,
            },
        }

    def load_state(
        self,
        state: dict[str, object],
        decode: Callable[[object], object] | None = None,
    ) -> None:
        """Replace queue/bucket/counters with a :meth:`state_dict` journal.

        Items are rebuilt with their original sequence numbers (bypassing
        :meth:`DeferredQueue.push`, which would renumber them) so retry
        order after a restart matches the uninterrupted run exactly.

        Raises:
            SimulationError: if the journal is malformed.
        """
        dec = decode if decode is not None else (lambda payload: payload)
        try:
            queue = DeferredQueue(self.config.queue_capacity)
            entries = []
            max_seq = int(state["queue"]["seq"])
            for blob in state["queue"]["items"]:
                item = DeferredItem(
                    payload=dec(blob["payload"]),
                    shed_class=ShedClass(int(blob["shed_class"])),
                    due=float(blob["due"]),
                    seq=int(blob["seq"]),
                    attempts=int(blob["attempts"]),
                    enqueued_at=float(blob["enqueued_at"]),
                )
                entries.append((item.due, item.seq, item))
            heapq.heapify(entries)
            queue._heap = entries
            queue._seq = max_seq
            queue._live = len(entries)
            queue.peak_size = int(state["queue"]["peak_size"])
            bucket = TokenBucket(self.config.admit_rate, self.config.admit_burst)
            bucket.tokens = float(state["bucket"]["tokens"])
            bucket._last = float(state["bucket"]["last"])
            counters = state["counters"]
            self.attempts = int(counters["attempts"])
            self.accepted = int(counters["accepted"])
            self.accepted_after_defer = int(counters["accepted_after_defer"])
            self.shed = int(counters["shed"])
            self.bounced = int(counters["bounced"])
            self.evicted = int(counters["evicted"])
            self.retries = int(counters["retries"])
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise SimulationError(
                f"{self.owner}: malformed admission journal: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        self.queue = queue
        self.bucket = bucket

    # -- introspection ----------------------------------------------------------

    @property
    def pending(self) -> int:
        """Live deferred messages awaiting retry."""
        return self.queue.size

    @property
    def peak_pending(self) -> int:
        """High-water mark of the deferred queue."""
        return self.queue.peak_size

    def next_due(self) -> float | None:
        """Earliest pending retry time, or ``None``."""
        return self.queue.next_due()

    def accounting_delta(self) -> int:
        """``attempts - (accepted + shed + bounced + pending)``; 0 when no
        admitted message has been lost or double-counted."""
        return self.attempts - (
            self.accepted + self.shed + self.bounced + self.pending
        )


class CircuitBreaker:
    """A closed/open/half-open circuit breaker over virtual time.

    ``record_failure`` past the threshold opens the breaker; while open,
    :meth:`allow` answers ``False`` (counting the short-circuit) until
    ``reset_timeout`` has elapsed, after which exactly one half-open
    trial is let through. A success in half-open closes the breaker; a
    failure re-opens it (and restarts the timeout).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, *, failure_threshold: int, reset_timeout: float) -> None:
        if failure_threshold < 1 or reset_timeout <= 0:
            raise ConfigError(
                "breaker needs failure_threshold >= 1 and reset_timeout > 0"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.times_opened = 0
        self.calls_shorted = 0

    def allow(self, now: float) -> bool:
        """Whether a call may proceed; an open breaker counts the refusal."""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if now - self.opened_at >= self.reset_timeout:
                self.state = self.HALF_OPEN
                return True
            self.calls_shorted += 1
            return False
        # Half-open: one trial is already in flight.
        self.calls_shorted += 1
        return False

    def record_success(self) -> None:
        """The guarded call succeeded; close the breaker."""
        self.state = self.CLOSED
        self.consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        """The guarded call failed; open past the threshold (or in trial)."""
        self.consecutive_failures += 1
        if (
            self.state == self.HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        ):
            if self.state != self.OPEN:
                self.times_opened += 1
            self.state = self.OPEN
            self.opened_at = now
