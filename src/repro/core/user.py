"""Per-user state held by a compliant ISP.

Each user has two purses — real pennies on deposit (``account``) and
e-pennies (``balance``) — plus the daily-limit machinery of §4.1/§5 that
bounds the damage a zombie infection can do.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DailyLimitExceeded, InsufficientBalance, InsufficientFunds

__all__ = ["UserAccount"]


@dataclass(slots=True)
class UserAccount:
    """One user's purses, limit state and lifetime statistics.

    Carries ``__slots__``: deployments hold one instance per simulated
    user and every message touches two of them, so the per-instance
    ``__dict__`` is measurable at million-user scale.
    """

    user_id: int
    account: int  # real pennies on deposit with the ISP
    balance: int  # e-pennies
    daily_limit: int
    sent_today: int = 0
    lifetime_sent: int = 0
    lifetime_received: int = 0
    lifetime_received_paid: int = 0
    limit_warnings: int = 0
    junk_folder: int = 0  # segregated non-compliant messages
    inbox: int = 0  # delivered messages

    # -- purse operations ------------------------------------------------------

    def debit_epennies(self, amount: int) -> None:
        """Remove ``amount`` e-pennies; raises if the balance is short."""
        if amount < 0:
            raise ValueError(f"negative debit {amount}")
        if self.balance < amount:
            raise InsufficientBalance(
                f"user {self.user_id}: balance {self.balance} < {amount}"
            )
        self.balance -= amount

    def credit_epennies(self, amount: int) -> None:
        """Add ``amount`` e-pennies to the balance."""
        if amount < 0:
            raise ValueError(f"negative credit {amount}")
        self.balance += amount

    def debit_pennies(self, amount: int) -> None:
        """Remove real pennies; raises if the account is short."""
        if amount < 0:
            raise ValueError(f"negative debit {amount}")
        if self.account < amount:
            raise InsufficientFunds(
                f"user {self.user_id}: account {self.account} < {amount}"
            )
        self.account -= amount

    def credit_pennies(self, amount: int) -> None:
        """Add real pennies to the account."""
        if amount < 0:
            raise ValueError(f"negative credit {amount}")
        self.account += amount

    # -- daily limit -----------------------------------------------------------

    def check_send_allowed(self) -> None:
        """Raise :class:`DailyLimitExceeded` if today's quota is exhausted.

        Exceeding the limit is the zombie signal of §5: "Exceeding this
        limit blocks further outgoing mail (for that day), and the user is
        sent a warning message to check for viruses."
        """
        if self.sent_today >= self.daily_limit:
            self.limit_warnings += 1
            raise DailyLimitExceeded(
                f"user {self.user_id}: sent {self.sent_today} >= "
                f"limit {self.daily_limit}"
            )

    def note_sent(self) -> None:
        """Record one successful outgoing message."""
        self.sent_today += 1
        self.lifetime_sent += 1

    def note_received(self, *, junk: bool = False, paid: bool = True) -> None:
        """Record one delivered message.

        ``paid`` marks deliveries that carried an e-penny (compliant
        origin); unpaid mail from non-compliant ISPs counts for inbox
        statistics but not for e-penny flow.
        """
        self.lifetime_received += 1
        if paid:
            self.lifetime_received_paid += 1
        if junk:
            self.junk_folder += 1
        else:
            self.inbox += 1

    def reset_daily(self) -> None:
        """Midnight reset of the §4.1 ``sent`` counter."""
        self.sent_today = 0

    @property
    def net_epenny_flow(self) -> int:
        """E-pennies earned minus spent — the user-neutrality statistic.

        Every recorded send is paid (unpaid sends to non-compliant ISPs
        are not counted as sends); only paid receives count as income.
        """
        return self.lifetime_received_paid - self.lifetime_sent
