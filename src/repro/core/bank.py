"""The central bank (§4.3–§4.4).

The bank manages e-pennies *for ISPs only* — "Instead of having the bank
itself manage e-pennies for all individual email users, which is
inefficient, we let the bank manage e-pennies for each compliant ISP and
let each compliant ISP manage e-pennies for its own users."

Responsibilities:

* hold each compliant ISP's real-penny account;
* sell/buy e-pennies to/from ISP pools (with nonce replay protection and
  optionally the toy encryption, mirroring §4.3);
* publish the ``compliant`` directory;
* run reconciliation rounds: collect credit arrays, verify anti-symmetry,
  flag misbehaving ISPs (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import (
    KeyPair,
    NonceRegistry,
    dcr_object,
    generate_keypair,
    ncr_object,
)
from ..errors import InsufficientFunds, NotCompliant, UnknownISP
from .misbehavior import (
    ReconciliationReport,
    infer_suspects,
    verify_credit_matrix,
)

__all__ = ["BuyResult", "Bank"]


@dataclass(frozen=True)
class BuyResult:
    """Outcome of an ISP's e-penny purchase request."""

    accepted: bool
    value: int
    nonce: int


class Bank:
    """The clearinghouse for e-pennies and the compliance auditor.

    Example:
        >>> bank = Bank()
        >>> bank.register_isp(0, initial_account=1000)
        >>> bank.buy_epennies(0, value=300, nonce=1).accepted
        True
        >>> bank.account_balance(0)
        700
    """

    def __init__(self, *, use_crypto: bool = False, key_bits: int = 256,
                 seed: int = 0) -> None:
        self._accounts: dict[int, int] = {}
        self._compliant: dict[int, bool] = {}
        self._nonces: dict[int, NonceRegistry] = {}
        self._seq = 0
        self.reports: list[ReconciliationReport] = []
        self.use_crypto = use_crypto
        self.keys: KeyPair = generate_keypair(key_bits, seed=seed)
        self.buy_requests = 0
        self.sell_requests = 0

    # -- registry -----------------------------------------------------------------

    def register_isp(self, isp_id: int, *, initial_account: int) -> None:
        """Open an account and mark the ISP compliant."""
        if isp_id in self._accounts:
            raise ValueError(f"isp {isp_id} already registered")
        if initial_account < 0:
            raise ValueError("initial_account must be non-negative")
        self._accounts[isp_id] = initial_account
        self._compliant[isp_id] = True
        self._nonces[isp_id] = NonceRegistry()

    def set_compliant(self, isp_id: int, compliant: bool) -> None:
        """Flip an ISP's compliance flag (incremental deployment)."""
        if isp_id not in self._accounts:
            raise UnknownISP(f"isp {isp_id} is not registered")
        self._compliant[isp_id] = compliant

    def compliance_directory(self) -> dict[int, bool]:
        """The published ``compliant`` array (§4): broadcast to all ISPs."""
        return dict(self._compliant)

    def is_compliant(self, isp_id: int) -> bool:
        """Whether ``isp_id`` is registered and currently compliant."""
        return self._compliant.get(isp_id, False)

    def account_balance(self, isp_id: int) -> int:
        """Real pennies in the ISP's bank account."""
        try:
            return self._accounts[isp_id]
        except KeyError:
            raise UnknownISP(f"isp {isp_id} is not registered") from None

    def total_deposits(self) -> int:
        """Sum of all ISP accounts (for conservation audits)."""
        return sum(self._accounts.values())

    # -- durable state (checkpoint / crash recovery) ----------------------------------

    def state_dict(self) -> dict:
        """The bank's durable state as a JSON-compatible dict.

        Covers accounts, the compliance directory, the reconciliation
        sequence number and the replay-protection nonce sets — everything
        a restarted bank needs to keep the money exact and keep rejecting
        replays. Volatile state (reports history, request counters) is
        deliberately excluded: a crash loses it.
        """
        return {
            "accounts": {str(k): v for k, v in sorted(self._accounts.items())},
            "compliant": {str(k): v for k, v in sorted(self._compliant.items())},
            "seq": self._seq,
            "nonces": {
                str(k): sorted(reg._seen)
                for k, reg in sorted(self._nonces.items())
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore durable state written by :meth:`state_dict`, in place."""
        self._accounts = {int(k): int(v) for k, v in state["accounts"].items()}
        self._compliant = {int(k): bool(v) for k, v in state["compliant"].items()}
        self._seq = int(state["seq"])
        self._nonces = {}
        for key, seen in state["nonces"].items():
            registry = NonceRegistry()
            for nonce in seen:
                registry.check_and_record(int(nonce))
            self._nonces[int(key)] = registry

    # -- §4.3 buy / sell -------------------------------------------------------------

    def _check_member(self, isp_id: int) -> None:
        if isp_id not in self._accounts:
            raise UnknownISP(f"isp {isp_id} is not registered")
        if not self._compliant[isp_id]:
            raise NotCompliant(f"isp {isp_id} is not compliant")

    def buy_epennies(self, isp_id: int, *, value: int, nonce: int) -> BuyResult:
        """ISP buys ``value`` e-pennies for its pool with real pennies.

        Replays (reused nonces) raise :class:`ReplayDetected`. A request
        exceeding the account is *rejected*, not partially filled,
        mirroring the paper's accept/reject reply.
        """
        self._check_member(isp_id)
        if value <= 0:
            raise ValueError(f"purchase value must be positive, got {value}")
        self._nonces[isp_id].check_and_record(nonce)
        self.buy_requests += 1
        if self._accounts[isp_id] >= value:
            self._accounts[isp_id] -= value
            return BuyResult(accepted=True, value=value, nonce=nonce)
        return BuyResult(accepted=False, value=value, nonce=nonce)

    def sell_epennies(self, isp_id: int, *, value: int, nonce: int) -> int:
        """ISP sells ``value`` e-pennies from its pool back for real pennies.

        Returns the echoed nonce (the paper's ``sellreply``).
        """
        self._check_member(isp_id)
        if value <= 0:
            raise ValueError(f"sale value must be positive, got {value}")
        self._nonces[isp_id].check_and_record(nonce)
        self.sell_requests += 1
        self._accounts[isp_id] += value
        return nonce

    # -- encrypted message forms (protocol fidelity path) ------------------------------

    def handle_buy_message(self, isp_id: int, ciphertext: bytes) -> bytes:
        """Process an encrypted §4.3 ``buy`` message; returns ``buyreply``."""
        value, nonce = dcr_object(self.keys.private, ciphertext)
        result = self.buy_epennies(isp_id, value=value, nonce=nonce)
        return ncr_object(self.keys.private, [result.nonce, result.accepted])

    def handle_sell_message(self, isp_id: int, ciphertext: bytes) -> bytes:
        """Process an encrypted §4.3 ``sell`` message; returns ``sellreply``."""
        value, nonce = dcr_object(self.keys.private, ciphertext)
        echoed = self.sell_epennies(isp_id, value=value, nonce=nonce)
        return ncr_object(self.keys.private, echoed)

    # -- §4.4 reconciliation --------------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """Sequence number the next reconciliation round will use."""
        return self._seq

    def reconcile(
        self, credit_reports: dict[int, dict[int, int]]
    ) -> ReconciliationReport:
        """Verify one round of collected credit arrays.

        Args:
            credit_reports: ``{isp_id: credit_array}`` gathered by a
                snapshot coordinator from every compliant ISP.

        Returns:
            The :class:`ReconciliationReport`, also appended to
            :attr:`reports`. Settlement cost fields count the bulk
            operations this round needed (E6): one request plus one reply
            per ISP, plus one comparison per pair.
        """
        for isp_id in credit_reports:
            self._check_member(isp_id)
        n = len(credit_reports)
        inconsistent = verify_credit_matrix(credit_reports)
        report = ReconciliationReport(
            round_seq=self._seq,
            isps_polled=n,
            pairs_checked=n * (n - 1) // 2,
            inconsistent=inconsistent,
            suspects=infer_suspects(inconsistent),
            settlement_operations=2 * n + n * (n - 1) // 2,
            settlement_bytes=sum(
                4 * (len(arr) + 1) for arr in credit_reports.values()
            ),
        )
        self.reports.append(report)
        self._seq += 1
        return report

    def stream_reconciler(
        self,
        *,
        max_lag: int = 1,
        totals_sources=None,
        strict: bool = True,
        tracer=None,
        on_report=None,
    ) -> "StreamingReconciler":
        """A barrier-free verifier bound to this bank's directory.

        The returned :class:`~repro.core.reconcile.StreamingReconciler`
        accepts per-pair credit deltas from the currently-compliant
        ISPs; each window it closes appends its
        :class:`ReconciliationReport` to :attr:`reports` and advances
        :attr:`next_seq`, exactly as a batch :meth:`reconcile` round
        would — the two paths share one report history.
        """
        from .reconcile import StreamingReconciler

        def _record(report: ReconciliationReport, meta: dict) -> None:
            self.reports.append(report)
            self._seq = max(self._seq, report.round_seq + 1)
            if on_report is not None:
                on_report(report, meta)

        return StreamingReconciler(
            [isp for isp, ok in self._compliant.items() if ok],
            max_lag=max_lag,
            totals_sources=totals_sources,
            strict=strict,
            tracer=tracer,
            on_report=_record,
        )
