"""Configuration for the deployable Zmail system."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import ConfigError
from ..sim.clock import DAY, MONTH

__all__ = ["NonCompliantMailPolicy", "ZmailConfig"]


class NonCompliantMailPolicy(Enum):
    """What a compliant ISP does with mail arriving from a non-compliant ISP.

    §5 (Incremental Deployment): "a user in a compliant ISP may decide to
    segregate or discard email from non-compliant ISPs, or require any
    email from a non-compliant ISP to pass a spam filter."
    """

    DELIVER = "deliver"  # deliver normally (no payment attaches)
    FILTER = "filter"  # pass through a spam filter first
    SEGREGATE = "segregate"  # deliver to a junk folder
    DISCARD = "discard"  # drop it


@dataclass(frozen=True)
class ZmailConfig:
    """Tunable parameters of a Zmail deployment.

    Attributes:
        default_daily_limit: Per-user cap on outgoing messages per day; the
            zombie-containment knob of §4.1/§5.
        default_user_balance: e-pennies a new user starts with (the paper's
            "initial balances with their ISPs to buffer the fluctuations").
        default_user_account: Real pennies a new user deposits.
        initial_pool: e-pennies in a new ISP's sellable pool (``avail``).
        minavail / maxavail: Pool thresholds triggering bank buy/sell (§4.3).
        initial_bank_account: Real pennies each ISP holds at the bank.
        snapshot_quiesce_seconds: The §4.4 stop-sending window ("say 10
            minutes") used by the timeout snapshot method.
        reconciliation_period: How often the bank gathers credit arrays
            ("once a week or once a month").
        noncompliant_policy: Default handling of non-compliant mail.
        auto_topup_amount: When a send is blocked on an empty e-penny
            balance, the ISP automatically sells the user this many
            e-pennies from its pool against their real-penny deposit
            (0 disables). This is the paper's "normal user ... can easily
            solve this problem" convenience made concrete.
        use_crypto: Encrypt bank traffic with the toy RSA substrate. Off by
            default so million-message economics runs stay fast; protocol
            fidelity tests switch it on.
    """

    default_daily_limit: int = 200
    default_user_balance: int = 100
    default_user_account: int = 500
    initial_pool: int = 10_000
    minavail: int = 2_000
    maxavail: int = 50_000
    initial_bank_account: int = 1_000_000
    snapshot_quiesce_seconds: float = 600.0  # the paper's 10 minutes
    reconciliation_period: float = MONTH
    noncompliant_policy: NonCompliantMailPolicy = NonCompliantMailPolicy.DELIVER
    auto_topup_amount: int = 50
    use_crypto: bool = False

    def __post_init__(self) -> None:
        if self.default_daily_limit < 0:
            raise ConfigError("default_daily_limit must be non-negative")
        if self.default_user_balance < 0 or self.default_user_account < 0:
            raise ConfigError("initial user funds must be non-negative")
        if not 0 <= self.minavail <= self.maxavail:
            raise ConfigError("need 0 <= minavail <= maxavail")
        if self.initial_pool < 0 or self.initial_bank_account < 0:
            raise ConfigError("initial pool and bank account must be non-negative")
        if self.snapshot_quiesce_seconds <= 0:
            raise ConfigError("snapshot_quiesce_seconds must be positive")
        if self.auto_topup_amount < 0:
            raise ConfigError("auto_topup_amount must be non-negative")
        if self.reconciliation_period <= DAY / 24:
            raise ConfigError("reconciliation_period is unreasonably short")
