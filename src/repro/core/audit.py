"""The bank's economic audit: catching e-penny *minting* (§4.4 extended).

Credit-array anti-symmetry catches misreported message counts, but the
deeper attack is an ISP quietly minting e-pennies for its own users —
inflating balances or its pool without buying from the bank. The bank
cannot see ISP-internal books, yet it holds enough to bound them:

* the ISP's cumulative **purchases** and **sales** of e-pennies (its own
  §4.3 transactions), and
* the ISP's **net mail inflow** per reconciliation period, derived from
  the very credit arrays it already collects: an ISP that reported
  ``credit[j]`` sent that many more messages to ``j`` than it received,
  so its users' aggregate balance change from mail is
  ``-sum(credit)`` e-pennies.

Solvency bound: at any audit point, an honest ISP's cumulative sales
cannot exceed ``initial_pool + initial_user_balances + purchases + net
mail inflow`` — every e-penny it ever sold had to come from somewhere.
An ISP exceeding the bound has created e-pennies from nothing.
:class:`EconomicAuditor` accumulates these flows across reconciliation
rounds and flags violators, completing the paper's "the bank may make
further investigation" into an actual algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IspPosition", "MintingAlert", "EconomicAuditor"]


@dataclass
class IspPosition:
    """The bank's running view of one ISP's e-penny flows."""

    isp_id: int
    initial_endowment: int  # pool + user balances at registration
    purchased: int = 0  # e-pennies bought from the bank
    sold: int = 0  # e-pennies sold to the bank
    net_mail_inflow: int = 0  # from credit arrays, cumulative

    @property
    def ceiling(self) -> int:
        """Most the ISP could legitimately have sold by now."""
        return self.initial_endowment + self.purchased + self.net_mail_inflow

    @property
    def minted(self) -> int:
        """E-pennies sold beyond any legitimate source (0 if honest)."""
        return max(0, self.sold - self.ceiling)


@dataclass(frozen=True)
class MintingAlert:
    """One ISP flagged for selling more e-pennies than it could hold."""

    isp_id: int
    sold: int
    ceiling: int

    @property
    def excess(self) -> int:
        """How many e-pennies appeared from nothing."""
        return self.sold - self.ceiling


class EconomicAuditor:
    """Accumulates per-ISP flows across rounds and flags minting.

    Example:
        >>> auditor = EconomicAuditor()
        >>> auditor.register_isp(0, initial_endowment=1000)
        >>> auditor.note_sale(0, 600)
        >>> auditor.note_sale(0, 600)
        >>> [a.isp_id for a in auditor.check()]
        [0]
    """

    def __init__(self) -> None:
        self._positions: dict[int, IspPosition] = {}
        self.alerts: list[MintingAlert] = []

    # -- registration and flow recording ------------------------------------------

    def register_isp(self, isp_id: int, *, initial_endowment: int) -> None:
        """Start tracking an ISP from its known starting stock."""
        if isp_id in self._positions:
            raise ValueError(f"isp {isp_id} already tracked")
        self._positions[isp_id] = IspPosition(
            isp_id=isp_id, initial_endowment=initial_endowment
        )

    def position(self, isp_id: int) -> IspPosition:
        """The running position for ``isp_id``."""
        return self._positions[isp_id]

    def note_purchase(self, isp_id: int, value: int) -> None:
        """The ISP bought ``value`` e-pennies from the bank."""
        self._positions[isp_id].purchased += value

    def note_sale(self, isp_id: int, value: int) -> None:
        """The ISP sold ``value`` e-pennies to the bank."""
        self._positions[isp_id].sold += value

    def ingest_credit_reports(
        self, credit_reports: dict[int, dict[int, int]]
    ) -> None:
        """Fold one reconciliation round's arrays into net inflows.

        ``credit[j] > 0`` means the ISP sent more than it received from
        ``j``: a net outflow of e-pennies. Inflow is thus ``-sum``.
        """
        for isp_id, credit in credit_reports.items():
            if isp_id in self._positions:
                self._positions[isp_id].net_mail_inflow -= sum(credit.values())

    # -- the audit ------------------------------------------------------------------

    def check(self) -> list[MintingAlert]:
        """Flag every ISP currently violating the solvency bound."""
        fresh = []
        for position in self._positions.values():
            if position.minted > 0:
                alert = MintingAlert(
                    isp_id=position.isp_id,
                    sold=position.sold,
                    ceiling=position.ceiling,
                )
                fresh.append(alert)
        self.alerts = fresh
        return fresh

    def all_clear(self) -> bool:
        """Whether no ISP violates the bound."""
        return not self.check()
