"""Mailing lists under Zmail (§5).

A list distributor pays one e-penny per subscriber per post — ruinous for
volunteer lists — so the paper defines an automated acknowledgment: the
receiving ISP (or client) generates a special ack email returning the
e-penny to the distributor, processed automatically rather than delivered
to a human inbox. A side benefit is hygiene: subscribers who never
acknowledge are detectably stale and can be pruned.

:class:`ListServer` implements the distributor: the subscriber database,
per-post token issuing, ack matching, economics accounting and the
pruning policy. It drives any :class:`~repro.core.protocol.ZmailNetwork`
(the distributor is just a user with a big send limit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.workload import Address, TrafficKind
from .protocol import ZmailNetwork
from .transfer import SendStatus

__all__ = ["Subscriber", "PostOutcome", "ListServer"]


@dataclass
class Subscriber:
    """One list member and their acknowledgment history."""

    address: Address
    acks_sent: int = 0
    posts_received: int = 0
    consecutive_missed: int = 0

    @property
    def ack_rate(self) -> float:
        """Fraction of received posts this subscriber acknowledged."""
        if self.posts_received == 0:
            return 0.0
        return self.acks_sent / self.posts_received


@dataclass
class PostOutcome:
    """Economics of one list distribution."""

    post_id: int
    recipients: int
    sent_ok: int
    blocked: int
    acked: int = 0
    pruned: list[Address] = field(default_factory=list)

    @property
    def net_epenny_cost(self) -> int:
        """Distributor's out-of-pocket cost after acknowledgments."""
        return self.sent_ok - self.acked


class ListServer:
    """A mailing-list distributor on a Zmail network.

    Args:
        network: The deployment the list lives on.
        distributor: The list's own address (must be on a compliant ISP).
        prune_after_misses: Remove subscribers after this many consecutive
            unacknowledged posts (0 disables pruning).
    """

    def __init__(
        self,
        network: ZmailNetwork,
        distributor: Address,
        *,
        prune_after_misses: int = 3,
    ) -> None:
        self.network = network
        self.distributor = distributor
        self.prune_after_misses = prune_after_misses
        self._subscribers: dict[Address, Subscriber] = {}
        self.posts: list[PostOutcome] = []
        self._next_post_id = 0

    # -- subscriber database ----------------------------------------------------------

    def subscribe(self, address: Address) -> None:
        """Add a subscriber (idempotent)."""
        self._subscribers.setdefault(address, Subscriber(address))

    def unsubscribe(self, address: Address) -> None:
        """Remove a subscriber if present."""
        self._subscribers.pop(address, None)

    def subscribers(self) -> list[Address]:
        """Current membership, sorted."""
        return sorted(self._subscribers)

    def __len__(self) -> int:
        return len(self._subscribers)

    # -- distribution ------------------------------------------------------------------

    def post(self, *, ack_probability_fn=None) -> PostOutcome:
        """Distribute one message to every subscriber.

        Args:
            ack_probability_fn: ``fn(address) -> bool`` deciding whether
                that subscriber's ISP/client acknowledges (models stale
                addresses and non-compliant receivers, who cannot return
                e-pennies). Defaults to everyone-acknowledges.

        The distributor pays one e-penny per successfully sent copy; each
        acknowledging subscriber triggers an automated ack email paying
        one e-penny back. Ack emails are Zmail emails like any other —
        they cost the *subscriber's* balance one e-penny and return it to
        the distributor — so the end state is exactly "the distributor
        posts for free, subscribers pay one e-penny per post received",
        the §5 economics.
        """
        outcome = PostOutcome(
            post_id=self._next_post_id,
            recipients=len(self._subscribers),
            sent_ok=0,
            blocked=0,
        )
        self._next_post_id += 1

        for address, subscriber in sorted(self._subscribers.items()):
            receipt = self.network.send(
                self.distributor, address, TrafficKind.MAILING_LIST
            )
            if receipt.status in (
                SendStatus.SENT_PAID,
                SendStatus.DELIVERED_LOCAL,
            ):
                outcome.sent_ok += 1
                subscriber.posts_received += 1
                acked = (
                    ack_probability_fn(address)
                    if ack_probability_fn is not None
                    else True
                )
                if acked and self._send_ack(address):
                    outcome.acked += 1
                    subscriber.acks_sent += 1
                    subscriber.consecutive_missed = 0
                else:
                    subscriber.consecutive_missed += 1
            elif receipt.status is SendStatus.SENT_UNPAID:
                # Non-compliant subscriber ISP: free to send, but no ack
                # mechanism exists there — still counts as a missed ack.
                outcome.sent_ok += 1
                subscriber.posts_received += 1
                subscriber.consecutive_missed += 1
            else:
                outcome.blocked += 1

        outcome.pruned = self._prune()
        self.posts.append(outcome)
        return outcome

    def _send_ack(self, subscriber: Address) -> bool:
        """The subscriber's ISP returns the e-penny via an ack email."""
        receipt = self.network.send(subscriber, self.distributor, TrafficKind.ACK)
        return receipt.status in (SendStatus.SENT_PAID, SendStatus.DELIVERED_LOCAL)

    def _prune(self) -> list[Address]:
        if self.prune_after_misses <= 0:
            return []
        stale = [
            address
            for address, sub in self._subscribers.items()
            if sub.consecutive_missed >= self.prune_after_misses
        ]
        for address in stale:
            del self._subscribers[address]
        return sorted(stale)

    # -- reporting ---------------------------------------------------------------------

    def total_net_cost(self) -> int:
        """Distributor's cumulative e-penny cost across all posts."""
        return sum(p.net_epenny_cost for p in self.posts)
