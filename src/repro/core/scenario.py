"""Declarative scenario runner: whole simulations from one spec.

The benchmark harness and examples all follow the same shape — build a
deployment, merge workloads, schedule reconciliations and midnight work,
run, audit, summarise. :class:`Scenario` captures that shape as data so a
downstream user writes::

    scenario = Scenario(
        n_isps=4, users_per_isp=20,
        duration=10 * DAY,
        normal_rate_per_day=8.0,
        spammers=[SpammerSpec(Address(3, 0), volume=5000, war_chest=100)],
        zombies=[ZombieSpec(Address(1, 7), rate_per_hour=200.0,
                            start=DAY, end=2 * DAY)],
        reconcile_every=5 * DAY,
    )
    result = scenario.run()

and gets a :class:`ScenarioResult` with message accounting, per-class
delivery, detection outcomes, reconciliation reports and the conservation
audit — everything EXPERIMENTS.md tables are made of.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from ..obs.manifest import accounting_digest
from ..sim.clock import DAY
from ..sim.rng import SeededStreams
from ..sim.workload import (
    Address,
    FloodSpec,
    FloodWorkload,
    NormalUserWorkload,
    SpamCampaignWorkload,
    TrafficKind,
    ZombieBurstWorkload,
    merge_workloads,
)
from .config import ZmailConfig
from .misbehavior import ReconciliationReport
from .protocol import ZmailNetwork
from .zombie import ZombieDetection, ZombieMonitor

__all__ = ["SpammerSpec", "ZombieSpec", "Scenario", "ScenarioResult"]


@dataclass(frozen=True)
class SpammerSpec:
    """One spam campaign in a scenario."""

    address: Address
    volume: int
    war_chest: int = 0  # e-pennies granted up front
    start: float = 0.0
    duration: float = DAY


@dataclass(frozen=True)
class ZombieSpec:
    """One zombie outbreak in a scenario."""

    address: Address
    rate_per_hour: float
    start: float
    end: float


@dataclass
class ScenarioResult:
    """Everything a scenario run produced."""

    network: ZmailNetwork
    duration: float
    sends_attempted: int
    delivered: int
    blocked_balance: int
    blocked_limit: int
    junked: int
    discarded: int
    spam_delivered: int
    zombie_detections: list[ZombieDetection]
    reconciliations: list[ReconciliationReport]
    conserved: bool
    # Accounting digest after every reconciliation cut (direct and
    # columnar modes; empty in engine modes, whose midnight/reconcile
    # ordering at a shared boundary legitimately differs mid-cut). Kept
    # out of summary() so engine-mode summaries stay mode-invariant.
    cut_digests: list[str] = field(default_factory=list)

    @property
    def all_reconciliations_consistent(self) -> bool:
        """Whether every §4.4 round verified cleanly."""
        return all(r.consistent for r in self.reconciliations)

    def summary(self) -> dict[str, object]:
        """A flat dict for reports and experiment tables."""
        return {
            "sends_attempted": self.sends_attempted,
            "delivered": self.delivered,
            "blocked_balance": self.blocked_balance,
            "blocked_limit": self.blocked_limit,
            "junked": self.junked,
            "spam_delivered": self.spam_delivered,
            "zombies_detected": len(self.zombie_detections),
            "reconciliation_rounds": len(self.reconciliations),
            "all_consistent": self.all_reconciliations_consistent,
            "conserved": self.conserved,
        }


@dataclass
class Scenario:
    """A complete simulation specification (direct mode).

    Attributes:
        n_isps / users_per_isp / compliant / config / seed: Deployment
            parameters, as :class:`~repro.core.protocol.ZmailNetwork`.
        duration: Virtual length of the run in seconds.
        normal_rate_per_day: Per-user legitimate send rate (0 disables).
        spammers / zombies: Adversarial actors to inject.
        reconcile_every: Period between §4.4 rounds (0 disables; a final
            round always runs at the end).
    """

    n_isps: int = 3
    users_per_isp: int = 10
    compliant: list[bool] | None = None
    config: ZmailConfig | None = None
    seed: int = 0
    duration: float = 5 * DAY
    normal_rate_per_day: float = 8.0
    spammers: list[SpammerSpec] = field(default_factory=list)
    zombies: list[ZombieSpec] = field(default_factory=list)
    # Flood bursts as real traffic on every executor (direct, engine,
    # columnar, cluster) — the scenario compiler lowers overload
    # profiles here. Distinct from the chaos harness's flood_requests,
    # which injects floods only into ChaosDeployment campaigns.
    floods: list[FloodSpec] = field(default_factory=list)
    reconcile_every: float = 0.0
    # Engine mode: letters travel a FIFO latency network and
    # reconciliation uses the marker snapshot on virtual time.
    engine_mode: bool = False
    # Engine mode only: pull sends lazily from the workload stream (the
    # fast path) instead of materializing one heap event per message.
    # Both settings produce identical results for the same seed.
    engine_streaming: bool = True
    # Columnar mode: direct-mode semantics executed by the vectorized
    # struct-of-arrays batch executor (repro.columnar). Requires numpy
    # and an all-compliant deployment; produces accounting bit-identical
    # to direct mode (tested and benchmarked). Mutually exclusive with
    # engine_mode.
    columnar: bool = False
    link: object | None = None  # sim.LinkSpec; object to avoid hard import
    # Observability (repro.obs): an optional TraceRecorder threaded into
    # the deployment (every ledger event is emitted through it) and an
    # optional SpanRegistry for wall-clock phase timing. Both default to
    # off; tracing must not change any protocol outcome (tested).
    tracer: object | None = None
    spans: object | None = None

    def build_network(self, engine=None) -> ZmailNetwork:
        """The deployment this scenario runs on (exposed for customisation)."""
        return ZmailNetwork(
            n_isps=self.n_isps,
            users_per_isp=self.users_per_isp,
            compliant=self.compliant,
            config=self.config,
            seed=self.seed,
            engine=engine,
            link=self.link,  # type: ignore[arg-type]
            tracer=self.tracer,  # type: ignore[arg-type]
            spans=self.spans,  # type: ignore[arg-type]
        )

    def workload_streams(
        self,
        streams: SeededStreams,
        *,
        sender_isps: set[int] | frozenset[int] | None = None,
    ):
        """The scenario's request iterators, optionally filtered by sender.

        ``sender_isps`` restricts the output to requests whose *sender*
        is homed at one of the given ISPs — the cluster runtime's shard
        filter. Filtering is replication-safe: every shard builds the
        same streams from the same seed, so per-name RNG consumption is
        identical everywhere; the normal workload is filtered
        per-request (its per-sender contact streams are independent),
        while spam/zombie streams for foreign actors are skipped
        entirely (each spec has its own spawned stream).
        """
        keep = sender_isps
        iterators = []
        if self.normal_rate_per_day > 0:
            normal = NormalUserWorkload(
                n_isps=self.n_isps,
                users_per_isp=self.users_per_isp,
                rate_per_day=self.normal_rate_per_day,
                streams=streams,
            ).generate(self.duration)
            if keep is not None:
                normal = (r for r in normal if r.sender.isp in keep)
            iterators.append(normal)
        for index, spec in enumerate(self.spammers):
            spawned = streams.spawn(f"spam{index}")
            if keep is not None and spec.address.isp not in keep:
                continue
            iterators.append(
                SpamCampaignWorkload(
                    spammer=spec.address,
                    n_isps=self.n_isps,
                    users_per_isp=self.users_per_isp,
                    volume=spec.volume,
                    start=spec.start,
                    duration=spec.duration,
                    streams=spawned,
                ).generate()
            )
        for index, spec in enumerate(self.zombies):
            spawned = streams.spawn(f"zombie{index}")
            if keep is not None and spec.address.isp not in keep:
                continue
            iterators.append(
                ZombieBurstWorkload(
                    zombie=spec.address,
                    n_isps=self.n_isps,
                    users_per_isp=self.users_per_isp,
                    rate_per_hour=spec.rate_per_hour,
                    start=spec.start,
                    end=spec.end,
                    streams=spawned,
                ).generate()
            )
        for index, spec in enumerate(self.floods):
            spawned = streams.spawn(f"flood{index}")
            if keep is not None and spec.attacker_isp not in keep:
                continue
            iterators.append(
                FloodWorkload(
                    spec=spec,
                    n_isps=self.n_isps,
                    users_per_isp=self.users_per_isp,
                    streams=spawned,
                    name=f"flood{index}",
                ).generate()
            )
        return iterators

    # Backwards-compatible private alias (pre-cluster callers).
    def _workload_streams(self, streams: SeededStreams):
        return self.workload_streams(streams)

    def workload_column_streams(self, streams: SeededStreams):
        """The scenario's traffic as ``(kind, column-chunk iterator)`` pairs.

        The mirror of :meth:`workload_streams` for the columnar executor:
        same workload constructors, same stream names and spawns, so the
        RNG draws — and therefore the traffic — are identical to the
        object path by construction.
        """
        column_streams = []
        if self.normal_rate_per_day > 0:
            normal = NormalUserWorkload(
                n_isps=self.n_isps,
                users_per_isp=self.users_per_isp,
                rate_per_day=self.normal_rate_per_day,
                streams=streams,
            )
            column_streams.append(
                (TrafficKind.NORMAL, normal.generate_columns(self.duration))
            )
        for index, spec in enumerate(self.spammers):
            spawned = streams.spawn(f"spam{index}")
            workload = SpamCampaignWorkload(
                spammer=spec.address,
                n_isps=self.n_isps,
                users_per_isp=self.users_per_isp,
                volume=spec.volume,
                start=spec.start,
                duration=spec.duration,
                streams=spawned,
            )
            column_streams.append((TrafficKind.SPAM, workload.generate_columns()))
        for index, spec in enumerate(self.zombies):
            spawned = streams.spawn(f"zombie{index}")
            workload = ZombieBurstWorkload(
                zombie=spec.address,
                n_isps=self.n_isps,
                users_per_isp=self.users_per_isp,
                rate_per_hour=spec.rate_per_hour,
                start=spec.start,
                end=spec.end,
                streams=spawned,
            )
            column_streams.append(
                (TrafficKind.ZOMBIE, workload.generate_columns())
            )
        for index, spec in enumerate(self.floods):
            spawned = streams.spawn(f"flood{index}")
            workload = FloodWorkload(
                spec=spec,
                n_isps=self.n_isps,
                users_per_isp=self.users_per_isp,
                streams=spawned,
                name=f"flood{index}",
            )
            column_streams.append(
                (TrafficKind(spec.kind), workload.generate_columns())
            )
        return column_streams

    def run(self) -> ScenarioResult:
        """Execute the scenario and collect the result."""
        if self.columnar:
            if self.engine_mode:
                raise SimulationError(
                    "columnar and engine modes are mutually exclusive"
                )
            from ..columnar.executor import run_columnar

            return run_columnar(self)
        if self.engine_mode:
            return self._run_engine()
        network = self.build_network()
        monitor = ZombieMonitor(network)
        for spec in self.spammers:
            if spec.war_chest:
                network.fund_user(spec.address, epennies=spec.war_chest)

        streams = SeededStreams(self.seed)
        requests = merge_workloads(*self._workload_streams(streams))

        reconciliations: list[ReconciliationReport] = []
        cut_digests: list[str] = []
        next_reconcile = (
            self.reconcile_every if self.reconcile_every > 0 else None
        )
        attempted = 0
        with network.spans.span("workload.batch"):
            for request in requests:
                if next_reconcile is not None and request.time >= next_reconcile:
                    reconciliations.append(network.reconcile("direct"))
                    cut_digests.append(accounting_digest(network))
                    next_reconcile += self.reconcile_every
                network.note_time(request.time)
                network.send(request.sender, request.recipient, request.kind)
                attempted += 1
        network.note_time(self.duration)
        reconciliations.append(network.reconcile("direct"))
        cut_digests.append(accounting_digest(network))
        monitor.poll()
        result = self._collect(network, monitor, attempted, reconciliations)
        result.cut_digests = cut_digests
        return result

    def _run_engine(self) -> ScenarioResult:
        from ..sim.engine import Engine

        engine = Engine(spans=self.spans)  # type: ignore[arg-type]
        network = self.build_network(engine=engine)
        monitor = ZombieMonitor(network)
        for spec in self.spammers:
            if spec.war_chest:
                network.fund_user(spec.address, epennies=spec.war_chest)

        streams = SeededStreams(self.seed)
        requests = merge_workloads(*self._workload_streams(streams))
        # The network tallies attempts itself (workload_attempted), so the
        # streaming fast path needs no counting wrapper around the (hot)
        # request iterator and never holds the workload in memory.
        network.run_workload(requests, streaming=self.engine_streaming)
        if self.reconcile_every > 0:
            t = self.reconcile_every
            while t < self.duration:
                engine.schedule_at(
                    t, lambda: network.reconcile("marker"), label="reconcile"
                )
                t += self.reconcile_every
        # Bounded runs: run_workload arms a perpetual midnight chain, so
        # an unbounded engine.run() would never return. One virtual day of
        # slack drains in-flight letters and completes the closing round.
        engine.run(until=self.duration)
        network.reconcile("marker")
        # The workload is over: cancel the perpetual midnight chain so the
        # drain window below only delivers in-flight letters. Letting it
        # fire would rebalance pools for a day the direct path never
        # simulates, making cross-mode accounting diverge.
        if network.midnight_handle is not None:
            network.midnight_handle.cancel()
        engine.run(until=self.duration + DAY)
        monitor.poll()
        return self._collect(
            network,
            monitor,
            network.workload_attempted,
            list(network.bank.reports),
        )

    def _collect(self, network, monitor, attempted, reconciliations):
        counters = network.metrics.snapshot()["counters"]
        junked = sum(
            isp.stats.junked for isp in network.compliant_isps().values()
        )
        discarded = sum(
            isp.stats.discarded for isp in network.compliant_isps().values()
        )
        return ScenarioResult(
            network=network,
            duration=self.duration,
            sends_attempted=attempted,
            delivered=counters.get("deliver.delivered", 0)
            + counters.get("send.delivered_local", 0),
            blocked_balance=counters.get("send.blocked_balance", 0),
            blocked_limit=counters.get("send.blocked_limit", 0),
            junked=junked,
            discarded=discarded,
            spam_delivered=counters.get("deliver.kind.spam", 0),
            zombie_detections=list(monitor.detections),
            reconciliations=reconciliations,
            conserved=network.total_value() == network.expected_total_value(),
        )
