"""Zombie and email-virus containment (§4.1, §5).

The daily ``limit`` bounds the e-pennies a compromised machine can burn,
and *hitting* the limit is itself the detection signal: "Exceeding this
limit blocks further outgoing mail (for that day), and the user is sent a
warning message to check for viruses."

:class:`ZombieMonitor` watches a deployment's limit-warning logs and
turns them into detection reports with latency and liability statistics,
quantifying the paper's claim that Zmail "provides a new mechanism for
detecting, limiting, and disinfecting zombie PCs".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.workload import Address
from .protocol import ZmailNetwork

__all__ = ["ZombieDetection", "ZombieMonitor", "warning_message"]


@dataclass(frozen=True)
class ZombieDetection:
    """One user flagged by the daily-limit mechanism."""

    address: Address
    messages_before_block: int
    daily_limit: int

    @property
    def liability_epennies(self) -> int:
        """Worst-case e-pennies the infection cost the user that day.

        Bounded by the limit — exactly the §5 point: "limiting the user's
        liability for the e-penny cost of virus-sent email".
        """
        return min(self.messages_before_block, self.daily_limit)


@dataclass
class ZombieMonitor:
    """Collects limit-warning events from every compliant ISP."""

    network: ZmailNetwork
    detections: list[ZombieDetection] = field(default_factory=list)
    _seen: set[Address] = field(default_factory=set)

    def poll(self) -> list[ZombieDetection]:
        """Sweep ISP warning logs; returns newly detected suspects."""
        fresh: list[ZombieDetection] = []
        for isp_id, isp in sorted(self.network.compliant_isps().items()):
            for user_id in isp.zombie_suspects():
                address = Address(isp_id, user_id)
                if address in self._seen:
                    continue
                self._seen.add(address)
                user = isp.ledger.user(user_id)
                detection = ZombieDetection(
                    address=address,
                    messages_before_block=user.sent_today,
                    daily_limit=user.daily_limit,
                )
                fresh.append(detection)
                self.detections.append(detection)
        return fresh

    def detected(self, address: Address) -> bool:
        """Whether ``address`` has been flagged at any point."""
        return address in self._seen

    def total_bounded_liability(self) -> int:
        """Sum of per-detection liability bounds, in e-pennies."""
        return sum(d.liability_epennies for d in self.detections)


def warning_message(detection: ZombieDetection):
    """The §5 warning email: "the user is sent a warning message to
    check for viruses."

    Returns a :class:`~repro.smtp.message.MailMessage` from the ISP's
    postmaster to the flagged user, ready for local delivery. Imported
    lazily to keep :mod:`repro.core` free of an SMTP dependency on the
    hot paths.
    """
    from ..smtp.address import from_sim_address
    from ..smtp.message import MailMessage

    user_addr = str(from_sim_address(detection.address))
    postmaster = f"postmaster@isp{detection.address.isp}.example"
    body = (
        f"Your account sent {detection.messages_before_block} messages "
        f"today and reached its daily limit of {detection.daily_limit}.\n"
        "Further outgoing mail is blocked until tomorrow.\n\n"
        "If you did not send this mail, your computer may be infected "
        "with a virus; please scan it before requesting a limit reset.\n"
        f"Maximum e-penny liability today: "
        f"{detection.liability_epennies} e-pennies."
    )
    return MailMessage.compose(
        sender=postmaster,
        recipient=user_addr,
        subject="Warning: daily sending limit reached",
        body=body,
    )
