"""Checkpoint and restore for Zmail deployments.

Long-running simulations (and any real deployment) need durable state:
an ISP's ledger and credit arrays, the bank's accounts, and the users'
purses *are* the money. This module serialises a
:class:`~repro.core.protocol.ZmailNetwork` to a plain JSON-compatible
dict and restores an equivalent deployment from it, preserving every
balance, counter and compliance flag — verified by the test suite's
conservation audits across a save/load cycle.

In-flight engine-mode letters are not checkpointed (a real system drains
or journals its queues before snapshotting state); ``checkpoint`` refuses
to run while paid letters are in flight so no money can be lost.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import SimulationError
from .config import NonCompliantMailPolicy, ZmailConfig
from .isp import CompliantISP
from .protocol import ZmailNetwork

__all__ = ["checkpoint", "restore", "dumps", "loads", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def checkpoint(network: ZmailNetwork) -> dict[str, Any]:
    """Serialise a deployment to a JSON-compatible dict.

    Raises:
        SimulationError: if paid letters are still in flight (engine
            mode) — drain the engine first.
    """
    if network.paid_letters_in_flight:
        raise SimulationError(
            f"{network.paid_letters_in_flight} paid letters in flight; "
            "run the engine to quiescence before checkpointing"
        )
    config = network.config
    state: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "n_isps": network.n_isps,
        "users_per_isp": network.users_per_isp,
        "external_deposit": network._external_deposit,
        "config": {
            "default_daily_limit": config.default_daily_limit,
            "default_user_balance": config.default_user_balance,
            "default_user_account": config.default_user_account,
            "initial_pool": config.initial_pool,
            "minavail": config.minavail,
            "maxavail": config.maxavail,
            "initial_bank_account": config.initial_bank_account,
            "snapshot_quiesce_seconds": config.snapshot_quiesce_seconds,
            "reconciliation_period": config.reconciliation_period,
            "noncompliant_policy": config.noncompliant_policy.value,
            "auto_topup_amount": config.auto_topup_amount,
            "use_crypto": config.use_crypto,
        },
        "bank": {
            "accounts": {
                str(isp_id): network.bank.account_balance(isp_id)
                for isp_id in network.compliant_isps()
            },
            "seq": network.bank.next_seq,
        },
        "isps": {},
    }
    for isp_id, isp in sorted(network.compliant_isps().items()):
        users = {}
        for user in isp.ledger.users():
            users[str(user.user_id)] = {
                "account": user.account,
                "balance": user.balance,
                "daily_limit": user.daily_limit,
                "sent_today": user.sent_today,
                "lifetime_sent": user.lifetime_sent,
                "lifetime_received": user.lifetime_received,
                "lifetime_received_paid": user.lifetime_received_paid,
                "limit_warnings": user.limit_warnings,
                "inbox": user.inbox,
                "junk_folder": user.junk_folder,
            }
        state["isps"][str(isp_id)] = {
            "pool": isp.ledger.pool,
            "cash": isp.ledger.cash,
            "credit": {str(k): v for k, v in isp.credit.items()},
            "users": users,
        }
    return state


def restore(state: dict[str, Any], *, seed: int = 0) -> ZmailNetwork:
    """Rebuild a direct-mode deployment from a checkpoint dict.

    Raises:
        SimulationError: on version mismatch or malformed state.
    """
    if state.get("format_version") != FORMAT_VERSION:
        raise SimulationError(
            f"unsupported checkpoint version {state.get('format_version')!r}"
        )
    config_state = state["config"]
    config = ZmailConfig(
        default_daily_limit=config_state["default_daily_limit"],
        default_user_balance=config_state["default_user_balance"],
        default_user_account=config_state["default_user_account"],
        initial_pool=config_state["initial_pool"],
        minavail=config_state["minavail"],
        maxavail=config_state["maxavail"],
        initial_bank_account=config_state["initial_bank_account"],
        snapshot_quiesce_seconds=config_state["snapshot_quiesce_seconds"],
        reconciliation_period=config_state["reconciliation_period"],
        noncompliant_policy=NonCompliantMailPolicy(
            config_state["noncompliant_policy"]
        ),
        auto_topup_amount=config_state["auto_topup_amount"],
        use_crypto=config_state["use_crypto"],
    )
    compliant_ids = {int(k) for k in state["isps"]}
    flags = [i in compliant_ids for i in range(state["n_isps"])]
    network = ZmailNetwork(
        n_isps=state["n_isps"],
        users_per_isp=state["users_per_isp"],
        compliant=flags,
        config=config,
        seed=seed,
    )
    network._external_deposit = state["external_deposit"]

    for isp_key, isp_state in state["isps"].items():
        isp = network.isps[int(isp_key)]
        assert isinstance(isp, CompliantISP)
        isp.ledger.pool = isp_state["pool"]
        isp.ledger.cash = isp_state["cash"]
        isp.credit = {int(k): v for k, v in isp_state["credit"].items()}
        for user_key, user_state in isp_state["users"].items():
            user = isp.ledger.user(int(user_key))
            user.account = user_state["account"]
            user.balance = user_state["balance"]
            user.daily_limit = user_state["daily_limit"]
            user.sent_today = user_state["sent_today"]
            user.lifetime_sent = user_state["lifetime_sent"]
            user.lifetime_received = user_state["lifetime_received"]
            user.lifetime_received_paid = user_state["lifetime_received_paid"]
            user.limit_warnings = user_state["limit_warnings"]
            user.inbox = user_state["inbox"]
            user.junk_folder = user_state["junk_folder"]

    for isp_key, balance in state["bank"]["accounts"].items():
        isp_id = int(isp_key)
        current = network.bank.account_balance(isp_id)
        delta = balance - current
        if delta > 0:
            network.bank.sell_epennies(isp_id, value=delta, nonce=-(isp_id + 1))
        elif delta < 0:
            network.bank.buy_epennies(isp_id, value=-delta, nonce=-(isp_id + 1))
    # Fast-forward the reconciliation sequence number.
    while network.bank.next_seq < state["bank"]["seq"]:
        network.bank.reconcile(
            {isp_id: {} for isp_id in network.compliant_isps()}
        )
    network.bank.reports.clear()
    return network


def dumps(network: ZmailNetwork, *, indent: int | None = None) -> str:
    """Checkpoint straight to a JSON string."""
    return json.dumps(checkpoint(network), indent=indent, sort_keys=True)


def loads(payload: str, *, seed: int = 0) -> ZmailNetwork:
    """Restore straight from a JSON string."""
    return restore(json.loads(payload), seed=seed)
