"""Checkpoint and restore for Zmail deployments.

Long-running simulations (and any real deployment) need durable state:
an ISP's ledger and credit arrays, the bank's accounts, and the users'
purses *are* the money. This module serialises a
:class:`~repro.core.protocol.ZmailNetwork` to a plain JSON-compatible
dict and restores an equivalent deployment from it, preserving every
balance, counter and compliance flag — verified by the test suite's
conservation audits across a save/load cycle.

In-flight engine-mode letters are not checkpointed (a real system drains
or journals its queues before snapshotting state); ``checkpoint`` refuses
to run while paid letters are in flight so no money can be lost.

Two granularities:

* :func:`checkpoint` / :func:`restore` — the whole deployment, for cold
  save/load.
* :func:`isp_state` / :func:`load_isp_state` and :func:`bank_state` /
  :func:`load_bank_state` — one node's *durable* state, the write-ahead
  journal the chaos harness's crash/restart model is built on: a crash
  loses everything volatile (open snapshot pauses, buffered outboxes,
  in-flight wire frames) and a restart rebuilds the node from exactly
  this state.

All restore paths reject malformed input with
:class:`~repro.errors.SimulationError` — a truncated or corrupted blob
must fail loudly and descriptively, never with a raw ``KeyError``.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from ..errors import SimulationError
from .bank import Bank
from .config import NonCompliantMailPolicy, ZmailConfig
from .isp import CompliantISP, DeliveryStats
from .protocol import ZmailNetwork

__all__ = [
    "checkpoint",
    "restore",
    "dumps",
    "loads",
    "config_state",
    "config_from_state",
    "user_state",
    "load_user_state",
    "isp_state",
    "load_isp_state",
    "isp_aggregate_state",
    "load_isp_aggregate_state",
    "bank_state",
    "load_bank_state",
    "FORMAT_VERSION",
]

# v2: limit_warning_log event list -> limit_hits counters
# v3: checkpoints carry per-ISP delivery stats and limit-hit counters (a
#     cold restore no longer silently zeroes them), and the journal is
#     factored into aggregate + per-user fragments so the durable store
#     (:mod:`repro.store`) can persist exactly the dirty subset.
FORMAT_VERSION = 3


def _user_state(user) -> dict[str, Any]:
    return {
        "account": user.account,
        "balance": user.balance,
        "daily_limit": user.daily_limit,
        "sent_today": user.sent_today,
        "lifetime_sent": user.lifetime_sent,
        "lifetime_received": user.lifetime_received,
        "lifetime_received_paid": user.lifetime_received_paid,
        "limit_warnings": user.limit_warnings,
        "inbox": user.inbox,
        "junk_folder": user.junk_folder,
    }


def _load_user_state(user, state: dict[str, Any]) -> None:
    user.account = state["account"]
    user.balance = state["balance"]
    user.daily_limit = state["daily_limit"]
    user.sent_today = state["sent_today"]
    user.lifetime_sent = state["lifetime_sent"]
    user.lifetime_received = state["lifetime_received"]
    user.lifetime_received_paid = state["lifetime_received_paid"]
    user.limit_warnings = state["limit_warnings"]
    user.inbox = state["inbox"]
    user.junk_folder = state["junk_folder"]


def user_state(user) -> dict[str, Any]:
    """One user's durable state (purse, limits, counters, mailboxes)."""
    return _user_state(user)


def load_user_state(user, state: dict[str, Any]) -> None:
    """Restore a :func:`user_state` fragment onto ``user`` in place.

    Raises:
        SimulationError: if the fragment is malformed.
    """
    try:
        _load_user_state(user, state)
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise SimulationError(
            f"malformed user state: {type(exc).__name__}: {exc}"
        ) from exc


def config_state(config: ZmailConfig) -> dict[str, Any]:
    """Serialise a :class:`ZmailConfig` to a JSON-compatible dict."""
    return {
        "default_daily_limit": config.default_daily_limit,
        "default_user_balance": config.default_user_balance,
        "default_user_account": config.default_user_account,
        "initial_pool": config.initial_pool,
        "minavail": config.minavail,
        "maxavail": config.maxavail,
        "initial_bank_account": config.initial_bank_account,
        "snapshot_quiesce_seconds": config.snapshot_quiesce_seconds,
        "reconciliation_period": config.reconciliation_period,
        "noncompliant_policy": config.noncompliant_policy.value,
        "auto_topup_amount": config.auto_topup_amount,
        "use_crypto": config.use_crypto,
    }


def config_from_state(state: dict[str, Any]) -> ZmailConfig:
    """Rebuild a :class:`ZmailConfig` from :func:`config_state` output.

    Raises:
        SimulationError: if the state is malformed.
    """
    try:
        return ZmailConfig(
            default_daily_limit=state["default_daily_limit"],
            default_user_balance=state["default_user_balance"],
            default_user_account=state["default_user_account"],
            initial_pool=state["initial_pool"],
            minavail=state["minavail"],
            maxavail=state["maxavail"],
            initial_bank_account=state["initial_bank_account"],
            snapshot_quiesce_seconds=state["snapshot_quiesce_seconds"],
            reconciliation_period=state["reconciliation_period"],
            noncompliant_policy=NonCompliantMailPolicy(
                state["noncompliant_policy"]
            ),
            auto_topup_amount=state["auto_topup_amount"],
            use_crypto=state["use_crypto"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SimulationError(
            f"malformed checkpoint config: {type(exc).__name__}: {exc}"
        ) from exc


def checkpoint(network: ZmailNetwork) -> dict[str, Any]:
    """Serialise a deployment to a JSON-compatible dict.

    Raises:
        SimulationError: if paid letters are still in flight (engine
            mode) — drain the engine first.
    """
    if network.paid_letters_in_flight:
        raise SimulationError(
            f"{network.paid_letters_in_flight} paid letters in flight; "
            "run the engine to quiescence before checkpointing"
        )
    state: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "n_isps": network.n_isps,
        "users_per_isp": network.users_per_isp,
        "external_deposit": network._external_deposit,
        "config": config_state(network.config),
        "bank": {
            "accounts": {
                str(isp_id): network.bank.account_balance(isp_id)
                for isp_id in network.compliant_isps()
            },
            "seq": network.bank.next_seq,
        },
        "isps": {},
    }
    for isp_id, isp in sorted(network.compliant_isps().items()):
        users = {}
        for user in isp.ledger.users():
            users[str(user.user_id)] = _user_state(user)
        state["isps"][str(isp_id)] = {
            "pool": isp.ledger.pool,
            "cash": isp.ledger.cash,
            "credit": {str(k): v for k, v in isp.credit.items()},
            "stats": dataclasses.asdict(isp.stats),
            "limit_hits": {
                str(user_id): count
                for user_id, count in sorted(isp.limit_hits.items())
            },
            "users": users,
        }
    return state


def restore(state: dict[str, Any], *, seed: int = 0) -> ZmailNetwork:
    """Rebuild a direct-mode deployment from a checkpoint dict.

    Raises:
        SimulationError: on version mismatch or malformed state.
    """
    if not isinstance(state, dict):
        raise SimulationError(
            f"checkpoint must be a dict, got {type(state).__name__}"
        )
    if state.get("format_version") != FORMAT_VERSION:
        raise SimulationError(
            f"unsupported checkpoint version {state.get('format_version')!r}"
        )
    try:
        return _restore_checked(state, seed=seed)
    except SimulationError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise SimulationError(
            f"malformed checkpoint: {type(exc).__name__}: {exc}"
        ) from exc


def _restore_checked(state: dict[str, Any], *, seed: int) -> ZmailNetwork:
    config = config_from_state(state["config"])
    compliant_ids = {int(k) for k in state["isps"]}
    flags = [i in compliant_ids for i in range(state["n_isps"])]
    network = ZmailNetwork(
        n_isps=state["n_isps"],
        users_per_isp=state["users_per_isp"],
        compliant=flags,
        config=config,
        seed=seed,
    )
    network._external_deposit = state["external_deposit"]

    for isp_key, isp_state_blob in state["isps"].items():
        isp = network.isps[int(isp_key)]
        assert isinstance(isp, CompliantISP)
        isp.ledger.pool = isp_state_blob["pool"]
        isp.ledger.cash = isp_state_blob["cash"]
        isp.credit = {int(k): v for k, v in isp_state_blob["credit"].items()}
        isp.stats = DeliveryStats(**isp_state_blob["stats"])
        isp.limit_hits = {
            int(user_id): int(count)
            for user_id, count in isp_state_blob["limit_hits"].items()
        }
        for user_key, user_state in isp_state_blob["users"].items():
            _load_user_state(isp.ledger.user(int(user_key)), user_state)

    for isp_key, balance in state["bank"]["accounts"].items():
        isp_id = int(isp_key)
        current = network.bank.account_balance(isp_id)
        delta = balance - current
        if delta > 0:
            network.bank.sell_epennies(isp_id, value=delta, nonce=-(isp_id + 1))
        elif delta < 0:
            network.bank.buy_epennies(isp_id, value=-delta, nonce=-(isp_id + 1))
    # Fast-forward the reconciliation sequence number.
    while network.bank.next_seq < state["bank"]["seq"]:
        network.bank.reconcile(
            {isp_id: {} for isp_id in network.compliant_isps()}
        )
    network.bank.reports.clear()
    return network


# -- per-node journals (crash/restart) -----------------------------------------------


def isp_aggregate_state(isp: CompliantISP) -> dict[str, Any]:
    """The per-user-independent slice of an ISP's durable state.

    Everything in :func:`isp_state` except the ``users`` map: pool, cash,
    credit array, compliance directory, delivery stats and the per-user
    limit-hit counters (small — only zombies accumulate entries). The
    durable store persists this fragment every barrier (O(n_isps)) and
    per-user fragments only when dirty.
    """
    return {
        "isp_id": isp.isp_id,
        "pool": isp.ledger.pool,
        "cash": isp.ledger.cash,
        "credit": {str(k): v for k, v in sorted(isp.credit.items())},
        "compliance_view": {
            str(k): v for k, v in sorted(isp.compliance_view.items())
        },
        "stats": dataclasses.asdict(isp.stats),
        "limit_hits": {
            str(user_id): count
            for user_id, count in sorted(isp.limit_hits.items())
        },
    }


def load_isp_aggregate_state(isp: CompliantISP, state: dict[str, Any]) -> None:
    """Restore an :func:`isp_aggregate_state` fragment onto ``isp`` in place.

    Raises:
        SimulationError: if the fragment is malformed.
    """
    try:
        isp.ledger.pool = state["pool"]
        isp.ledger.cash = state["cash"]
        isp.credit = {int(k): v for k, v in state["credit"].items()}
        isp.compliance_view = {
            int(k): bool(v) for k, v in state["compliance_view"].items()
        }
        isp.stats = DeliveryStats(**state["stats"])
        isp.limit_hits = {
            int(user_id): int(count)
            for user_id, count in state["limit_hits"].items()
        }
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise SimulationError(
            f"malformed ISP journal aggregate: {type(exc).__name__}: {exc}"
        ) from exc


def isp_state(isp: CompliantISP) -> dict[str, Any]:
    """One compliant ISP's durable state (its write-ahead journal).

    Covers the ledger (pool, cash, every user purse), the inter-ISP
    credit array, the installed compliance directory, delivery stats and
    the zombie-detection per-user limit-hit counters. Volatile state — an open snapshot
    pause, the buffered outbox — is deliberately absent: a crash loses it.
    """
    state = isp_aggregate_state(isp)
    state["users"] = {
        str(user.user_id): _user_state(user) for user in isp.ledger.users()
    }
    return state


def load_isp_state(isp: CompliantISP, state: dict[str, Any]) -> None:
    """Restore a journal written by :func:`isp_state` onto ``isp`` in place.

    The target is typically a freshly constructed :class:`CompliantISP`
    (same id / user count / config) standing in for the restarted
    process; its volatile state starts empty, exactly as after a crash.

    Raises:
        SimulationError: if the journal is malformed.
    """
    load_isp_aggregate_state(isp, state)
    try:
        for user_key, user_state in state["users"].items():
            _load_user_state(isp.ledger.user(int(user_key)), user_state)
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise SimulationError(
            f"malformed ISP journal: {type(exc).__name__}: {exc}"
        ) from exc


def bank_state(bank: Bank) -> dict[str, Any]:
    """The bank's durable state (see :meth:`~repro.core.bank.Bank.state_dict`)."""
    return bank.state_dict()


def load_bank_state(bank: Bank, state: dict[str, Any]) -> None:
    """Restore a journal written by :func:`bank_state` onto ``bank`` in place.

    Raises:
        SimulationError: if the journal is malformed.
    """
    try:
        bank.load_state(state)
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise SimulationError(
            f"malformed bank journal: {type(exc).__name__}: {exc}"
        ) from exc


def dumps(network: ZmailNetwork, *, indent: int | None = None) -> str:
    """Checkpoint straight to a JSON string."""
    return json.dumps(checkpoint(network), indent=indent, sort_keys=True)


def loads(payload: str, *, seed: int = 0) -> ZmailNetwork:
    """Restore straight from a JSON string.

    Raises:
        SimulationError: if the payload is not valid JSON (truncated or
            corrupted blob) or the decoded state is malformed.
    """
    try:
        state = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise SimulationError(
            f"corrupted checkpoint JSON: {exc}"
        ) from exc
    return restore(state, seed=seed)
