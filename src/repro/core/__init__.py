"""The deployable Zmail system (the paper's primary contribution).

Assembles compliant ISPs, non-compliant peers and the central bank into a
runnable deployment (:class:`ZmailNetwork`), with zero-sum e-penny
transfer (§4.1), user/ISP/bank exchange (§4.2–§4.3), bulk reconciliation
with misbehaviour detection (§4.4), mailing-list acknowledgments, zombie
containment and incremental-deployment modelling (§5).
"""

from .audit import EconomicAuditor, IspPosition, MintingAlert
from .bank import Bank, BuyResult
from .config import NonCompliantMailPolicy, ZmailConfig
from .deployment import AdoptionParams, AdoptionRound, AdoptionSimulation
from .epenny import (
    EMAIL_COST_EPENNIES,
    EPENNY_PRICE_DOLLARS,
    Money,
    dollars_to_epennies,
    epennies_to_dollars,
)
from .isp import CompliantISP, DeliveryStats, NonCompliantISP
from .ledger import Ledger, LedgerTotals
from .mailinglist import ListServer, PostOutcome, Subscriber
from .multibank import BankFederation, FederatedReport, RegionalReport
from .overload import (
    AdmissionController,
    CircuitBreaker,
    DeferredQueue,
    OverloadConfig,
    ShedAudit,
    ShedClass,
    TokenBucket,
    shed_class_for,
)
from .misbehavior import (
    InconsistentPair,
    ReconciliationReport,
    infer_suspects,
    verify_credit_matrix,
)
from .persistence import checkpoint, dumps, loads, restore
from .reconcile import (
    PairDeltaStream,
    ReconcileError,
    StaleWindowError,
    StreamingReconciler,
)
from .protocol import ZmailNetwork
from .scenario import Scenario, ScenarioResult, SpammerSpec, ZombieSpec
from .snapshot import (
    DirectSnapshotCoordinator,
    MarkerSnapshotCoordinator,
    SnapshotMarker,
    SnapshotReply,
    SnapshotRequest,
    TimeoutSnapshotCoordinator,
)
from .transfer import Letter, SendReceipt, SendStatus
from .user import UserAccount
from .zombie import ZombieDetection, ZombieMonitor, warning_message

__all__ = [
    "EconomicAuditor",
    "IspPosition",
    "MintingAlert",
    "Bank",
    "BuyResult",
    "ZmailConfig",
    "NonCompliantMailPolicy",
    "AdoptionParams",
    "AdoptionRound",
    "AdoptionSimulation",
    "EPENNY_PRICE_DOLLARS",
    "EMAIL_COST_EPENNIES",
    "Money",
    "epennies_to_dollars",
    "dollars_to_epennies",
    "CompliantISP",
    "NonCompliantISP",
    "DeliveryStats",
    "Ledger",
    "LedgerTotals",
    "ListServer",
    "PostOutcome",
    "Subscriber",
    "BankFederation",
    "FederatedReport",
    "RegionalReport",
    "AdmissionController",
    "CircuitBreaker",
    "DeferredQueue",
    "OverloadConfig",
    "ShedAudit",
    "ShedClass",
    "TokenBucket",
    "shed_class_for",
    "InconsistentPair",
    "ReconciliationReport",
    "verify_credit_matrix",
    "infer_suspects",
    "PairDeltaStream",
    "ReconcileError",
    "StaleWindowError",
    "StreamingReconciler",
    "ZmailNetwork",
    "Scenario",
    "ScenarioResult",
    "SpammerSpec",
    "ZombieSpec",
    "checkpoint",
    "restore",
    "dumps",
    "loads",
    "DirectSnapshotCoordinator",
    "TimeoutSnapshotCoordinator",
    "MarkerSnapshotCoordinator",
    "SnapshotRequest",
    "SnapshotMarker",
    "SnapshotReply",
    "Letter",
    "SendReceipt",
    "SendStatus",
    "UserAccount",
    "ZombieDetection",
    "ZombieMonitor",
    "warning_message",
]
