"""Sharded multi-process cluster runtime: deterministic parallel Zmail.

A genuine third execution mode next to direct and engine runs: the
deployment's ISPs are hash-partitioned across N worker processes
(:mod:`~repro.cluster.planner`), each running its own
:class:`~repro.core.protocol.ZmailNetwork` slice; cross-shard mail
travels sequence-numbered inter-shard links
(:mod:`~repro.cluster.links`) under epoch-barriered virtual-time
lockstep or bounded-lag asynchrony (``ClusterConfig.lag``), with the
bank/snapshot coordinator — batch at barriers, or streaming through a
:class:`~repro.core.reconcile.StreamingReconciler` — and the digest
merge in the parent (:mod:`~repro.cluster.runtime`). Results are
bit-identical across shard counts, drive modes and schedulers —
``repro cluster`` at N=1 lockstep and N=4 ``--lag 2`` writes the same
manifest bytes — which is what makes multi-core speedup safe to take:
the parallel run *is* the sequential run.
"""

from .links import (
    BatchRouter,
    InterShardLink,
    LetterSequencer,
    ShardOutbox,
    decode_letter,
    encode_letter,
)
from .planner import ShardPlan, plan_shards, shard_of
from .presets import cluster_scenario, smoke_scenario
from .runtime import ClusterConfig, ClusterError, ClusterResult, run_cluster
from .worker import ShardSpec, ShardWorker, worker_entry

__all__ = [
    "ShardPlan",
    "plan_shards",
    "shard_of",
    "encode_letter",
    "decode_letter",
    "LetterSequencer",
    "ShardOutbox",
    "InterShardLink",
    "BatchRouter",
    "ShardSpec",
    "ShardWorker",
    "worker_entry",
    "ClusterConfig",
    "ClusterError",
    "ClusterResult",
    "run_cluster",
    "cluster_scenario",
    "smoke_scenario",
]
