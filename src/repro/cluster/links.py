"""Sequence-numbered inter-shard links: the cluster's only data plane.

Cross-shard letters travel as *batches*: each worker emits exactly one
batch per peer shard per epoch (empty batches included), tagged with the
epoch that produced it. The receive side (:class:`InterShardLink`)
enforces the FIFO contract the determinism argument needs:

* a batch tagged below the expected epoch is a **duplicate** (a
  restarted worker replaying its journaled epoch) and is dropped;
* a batch tagged above it is a **gap** — letters were lost — and raises
  :class:`~repro.errors.SimulationError` rather than silently diverging.

Each letter additionally carries a per-source-ISP sequence number
assigned at route time (:class:`LetterSequencer`). Delivery at a barrier
sorts the merged inbound set by ``(src_isp, seq)`` — a pure function of
shard-invariant data — which is what makes the delivered order identical
regardless of how ISPs are spread over workers.

Letters cross process boundaries as plain tuples (no pickled protocol
objects), so the wire format is explicit and version-checkable.
"""

from __future__ import annotations

from ..core.transfer import Letter
from ..errors import SimulationError
from ..sim.workload import Address, TrafficKind

__all__ = [
    "encode_letter",
    "decode_letter",
    "LetterSequencer",
    "ShardOutbox",
    "InterShardLink",
    "BatchRouter",
]


def encode_letter(letter: Letter, seq: int) -> tuple:
    """Flatten a letter (plus its per-source-ISP ``seq``) to a wire tuple."""
    return (
        seq,
        letter.sender.isp,
        letter.sender.user,
        letter.recipient.isp,
        letter.recipient.user,
        letter.kind.value,
        letter.paid,
        letter.content,
    )


def decode_letter(wire: tuple) -> tuple[int, Letter]:
    """Rebuild ``(seq, Letter)`` from :func:`encode_letter` output."""
    try:
        seq, s_isp, s_user, r_isp, r_user, kind, paid, content = wire
        letter = Letter(
            Address(s_isp, s_user),
            Address(r_isp, r_user),
            TrafficKind(kind),
            paid=bool(paid),
            content=content,
        )
    except (TypeError, ValueError) as exc:
        raise SimulationError(f"malformed wire letter {wire!r}: {exc}") from exc
    return int(seq), letter


class LetterSequencer:
    """Per-source-ISP monotone sequence numbers for barrier ordering."""

    __slots__ = ("_next",)

    def __init__(self) -> None:
        self._next: dict[int, int] = {}

    def stamp(self, src_isp: int) -> int:
        """The next sequence number for a letter leaving ``src_isp``."""
        seq = self._next.get(src_isp, 0)
        self._next[src_isp] = seq + 1
        return seq

    def state_dict(self) -> dict:
        return {str(isp): seq for isp, seq in sorted(self._next.items())}

    def load_state(self, state: dict) -> None:
        self._next = {int(isp): int(seq) for isp, seq in state.items()}


class ShardOutbox:
    """Send side: per-destination-shard letter buffers for one epoch."""

    __slots__ = ("src_shard", "_buffers")

    def __init__(self, src_shard: int, peer_shards: list[int]) -> None:
        self.src_shard = src_shard
        self._buffers: dict[int, list[tuple]] = {s: [] for s in peer_shards}

    def add(self, dst_shard: int, wire_letter: tuple) -> None:
        self._buffers[dst_shard].append(wire_letter)

    def flush(self, epoch: int) -> dict[int, dict]:
        """Drain every buffer into one tagged batch per peer shard."""
        batches = {}
        for dst_shard, letters in self._buffers.items():
            batches[dst_shard] = {
                "src_shard": self.src_shard,
                "epoch": epoch,
                "letters": letters,
            }
            self._buffers[dst_shard] = []
        return batches


class InterShardLink:
    """Receive side of one ``src_shard → here`` link: FIFO enforcement."""

    __slots__ = ("src_shard", "expected_epoch")

    def __init__(self, src_shard: int, *, expected_epoch: int = 0) -> None:
        self.src_shard = src_shard
        self.expected_epoch = expected_epoch

    def accept(self, batch: dict) -> list[tuple] | None:
        """Validate one inbound batch.

        Returns its wire letters, or ``None`` for a dropped duplicate.

        Raises:
            SimulationError: wrong link, or an epoch gap (lost batch).
        """
        if batch.get("src_shard") != self.src_shard:
            raise SimulationError(
                f"batch from shard {batch.get('src_shard')!r} arrived on "
                f"the link from shard {self.src_shard}"
            )
        epoch = batch.get("epoch")
        if not isinstance(epoch, int):
            raise SimulationError(f"batch missing epoch tag: {batch!r}")
        if epoch < self.expected_epoch:
            return None  # duplicate from a restarted sender; already applied
        if epoch > self.expected_epoch:
            raise SimulationError(
                f"link from shard {self.src_shard}: expected epoch "
                f"{self.expected_epoch}, got {epoch} (batch lost)"
            )
        self.expected_epoch += 1
        return batch["letters"]


class BatchRouter:
    """Parent-side epoch-tagged batch buffer for the bounded-lag drive.

    The lockstep parent forwards each epoch's batches immediately — the
    barrier guarantees every producer finished before any consumer
    starts. The bounded-lag drive decouples producers from consumers,
    so the parent buffers instead: :meth:`put` stores one blob per
    directed ``(src, dst)`` link per epoch (dropping duplicates from a
    restarted worker replaying its journaled epoch), :meth:`ready` says
    whether shard ``dst`` holds *every* peer's batch for an epoch — the
    data-readiness condition that keeps the virtual delivery schedule
    identical to lockstep — and :meth:`take` drains them in shard order,
    enforcing the same per-link FIFO contract as
    :class:`InterShardLink`.
    """

    __slots__ = ("n_shards", "_expected", "_buffers")

    def __init__(self, n_shards: int) -> None:
        self.n_shards = n_shards
        pairs = [
            (src, dst)
            for src in range(n_shards)
            for dst in range(n_shards)
            if src != dst
        ]
        self._expected: dict[tuple[int, int], int] = {p: 0 for p in pairs}
        self._buffers: dict[tuple[int, int], dict[int, bytes]] = {
            p: {} for p in pairs
        }

    def put(self, src: int, dst: int, epoch: int, blob: bytes) -> bool:
        """Buffer one blob; returns ``False`` for a dropped duplicate."""
        key = (src, dst)
        if epoch < self._expected[key] or epoch in self._buffers[key]:
            return False  # replayed journal epoch; already routed
        self._buffers[key][epoch] = blob
        return True

    def ready(self, dst: int, epoch: int) -> bool:
        """Whether every peer's batch for ``epoch`` is buffered for ``dst``."""
        if epoch < 0:
            return True  # cycle 0 consumes nothing
        for src in range(self.n_shards):
            if src == dst:
                continue
            key = (src, dst)
            if (epoch not in self._buffers[key]
                    and self._expected[key] <= epoch):
                return False
        return True

    def take(self, dst: int, epoch: int) -> list[bytes]:
        """Drain ``dst``'s inbound batches for ``epoch``, in shard order."""
        if epoch < 0:
            return []
        blobs: list[bytes] = []
        for src in range(self.n_shards):
            if src == dst:
                continue
            key = (src, dst)
            if self._expected[key] != epoch:
                raise SimulationError(
                    f"router link {src}->{dst}: expected epoch "
                    f"{self._expected[key]}, asked for {epoch}"
                )
            try:
                blobs.append(self._buffers[key].pop(epoch))
            except KeyError:
                raise SimulationError(
                    f"router link {src}->{dst}: epoch {epoch} not buffered"
                ) from None
            self._expected[key] = epoch + 1
        return blobs
