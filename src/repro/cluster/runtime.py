"""The cluster parent: coordinator, bank, and merge point.

``run_cluster`` drives N shard workers in one of two modes sharing
every line of worker code. With ``lag == 0`` (the default) it is the
epoch-barriered lockstep documented in :mod:`repro.cluster.worker`;
with ``lag == K >= 1`` it is the **bounded-lag asynchronous drive**:
shards advance independently, up to K epochs apart, and §4.4
verification streams through a
:class:`~repro.core.reconcile.StreamingReconciler` instead of a merged
snapshot barrier. The two modes converge to byte-identical manifests —
lockstep is the differential oracle (DESIGN.md §11). The parent owns:

* the **cycle clock** — lockstep broadcasts ``INPUTS(k)`` and will not
  start cycle ``k+1`` until every shard returned ``OUTPUTS(k)``, the
  BSP barrier that makes OS scheduling irrelevant to the results; the
  bounded-lag drive replaces the barrier with two per-shard conditions:
  *data readiness* (every peer batch for epoch ``k-1`` is buffered,
  which preserves the lockstep virtual delivery schedule exactly) and
  the *lag bound* (cycle ``k`` may start only while ``k <= min
  completed + K``, the flow control that bounds staleness and recovery
  replay);
* the **data plane routing** — per-epoch letter batches are forwarded
  between shards as the opaque pre-pickled blobs the workers produced
  (star topology: workers never hold channels to each other, so a
  SIGKILLed worker cannot corrupt a peer's pipe);
* the **bank coordinator** — lockstep merges the per-shard snapshot
  replies at every cut into one credit matrix, runs the §4.4
  anti-symmetry verification, and checks global value conservation
  (Σ total_value == Σ expected_total_value across shards); the
  bounded-lag drive feeds the same replies, as they arrive, into the
  streaming verifier as per-pair sequence-numbered credit deltas —
  windows close in order off the critical path, and quiescence
  (:meth:`StreamingReconciler.finalize`) requires every window closed;
* **fail-stop recovery** — a worker that dies mid-run (crash or
  injected SIGKILL) is detected at the barrier, respawned from its
  journal, and fed the last inputs again; duplicate messages on either
  side are dropped by cycle number, so the run converges to the
  fault-free digests;
* the **merge** — per-shard digest accumulators, counters, balances and
  detections fold into one :class:`~repro.obs.manifest.RunManifest`
  whose bytes are invariant across shard counts (the ``cmp`` oracle CI
  uses), plus a per-run report carrying the non-invariant detail
  (assignment, restarts, per-shard digests).

Two drive modes share every line of protocol logic via shard handles:
``spawn`` runs real ``multiprocessing`` processes (the production path,
used by the benchmark), ``inline`` drives the same workers in-process
(deterministic fault injection, and coverage tracers can see it).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import multiprocessing.connection
import os
from dataclasses import dataclass, field

from ..core.bank import Bank
from ..core.scenario import Scenario
from ..errors import SimulationError
from ..obs.manifest import RunManifest, config_digest
from ..obs.metrics_export import MetricsExporter
from ..obs.schema import LEDGER_EVENT_TYPES
from ..obs.trace import AdditiveMultisetDigest
from ..sim.clock import DAY, HOUR
from .links import BatchRouter
from .planner import ShardPlan, plan_shards
from .worker import ShardSpec, ShardWorker, worker_entry

__all__ = ["ClusterError", "ClusterConfig", "ClusterResult", "run_cluster"]


class ClusterError(SimulationError):
    """A cluster protocol violation (lost worker, broken barrier, ...)."""


@dataclass
class ClusterConfig:
    """One cluster run's knobs.

    Args:
        scenario: The workload to run — identical to what a
            single-process :meth:`Scenario.run` would take.
        n_shards: Worker count; results are invariant to it.
        epoch_len: Barrier spacing in virtual seconds. Must divide the
            scenario duration and the day length (and the reconcile
            period, when set) so day boundaries and cuts land exactly on
            barriers — the alignment the determinism argument needs.
        mode: ``"spawn"`` for real processes, ``"inline"`` for
            in-process workers (tests, coverage, deterministic faults).
        traced: Per-worker event tracing into the mergeable digest
            accumulators. Off for benchmarks.
        journal_dir: Where workers journal their barrier state. Required
            for crash recovery; without it a lost worker is fatal.
        kill_shard / kill_cycle: Fault injection — the parent kills that
            shard's worker right after broadcasting that cycle's inputs,
            exercising the fail-stop path deterministically.
        recv_timeout: Seconds the parent waits on one worker message in
            spawn mode before declaring the run wedged.
        lag: ``0`` (default) keeps the epoch-barriered lockstep drive.
            ``K >= 1`` switches to the bounded-lag asynchronous drive:
            shards may run up to K epochs apart (subject to data
            readiness), and reconciliation streams through a
            :class:`~repro.core.reconcile.StreamingReconciler` with a
            K-window staleness bound. Results are invariant to it.
    """

    scenario: Scenario
    n_shards: int = 2
    epoch_len: float = HOUR
    mode: str = "spawn"
    traced: bool = True
    journal_dir: str | None = None
    kill_shard: int | None = None
    kill_cycle: int | None = None
    recv_timeout: float = 300.0
    lag: int = 0


@dataclass
class ClusterResult:
    """What a cluster run produced.

    ``manifest`` is the shard-count-invariant identity card (its
    ``to_json()`` bytes are what CI ``cmp``s across N=1 vs N=4);
    ``report`` carries the run-specific detail that legitimately differs
    (assignment, restarts, per-shard digests).
    """

    manifest: RunManifest
    report: dict
    accounting: dict
    detections: list[tuple[int, int, int, int]]
    rounds: list[dict] = field(default_factory=list)

    @property
    def conserved(self) -> bool:
        return bool(self.manifest.extra["conserved"])

    @property
    def all_consistent(self) -> bool:
        return bool(self.manifest.extra["all_consistent"])


def _exact_multiple(total: float, step: float, what: str) -> int:
    """``total / step`` as an int, or ``ValueError`` if it isn't one."""
    count = round(total / step)
    if count <= 0 or abs(count * step - total) > 1e-9 * max(1.0, abs(total)):
        raise ValueError(
            f"{what} ({total}) must be a positive multiple of the epoch "
            f"length ({step})"
        )
    return count


# -- shard handles: one protocol, two drive modes ---------------------------


class _InlineHandle:
    """Drives a :class:`ShardWorker` in-process behind the pipe protocol."""

    def __init__(self, spec: ShardSpec) -> None:
        self._spec = spec
        self._queue: list[dict] = []
        self._worker: ShardWorker | None = ShardWorker(spec)
        self._enqueue_pending()

    def _enqueue_pending(self) -> None:
        outputs = self._worker.take_pending_outputs()
        if outputs is not None:
            self._queue.append(outputs)

    def send(self, msg: dict) -> None:
        if self._worker is None:
            return  # dead until respawn; crash surfaces at recv
        outputs = self._worker.handle_inputs(msg)
        if outputs is not None:
            self._queue.append(outputs)

    def poll(self, timeout: float = 0.0) -> bool:
        """Whether :meth:`recv` would return (or raise EOF) right now."""
        return bool(self._queue) or self._worker is None

    def recv(self, timeout: float) -> dict:
        if self._worker is None or not self._queue:
            raise EOFError("inline shard worker is gone")
        return self._queue.pop(0)

    def kill(self) -> None:
        self._worker = None
        self._queue.clear()

    def respawn(self) -> None:
        self._worker = ShardWorker(self._spec)
        self._queue.clear()
        self._enqueue_pending()

    def close(self) -> None:
        self._worker = None
        self._queue.clear()


class _SpawnHandle:
    """One real worker process plus the parent end of its pipe."""

    def __init__(self, spec: ShardSpec, ctx) -> None:
        self._spec = spec
        self._ctx = ctx
        self._proc = None
        self._conn = None
        self._start()

    def _start(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_entry, args=(child_conn, self._spec), daemon=True
        )
        proc.start()
        # The parent must drop its copy of the child end, or a dead
        # worker's pipe never reads as EOF and crashes go undetected.
        child_conn.close()
        self._proc, self._conn = proc, parent_conn

    @property
    def connection(self):
        """The parent pipe end (for ``multiprocessing.connection.wait``)."""
        return self._conn

    def send(self, msg: dict) -> None:
        try:
            self._conn.send(msg)
        except (BrokenPipeError, OSError):
            pass  # the worker died; recv() reports it

    def poll(self, timeout: float = 0.0) -> bool:
        """Whether :meth:`recv` would return (or raise EOF) right now."""
        return self._conn.poll(timeout)

    def recv(self, timeout: float) -> dict:
        if not self._conn.poll(timeout):
            raise ClusterError(
                f"shard {self._spec.shard_id} sent nothing for {timeout}s; "
                "cluster run is wedged"
            )
        return self._conn.recv()  # raises EOFError if the worker died

    def kill(self) -> None:
        self._proc.kill()
        self._proc.join()

    def respawn(self) -> None:
        self._conn.close()
        self._proc.join()
        self._proc.close()
        self._start()

    def close(self) -> None:
        self._conn.close()
        if self._proc.is_alive():
            self._proc.terminate()
        self._proc.join()
        self._proc.close()


# -- the run ----------------------------------------------------------------


def run_cluster(config: ClusterConfig) -> ClusterResult:
    """Run one scenario across shards; see the module docstring."""
    scenario = config.scenario
    if config.mode not in ("spawn", "inline"):
        raise ValueError(f"unknown cluster mode {config.mode!r}")
    if config.epoch_len <= 0:
        raise ValueError(f"epoch_len must be positive, got {config.epoch_len}")
    total_cycles = _exact_multiple(
        scenario.duration, config.epoch_len, "scenario duration"
    )
    _exact_multiple(DAY, config.epoch_len, "the day length")
    cut_every = 0
    if scenario.reconcile_every > 0:
        cut_every = _exact_multiple(
            scenario.reconcile_every, config.epoch_len, "reconcile_every"
        )
    cuts = set(range(cut_every, total_cycles, cut_every)) if cut_every else set()
    cuts.add(total_cycles)  # the final barrier is always a cut
    if not isinstance(config.lag, int) or config.lag < 0:
        raise ValueError(f"lag must be a non-negative int, got {config.lag!r}")
    if (config.kill_shard is None) != (config.kill_cycle is None):
        raise ValueError("kill_shard and kill_cycle must be set together")
    if config.kill_shard is not None:
        if not 0 <= config.kill_shard < config.n_shards:
            raise ValueError(f"kill_shard {config.kill_shard} out of range")
        if not 0 <= config.kill_cycle <= total_cycles:
            raise ValueError(f"kill_cycle {config.kill_cycle} out of range")
        if config.journal_dir is None:
            raise ValueError("fault injection needs a journal_dir to recover")
    if config.journal_dir is not None:
        os.makedirs(config.journal_dir, exist_ok=True)

    plan = plan_shards(scenario.n_isps, config.n_shards, seed=scenario.seed)
    specs = [
        ShardSpec(
            shard_id=shard,
            n_shards=config.n_shards,
            scenario=scenario,
            assignment=plan.assignment,
            epoch_len=config.epoch_len,
            total_cycles=total_cycles,
            journal_dir=config.journal_dir,
            traced=config.traced,
        )
        for shard in range(config.n_shards)
    ]
    if config.mode == "spawn":
        ctx = multiprocessing.get_context("spawn")
        handles = [_SpawnHandle(spec, ctx) for spec in specs]
    else:
        handles = [_InlineHandle(spec) for spec in specs]

    flags = (
        list(scenario.compliant)
        if scenario.compliant is not None
        else [True] * scenario.n_isps
    )
    bank = Bank()
    for isp_id, is_compliant in enumerate(flags):
        if is_compliant:
            # Zero account: the parent bank verifies, it holds no money
            # (the per-shard bank slices hold the real accounts).
            bank.register_isp(isp_id, initial_account=0)

    restarts = [0] * config.n_shards
    rounds: list[dict] = []
    all_consistent = True
    killed = False
    last_inputs: list[dict | None] = [None] * config.n_shards
    finals: list[dict | None] = [None] * config.n_shards

    def collect(shard: int, cycle: int) -> dict:
        """One shard's outputs for ``cycle``, surviving crashes."""
        while True:
            try:
                msg = handles[shard].recv(config.recv_timeout)
            except (EOFError, OSError):
                if config.journal_dir is None:
                    raise ClusterError(
                        f"shard {shard} died with no journal to recover from"
                    ) from None
                restarts[shard] += 1
                if restarts[shard] > 3 * (total_cycles + 1):
                    raise ClusterError(
                        f"shard {shard} keeps dying; giving up after "
                        f"{restarts[shard]} restarts"
                    ) from None
                handles[shard].respawn()
                handles[shard].send(last_inputs[shard])
                continue
            if msg["cycle"] < cycle:
                continue  # duplicate from a replayed journal epoch
            if msg["cycle"] > cycle:
                raise ClusterError(
                    f"shard {shard} ran ahead: expected cycle {cycle}, "
                    f"got {msg['cycle']}"
                )
            return msg

    try:
        if config.lag:
            finals, rounds, all_consistent, extra_report = _drive_bounded_lag(
                config, handles, bank, total_cycles, cuts, restarts
            )
            return _merge(
                config, plan, finals, rounds, all_consistent, restarts,
                extra_report=extra_report,
            )
        batches_for = [[] for _ in range(config.n_shards)]
        for cycle in range(total_cycles + 1):
            is_cut = cycle in cuts
            is_final = cycle == total_cycles
            for shard in range(config.n_shards):
                msg = {
                    "type": "inputs",
                    "cycle": cycle,
                    "batches": batches_for[shard],
                    "reconcile": is_cut,
                    "final": is_final,
                }
                last_inputs[shard] = msg
                handles[shard].send(msg)
            if (
                not killed
                and config.kill_shard is not None
                and cycle == config.kill_cycle
            ):
                handles[config.kill_shard].kill()
                killed = True
            outputs = [
                collect(shard, cycle) for shard in range(config.n_shards)
            ]
            if is_cut:
                merged, expected_round = {}, len(rounds)
                totals = expected_totals = 0
                for shard, out in enumerate(outputs):
                    cut = out["cut"]
                    if cut is None or cut["round_seq"] != expected_round:
                        raise ClusterError(
                            f"shard {shard} out of step at cut cycle "
                            f"{cycle}: {cut!r}"
                        )
                    merged.update(cut["replies"])
                    totals += cut["total_value"]
                    expected_totals += cut["expected_total_value"]
                report = bank.reconcile(merged)
                if not report.consistent:
                    all_consistent = False
                if totals != expected_totals:
                    raise ClusterError(
                        f"value not conserved at cut cycle {cycle}: "
                        f"{totals} != {expected_totals}"
                    )
                rounds.append(
                    {
                        "cycle": cycle,
                        "round_seq": expected_round,
                        "isps_polled": report.isps_polled,
                        "consistent": report.consistent,
                        "suspects": list(report.suspects),
                        "total_value": totals,
                        "expected_total_value": expected_totals,
                    }
                )
            if is_final:
                finals = outputs
                break
            batches_for = [[] for _ in range(config.n_shards)]
            for out in sorted(outputs, key=lambda o: o["shard"]):
                for dst, blob in out["batches"].items():
                    batches_for[dst].append(blob)
    finally:
        for handle in handles:
            handle.close()

    return _merge(config, plan, finals, rounds, all_consistent, restarts)


def _drive_bounded_lag(
    config: ClusterConfig,
    handles: list,
    bank: Bank,
    total_cycles: int,
    cuts: set[int],
    restarts: list[int],
) -> tuple[list[dict], list[dict], bool, dict]:
    """The asynchronous drive: shards up to ``config.lag`` epochs apart.

    No global rounds: each shard receives ``INPUTS(k)`` the moment (a)
    every peer's epoch ``k-1`` batch is buffered in the parent's
    :class:`BatchRouter` — which preserves the lockstep virtual
    delivery schedule, hence byte-identical finals — and (b) ``k`` is
    within ``lag`` epochs of the slowest shard's completed frontier.
    Cut replies stream into the bank's
    :class:`~repro.core.reconcile.StreamingReconciler` as they arrive;
    windows close in order, entirely off the shards' critical path.

    Returns ``(finals, rounds, all_consistent, extra_report)``.
    """
    n = config.n_shards
    lag = config.lag
    cut_cycles = sorted(cuts)
    window_of_cycle = {cycle: w for w, cycle in enumerate(cut_cycles)}
    rounds: list[dict] = []

    def record_round(report, meta) -> None:
        # Same row shape as the lockstep cut merge, built at window
        # closure so the list is ordered by round regardless of the
        # interleaving the shards actually produced.
        rounds.append(
            {
                "cycle": cut_cycles[meta["window"]],
                "round_seq": report.round_seq,
                "isps_polled": report.isps_polled,
                "consistent": report.consistent,
                "suspects": list(report.suspects),
                "total_value": meta["total_value"],
                "expected_total_value": meta["expected_total_value"],
            }
        )

    verifier = bank.stream_reconciler(
        max_lag=lag,
        totals_sources=range(n),
        strict=True,
        on_report=record_round,
    )
    router = BatchRouter(n)
    next_cycle = [0] * n
    completed = [0] * n
    finals: list[dict | None] = [None] * n
    # Inputs sent but not yet answered, per shard: exactly what a
    # respawned worker needs replayed after restoring its journal
    # (the journal is never older than the last answered cycle).
    retained: list[dict[int, dict]] = [{} for _ in range(n)]
    killed = False

    def send_input(shard: int) -> None:
        nonlocal killed
        cycle = next_cycle[shard]
        msg = {
            "type": "inputs",
            "cycle": cycle,
            "batches": router.take(shard, cycle - 1),
            "reconcile": cycle in cuts,
            "final": cycle == total_cycles,
        }
        retained[shard][cycle] = msg
        next_cycle[shard] = cycle + 1
        handles[shard].send(msg)
        if (
            not killed
            and config.kill_shard == shard
            and config.kill_cycle == cycle
        ):
            handles[shard].kill()
            killed = True

    def schedulable(shard: int) -> bool:
        cycle = next_cycle[shard]
        if finals[shard] is not None or cycle > total_cycles:
            return False
        if cycle > min(completed) + lag:
            return False  # flow control: bounded staleness + replay
        return router.ready(shard, cycle - 1)

    def recover(shard: int) -> None:
        if config.journal_dir is None:
            raise ClusterError(
                f"shard {shard} died with no journal to recover from"
            )
        restarts[shard] += 1
        if restarts[shard] > 3 * (total_cycles + 1):
            raise ClusterError(
                f"shard {shard} keeps dying; giving up after "
                f"{restarts[shard]} restarts"
            )
        handles[shard].respawn()
        for cycle in sorted(retained[shard]):
            handles[shard].send(retained[shard][cycle])

    def process(shard: int, msg: dict) -> None:
        cycle = msg["cycle"]
        if cycle < completed[shard]:
            return  # duplicate from a replayed journal epoch
        if cycle > completed[shard]:
            raise ClusterError(
                f"shard {shard} ran ahead: expected cycle "
                f"{completed[shard]}, got {cycle}"
            )
        if msg["type"] == "final":
            finals[shard] = msg
        else:
            for dst, blob in msg["batches"].items():
                router.put(shard, dst, cycle, blob)
        cut = msg["cut"]
        if cut is not None:
            window = window_of_cycle.get(cycle)
            if window is None or cut["round_seq"] != window:
                raise ClusterError(
                    f"shard {shard} out of step at cut cycle {cycle}: "
                    f"{cut!r}"
                )
            for isp_id in sorted(cut["replies"]):
                verifier.ingest_report(
                    isp_id, window, cut["replies"][isp_id]
                )
            verifier.ingest_totals(
                shard, window,
                cut["total_value"], cut["expected_total_value"],
            )
        completed[shard] = cycle + 1
        retained[shard].pop(cycle, None)

    while any(final is None for final in finals):
        progress = False
        for shard in range(n):
            if finals[shard] is not None:
                continue
            while finals[shard] is None and handles[shard].poll(0):
                try:
                    msg = handles[shard].recv(config.recv_timeout)
                except (EOFError, OSError):
                    recover(shard)
                    progress = True
                    continue
                process(shard, msg)
                progress = True
        for shard in range(n):
            while schedulable(shard):
                send_input(shard)
                progress = True
        if progress:
            continue
        if config.mode != "spawn":
            raise ClusterError(
                "bounded-lag drive stalled with no runnable shard"
            )
        pending = [
            handles[shard].connection
            for shard in range(n)
            if finals[shard] is None
        ]
        if not multiprocessing.connection.wait(
            pending, timeout=config.recv_timeout
        ):
            raise ClusterError(
                f"no shard sent anything for {config.recv_timeout}s; "
                "cluster run is wedged"
            )
    summary = verifier.finalize()
    extra_report = {"reconcile": summary}
    return finals, rounds, verifier.all_consistent, extra_report


def _merge(
    config: ClusterConfig,
    plan: ShardPlan,
    finals: list[dict],
    rounds: list[dict],
    all_consistent: bool,
    restarts: list[int],
    extra_report: dict | None = None,
) -> ClusterResult:
    """Fold per-shard final states into the invariant manifest + report."""
    scenario = config.scenario
    accounting: dict[str, object] = {
        "isps": {},
        "bank_deposits": 0,
        "external_deposit": 0,
        "total_value": 0,
        "expected_total_value": 0,
    }
    events_acc = AdditiveMultisetDigest(exclude_fields=("seq",))
    ledger_acc = AdditiveMultisetDigest(include_types=LEDGER_EVENT_TYPES)
    counters: dict[str, int] = {}
    detections: list[tuple[int, int, int, int]] = []
    attempted = 0
    shard_detail: dict[str, dict] = {}
    for final in finals:
        acc = final["accounting"]
        accounting["isps"].update(acc["isps"])
        for key in (
            "bank_deposits",
            "external_deposit",
            "total_value",
            "expected_total_value",
        ):
            accounting[key] += acc[key]
        for name, state in (
            ("events", events_acc),
            ("ledger", ledger_acc),
        ):
            piece = AdditiveMultisetDigest()
            piece.load_state(final["digests"][name])
            state.merge(piece)
        for name, value in final["counters"].items():
            counters[name] = counters.get(name, 0) + value
        detections.extend(tuple(d) for d in final["detections"])
        attempted += final["attempted"]
        shard_detail[str(final["shard"])] = {
            "isps": sorted(plan.shard_isps(final["shard"])),
            "attempted": final["attempted"],
            "exported": final["exported"],
            "imported": final["imported"],
            "restored": final["restored"],
            "events_digest": final["digests"]["events"],
            "ledger_digest": final["digests"]["ledger"],
        }
    detections.sort()
    conserved = (
        accounting["total_value"] == accounting["expected_total_value"]
    )

    balances_digest = hashlib.sha256(
        json.dumps(
            accounting, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    ).hexdigest()
    exporter = MetricsExporter()
    exporter.add_static("zmail", counters)

    manifest = RunManifest(
        seed=scenario.seed,
        config_digest=config_digest(scenario.config),
        event_count=events_acc.count,
        event_digest=events_acc.digest(),
        metrics_digest=exporter.digest(),
        extra={
            # Shard-count-invariant facts only: nothing here may depend
            # on n_shards, mode, restarts or scheduling — these bytes
            # are the cmp oracle for shard invariance.
            "runtime": "cluster",
            "n_isps": scenario.n_isps,
            "users_per_isp": scenario.users_per_isp,
            "duration": scenario.duration,
            "reconcile_every": scenario.reconcile_every,
            "epoch_len": config.epoch_len,
            "sends_attempted": attempted,
            "balances_digest": balances_digest,
            "ledger_event_count": ledger_acc.count,
            "ledger_digest": ledger_acc.digest(),
            "total_value": accounting["total_value"],
            "expected_total_value": accounting["expected_total_value"],
            "conserved": conserved,
            "rounds": len(rounds),
            "all_consistent": all_consistent,
            "zombies_detected": len(detections),
        },
    )
    report = {
        "n_shards": config.n_shards,
        "mode": config.mode,
        # The drive mode is report-only detail: the manifest above is
        # the lag-invariance cmp oracle and must never mention it.
        "lag": config.lag,
        "traced": config.traced,
        "epoch_len": config.epoch_len,
        "cycles": round(scenario.duration / config.epoch_len),
        "assignment": list(plan.assignment),
        "restarts": restarts,
        "shards": shard_detail,
        "rounds": rounds,
        "manifest_digest": manifest.digest(),
    }
    if extra_report:
        report.update(extra_report)
    return ClusterResult(
        manifest=manifest,
        report=report,
        accounting=accounting,
        detections=detections,
        rounds=rounds,
    )
