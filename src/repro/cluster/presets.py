"""Canonical cluster scenarios: one spec for CLI, CI smoke and tests.

The shard-invariance oracle only works if every harness runs *exactly*
the same scenario — the CLI, the CI determinism smoke and the test suite
all build theirs here so a digest mismatch always means the runtime
diverged, never that two call sites drifted apart.
"""

from __future__ import annotations

from ..core.config import ZmailConfig
from ..core.scenario import Scenario, SpammerSpec, ZombieSpec
from ..sim.clock import DAY, HOUR
from ..sim.workload import Address

__all__ = ["cluster_scenario", "smoke_scenario"]


def cluster_scenario(
    seed: int = 0,
    *,
    n_isps: int = 8,
    users_per_isp: int = 32,
    days: int = 2,
    normal_rate_per_day: float = 24.0,
    adversarial: bool = True,
) -> Scenario:
    """A mixed-traffic scenario sized by the caller.

    Eight compliant ISPs by default, legitimate mail plus (optionally)
    one funded spam campaign and one zombie outbreak, reconciled daily —
    the same ingredient list as the macro benchmark's canonical
    scenario, parameterized so the CLI can scale it up or down.
    """
    if n_isps < 2:
        raise ValueError(f"a cluster scenario needs >= 2 ISPs, got {n_isps}")
    spammers = []
    zombies = []
    if adversarial:
        volume = int(users_per_isp * normal_rate_per_day * days * 2)
        spammers = [
            SpammerSpec(
                Address(0, 0),
                volume=volume,
                war_chest=volume // 3,
                start=0.0,
                duration=days * DAY,
            )
        ]
        zombies = [
            ZombieSpec(
                Address(1, users_per_isp // 2),
                rate_per_hour=120.0,  # 12h at this rate tops the 500/day limit
                start=6 * HOUR,
                end=18 * HOUR,
            )
        ]
    return Scenario(
        n_isps=n_isps,
        users_per_isp=users_per_isp,
        config=ZmailConfig(
            default_daily_limit=500,
            default_user_balance=200,
            auto_topup_amount=50,
        ),
        seed=seed,
        duration=days * DAY,
        normal_rate_per_day=normal_rate_per_day,
        spammers=spammers,
        zombies=zombies,
        reconcile_every=DAY,
    )


def smoke_scenario(seed: int = 0) -> Scenario:
    """The small fixed scenario CI's determinism smoke and tests share."""
    return cluster_scenario(
        seed, n_isps=6, users_per_isp=12, days=2, normal_rate_per_day=16.0
    )
