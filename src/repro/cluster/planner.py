"""Shard planner: deterministic partition of ISPs across workers.

Every worker in a cluster run must agree on where each ISP lives without
talking to the others, and the partition must be a pure function of the
inputs so a restarted worker (or a re-run with a different process
count) lands on exactly the same layout. Two strategies share one entry
point:

* **Rendezvous hashing** (equal weights, the default): each ISP joins
  the shard with the highest ``SHA-256(seed:isp:shard)`` score. The
  assignment of one ISP depends only on ``(seed, isp_id, n_shards)`` —
  never on the other ISPs — which gives the planner its permutation
  stability: relabeling which ISPs exist in an equal-weight deployment
  cannot move the survivors.
* **Greedy weighted** (heaviest-first): when per-ISP weights are given
  (e.g. user counts in a future heterogeneous deployment), ISPs are
  placed heaviest-first onto the lightest shard, with deterministic
  tie-breaks (lower ISP id first, lower shard id wins a load tie).

Both are pure functions — no RNG state is consumed — so the planner can
be called anywhere (parent, worker, tests) with identical results.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["ShardPlan", "shard_of", "plan_shards"]


def _score(seed: int, isp_id: int, shard_id: int) -> int:
    payload = f"{seed}:{isp_id}:{shard_id}".encode("ascii")
    return int.from_bytes(hashlib.sha256(payload).digest(), "big")


def shard_of(isp_id: int, n_shards: int, *, seed: int = 0) -> int:
    """The rendezvous-hash home shard for one ISP.

    A pure function of ``(seed, isp_id, n_shards)``: the highest-scoring
    shard wins. Every participant computes the same answer locally.
    """
    if n_shards <= 0:
        raise ValueError(f"need at least one shard, got {n_shards}")
    return max(range(n_shards), key=lambda shard: _score(seed, isp_id, shard))


@dataclass(frozen=True)
class ShardPlan:
    """A complete, validated ISP→shard assignment."""

    n_isps: int
    n_shards: int
    seed: int
    assignment: tuple[int, ...]  # assignment[isp_id] -> shard_id

    def shard_isps(self, shard_id: int) -> frozenset[int]:
        """The set of ISP ids homed on ``shard_id``."""
        return frozenset(
            isp_id
            for isp_id, shard in enumerate(self.assignment)
            if shard == shard_id
        )

    def shards(self) -> list[frozenset[int]]:
        """Per-shard ISP sets, indexed by shard id. Disjoint and total."""
        return [self.shard_isps(shard) for shard in range(self.n_shards)]

    def home(self, isp_id: int) -> int:
        """The shard owning ``isp_id``."""
        return self.assignment[isp_id]


def plan_shards(
    n_isps: int,
    n_shards: int,
    *,
    seed: int = 0,
    weights: list[int] | None = None,
) -> ShardPlan:
    """Partition ``n_isps`` ISPs across ``n_shards`` workers.

    Equal weights (``weights=None`` or all identical) use rendezvous
    hashing; otherwise the greedy heaviest-first balancer runs. Either
    way the result is total (every ISP placed), disjoint (exactly one
    home each) and deterministic for a given ``(seed, n_isps, n_shards,
    weights)`` — the properties the hypothesis suite pins down.
    """
    if n_isps <= 0:
        raise ValueError(f"need at least one ISP, got {n_isps}")
    if not 1 <= n_shards <= n_isps:
        raise ValueError(
            f"n_shards must be in [1, {n_isps}] for {n_isps} ISPs, "
            f"got {n_shards}"
        )
    if weights is not None and len(weights) != n_isps:
        raise ValueError("weights length must equal n_isps")

    if weights is None or len(set(weights)) <= 1:
        assignment = tuple(
            shard_of(isp_id, n_shards, seed=seed) for isp_id in range(n_isps)
        )
    else:
        loads = [0] * n_shards
        placed: dict[int, int] = {}
        for isp_id in sorted(range(n_isps), key=lambda i: (-weights[i], i)):
            shard = min(range(n_shards), key=lambda s: (loads[s], s))
            placed[isp_id] = shard
            loads[shard] += weights[isp_id]
        assignment = tuple(placed[isp_id] for isp_id in range(n_isps))
    return ShardPlan(
        n_isps=n_isps, n_shards=n_shards, seed=seed, assignment=assignment
    )
