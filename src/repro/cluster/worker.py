"""One shard worker: a ZmailNetwork slice driven in epoch lockstep.

A :class:`ShardWorker` owns the ISPs its :class:`ShardSpec` assigns to
it — materialized as real :class:`~repro.core.isp.CompliantISP` /
``NonCompliantISP`` nodes, with every other ISP a
:class:`~repro.core.isp.RemoteISP` placeholder — plus its own bank
slice, metrics registry, optional tracer and workload slice. Workers
never talk to each other directly; the parent forwards opaque
pre-pickled letter batches between them (star topology), so a SIGKILLed
worker can never corrupt a peer's channel.

The lockstep cycle ``k`` (virtual barrier time ``B_k = k * epoch_len``):

1. receive ``INPUTS(k)`` — peer batches from epoch ``k-1``, plus the
   reconcile and final flags;
2. **barrier work at** ``B_k``: midnight/rebalance via ``note_time``,
   then deliver the merged inbound + locally-pending letters sorted by
   ``(src_isp, seq)`` — a shard-invariant order; if a reconcile cut is
   due, assert zero letters in flight and take the §4.4 snapshot of
   every local ISP;
3. journal the post-barrier durable state (atomic write-then-rename);
4. run epoch ``k``: consume workload requests with ``time <
   B_{k+1}`` strictly — boundary requests belong to the next epoch, on
   the far side of the cut;
5. send ``OUTPUTS(k)``: one tagged batch per peer shard, plus the cut
   replies when one was taken.

Determinism: every input to steps 2 and 4 is a pure function of
``(scenario, plan, epoch_len)`` — never of shard count, wall clock or
scheduling — which is why N=1, 2 and 4 shard runs merge to identical
digests. Crash recovery replays from the journal: barrier ``k`` applied,
epoch ``k`` re-run from the workload position, duplicate outputs
dropped by the parent and duplicate inputs dropped here (``cycle <=
last barrier``), so every letter and ledger event lands exactly once.

The worker contract is *sequential cycles*, not lockstep: it requires
inputs in cycle order but never that the parent wait for its peers.
The bounded-lag drive (``ClusterConfig.lag >= 1``) exploits exactly
that — it pipelines up to K cycles of inputs into the channel while
other shards trail behind, and because each ``INPUTS(k)`` still carries
every peer's epoch ``k-1`` batch, the state evolution (and so every
digest) is bit-identical to the lockstep drive.
"""

from __future__ import annotations

import collections
import itertools
import json
import os
import pickle
from dataclasses import dataclass

from ..core.isp import CompliantISP
from ..core.persistence import (
    bank_state,
    isp_state,
    load_bank_state,
    load_isp_state,
)
from ..core.protocol import ZmailNetwork
from ..core.scenario import Scenario
from ..core.zombie import ZombieMonitor
from ..errors import SimulationError
from ..obs.schema import LEDGER_EVENT_TYPES
from ..obs.trace import AdditiveMultisetDigest, DigestSink, TraceRecorder
from ..sim.rng import SeededStreams, derive_seed
from ..sim.workload import merge_workloads
from .links import (
    InterShardLink,
    LetterSequencer,
    ShardOutbox,
    decode_letter,
    encode_letter,
)

__all__ = ["JOURNAL_FORMAT", "ShardSpec", "ShardWorker", "worker_entry"]

JOURNAL_FORMAT = 1


@dataclass(frozen=True)
class ShardSpec:
    """Everything one worker needs — picklable for spawn start-up."""

    shard_id: int
    n_shards: int
    scenario: Scenario
    assignment: tuple[int, ...]  # isp_id -> shard_id (from the planner)
    epoch_len: float
    total_cycles: int
    journal_dir: str | None = None
    traced: bool = True

    @property
    def local_isps(self) -> frozenset[int]:
        return frozenset(
            isp_id
            for isp_id, shard in enumerate(self.assignment)
            if shard == self.shard_id
        )

    @property
    def journal_path(self) -> str | None:
        if self.journal_dir is None:
            return None
        return os.path.join(self.journal_dir, f"shard{self.shard_id}.json")


class ShardWorker:
    """The shard state machine; transport-agnostic (see :func:`worker_entry`)."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.local = spec.local_isps
        scenario = spec.scenario
        self._peers = [
            s for s in range(spec.n_shards) if s != spec.shard_id
        ]
        # Timestamps in worker traces are shard-invariant by construction
        # (sends at request time, barrier work at B_k), so the full-event
        # accumulator keeps them and drops only the per-worker seq.
        # "midnight" is per-*network* control chatter — every shard emits
        # an identical copy at each day boundary, so it is the one event
        # type whose multiset would scale with shard count.
        self.events_acc = AdditiveMultisetDigest(
            exclude_types=("midnight",), exclude_fields=("seq",)
        )
        self.ledger_acc = AdditiveMultisetDigest(
            include_types=LEDGER_EVENT_TYPES
        )
        tracer = None
        if spec.traced:
            tracer = TraceRecorder(
                sink=DigestSink(self.events_acc, self.ledger_acc)
            )
        self.network = ZmailNetwork(
            n_isps=scenario.n_isps,
            users_per_isp=scenario.users_per_isp,
            compliant=scenario.compliant,
            config=scenario.config,
            seed=derive_seed(scenario.seed, f"shard{spec.shard_id}"),
            transport=self._transport,
            local_isps=self.local,
            tracer=tracer,
        )
        for spammer in scenario.spammers:
            if spammer.war_chest:
                # No-op for remote spammers: their home shard funds them.
                self.network.fund_user(
                    spammer.address, epennies=spammer.war_chest
                )
        self._sequencer = LetterSequencer()
        self._outbox = ShardOutbox(spec.shard_id, self._peers)
        self._links = {s: InterShardLink(s) for s in self._peers}
        self._pending_local: list[tuple[int, int, object]] = []
        self._pending_cut: dict | None = None
        self._pending_outputs: dict | None = None
        self._last_barrier = -1
        self.round_seq = 0
        self.attempted = 0
        self.exported = 0
        self.imported = 0
        self.restored = False
        self._requests = merge_workloads(
            *scenario.workload_streams(
                SeededStreams(scenario.seed), sender_isps=self.local
            )
        )
        self._next_request = next(self._requests, None)

        path = spec.journal_path
        if path is not None and os.path.exists(path):
            self._restore(path)

    # -- transport hook (called by the network for every cross-ISP letter) --

    def _transport(self, letter) -> None:
        seq = self._sequencer.stamp(letter.src_isp)
        dst_shard = self.spec.assignment[letter.dst_isp]
        if dst_shard == self.spec.shard_id:
            # Local cross-ISP mail waits for the barrier too: delivery
            # timing must not depend on whether the peer shares a shard.
            self._pending_local.append((letter.src_isp, seq, letter))
        else:
            self._outbox.add(dst_shard, encode_letter(letter, seq))
            if letter.paid:
                # The value travels with the letter; the importing shard
                # re-books it before delivery.
                self.network.paid_letters_in_flight -= 1
            self.exported += 1

    # -- the lockstep cycle ------------------------------------------------

    def take_pending_outputs(self) -> dict | None:
        """Outputs regenerated during journal restore (send-first)."""
        outputs, self._pending_outputs = self._pending_outputs, None
        return outputs

    def handle_inputs(self, msg: dict) -> dict | None:
        """Process one ``INPUTS`` message; returns outputs or ``None``.

        ``None`` means the message was a stale duplicate (the parent
        resends the last inputs after a respawn) and was ignored.
        """
        cycle = msg["cycle"]
        if cycle <= self._last_barrier:
            return None
        if cycle != self._last_barrier + 1:
            raise SimulationError(
                f"shard {self.spec.shard_id}: expected inputs for cycle "
                f"{self._last_barrier + 1}, got {cycle}"
            )
        self._apply_barrier(cycle, msg["batches"], cut=msg["reconcile"])
        self._last_barrier = cycle
        if msg["final"]:
            return self._final_outputs()
        self._write_journal()
        return self._run_epoch()

    def _apply_barrier(
        self, cycle: int, blobs: list[bytes], *, cut: bool
    ) -> None:
        barrier_time = cycle * self.spec.epoch_len
        network = self.network
        # Midnight/rebalance first: it commutes with the deliveries below
        # (disjoint state) and stamps them all at exactly t = B_k.
        network.note_time(barrier_time)
        merged: list[tuple[int, int, object, bool]] = []
        for blob in blobs:
            batch = pickle.loads(blob)
            letters = self._links[batch["src_shard"]].accept(batch)
            if letters is None:
                continue  # duplicate from a restarted peer
            for wire in letters:
                seq, letter = decode_letter(wire)
                merged.append((letter.src_isp, seq, letter, True))
        for src_isp, seq, letter in self._pending_local:
            merged.append((src_isp, seq, letter, False))
        self._pending_local = []
        merged.sort(key=lambda item: (item[0], item[1]))
        for _src, _seq, letter, is_import in merged:
            if is_import:
                self.imported += 1
                if letter.paid:
                    network.paid_letters_in_flight += 1
            network.deliver_transported(letter)
        if cut:
            self._take_cut()

    def _take_cut(self) -> None:
        network = self.network
        if network.paid_letters_in_flight:
            raise SimulationError(
                f"shard {self.spec.shard_id}: {network.paid_letters_in_flight} "
                "letters in flight at a barrier cut"
            )
        replies: dict[int, dict[int, int]] = {}
        for isp_id, isp in sorted(network.compliant_isps().items()):
            isp.begin_snapshot(self.round_seq)
            replies[isp_id] = isp.snapshot_reply()
            isp.resume_sending()
        self._pending_cut = {
            "round_seq": self.round_seq,
            "replies": replies,
            "total_value": network.total_value(),
            "expected_total_value": network.expected_total_value(),
        }
        self.round_seq += 1

    def _run_epoch(self) -> dict:
        cycle = self._last_barrier
        end = (cycle + 1) * self.spec.epoch_len
        network = self.network
        request = self._next_request
        # Strictly < end: a request at exactly the barrier belongs to the
        # next epoch, after the cut — the cut-consistency invariant.
        while request is not None and request.time < end:
            network.note_time(request.time)
            network.send(request.sender, request.recipient, request.kind)
            self.attempted += 1
            request = next(self._requests, None)
        self._next_request = request
        batches = self._outbox.flush(cycle)
        cut, self._pending_cut = self._pending_cut, None
        return {
            "type": "outputs",
            "shard": self.spec.shard_id,
            "cycle": cycle,
            "batches": {
                dst: pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL)
                for dst, batch in batches.items()
            },
            "cut": cut,
        }

    def _final_outputs(self) -> dict:
        network = self.network
        monitor = ZombieMonitor(network)
        monitor.poll()
        cut, self._pending_cut = self._pending_cut, None
        accounting: dict[str, object] = {
            "isps": {},
            "bank_deposits": network.bank.total_deposits(),
            "external_deposit": network._external_deposit,
            "total_value": network.total_value(),
            "expected_total_value": network.expected_total_value(),
        }
        for isp_id, isp in sorted(network.compliant_isps().items()):
            accounting["isps"][str(isp_id)] = {
                "users": [
                    [user.user_id, user.account, user.balance]
                    for user in isp.ledger.users()
                ],
                "pool": isp.ledger.pool,
                "cash": isp.ledger.cash,
                "bank_account": network.bank.account_balance(isp_id),
            }
        return {
            "type": "final",
            "shard": self.spec.shard_id,
            "cycle": self._last_barrier,
            "cut": cut,
            "accounting": accounting,
            "counters": dict(network.metrics.snapshot()["counters"]),
            "digests": {
                "events": self.events_acc.state_dict(),
                "ledger": self.ledger_acc.state_dict(),
            },
            "detections": [
                [d.address.isp, d.address.user,
                 d.messages_before_block, d.daily_limit]
                for d in monitor.detections
            ],
            "attempted": self.attempted,
            "exported": self.exported,
            "imported": self.imported,
            "restored": self.restored,
        }

    # -- journal / restore -------------------------------------------------

    def _write_journal(self) -> None:
        path = self.spec.journal_path
        if path is None:
            return
        network = self.network
        pending_cut = None
        if self._pending_cut is not None:
            pending_cut = {
                "round_seq": self._pending_cut["round_seq"],
                "replies": {
                    str(isp): {str(peer): v for peer, v in reply.items()}
                    for isp, reply in self._pending_cut["replies"].items()
                },
                "total_value": self._pending_cut["total_value"],
                "expected_total_value": self._pending_cut[
                    "expected_total_value"
                ],
            }
        state = {
            "format": JOURNAL_FORMAT,
            "cycle": self._last_barrier,
            "round_seq": self.round_seq,
            "last_day_seen": network._last_day_seen,
            "attempted": self.attempted,
            "exported": self.exported,
            "imported": self.imported,
            "external_deposit": network._external_deposit,
            "isps": {
                str(isp_id): isp_state(isp)
                for isp_id, isp in sorted(network.compliant_isps().items())
            },
            "bank": bank_state(network.bank),
            "nonces": {
                str(isp_id): source._counter
                for isp_id, source in sorted(
                    network._nonce_sources.items()
                )
            },
            "counters": dict(network.metrics.snapshot()["counters"]),
            "letter_seq": self._sequencer.state_dict(),
            "links": {
                str(src): link.expected_epoch
                for src, link in self._links.items()
            },
            "digests": {
                "events": self.events_acc.state_dict(),
                "ledger": self.ledger_acc.state_dict(),
            },
            "pending_cut": pending_cut,
        }
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(state, handle, sort_keys=True)
        os.replace(tmp, path)  # atomic: a crash mid-write keeps the old one

    def _restore(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            state = json.load(handle)
        if state.get("format") != JOURNAL_FORMAT:
            raise SimulationError(
                f"unsupported shard journal format {state.get('format')!r}"
            )
        network = self.network
        for isp_key, blob in state["isps"].items():
            isp = network.isps[int(isp_key)]
            assert isinstance(isp, CompliantISP)
            load_isp_state(isp, blob)
        load_bank_state(network.bank, state["bank"])
        for isp_key, counter in state["nonces"].items():
            # Restoring the counter alone replays the same hash-chain
            # nonce sequence the pre-crash worker would have issued.
            network._nonce_sources[int(isp_key)]._counter = int(counter)
        for name, value in state["counters"].items():
            network.metrics.counter(name).value = value
        network._last_day_seen = int(state["last_day_seen"])
        network._external_deposit = int(state["external_deposit"])
        self.attempted = int(state["attempted"])
        self.exported = int(state["exported"])
        self.imported = int(state["imported"])
        self.round_seq = int(state["round_seq"])
        self._sequencer.load_state(state["letter_seq"])
        for src_key, expected in state["links"].items():
            self._links[int(src_key)].expected_epoch = int(expected)
        self.events_acc.load_state(state["digests"]["events"])
        self.ledger_acc.load_state(state["digests"]["ledger"])
        if state["pending_cut"] is not None:
            blob = state["pending_cut"]
            self._pending_cut = {
                "round_seq": int(blob["round_seq"]),
                "replies": {
                    int(isp): {int(peer): v for peer, v in reply.items()}
                    for isp, reply in blob["replies"].items()
                },
                "total_value": blob["total_value"],
                "expected_total_value": blob["expected_total_value"],
            }
        cycle = int(state["cycle"])
        self._last_barrier = cycle
        network._direct_now = cycle * self.spec.epoch_len
        # Replay the workload position. ``attempted`` requests were
        # dispatched before the journal was written and one more sat in
        # the lookahead buffer; the constructor already pulled request
        # #0 into that buffer, so skip ``attempted - 1`` further and
        # re-buffer — when nothing was dispatched yet the constructor's
        # pull is already the right buffer.
        if self.attempted:
            collections.deque(
                itertools.islice(self._requests, self.attempted - 1),
                maxlen=0,
            )
            self._next_request = next(self._requests, None)
        self.restored = True
        # Re-run the journaled epoch; the parent drops the duplicate
        # outputs if the crash happened after they were first sent.
        self._pending_outputs = self._run_epoch()


def worker_entry(conn, spec: ShardSpec) -> None:
    """The worker message loop over any ``send``/``recv`` channel.

    Transport-agnostic on purpose: the spawn runtime passes one end of a
    ``multiprocessing.Pipe``, and the test suite drives the same loop
    from a thread so the in-process coverage tracer sees it.
    """
    worker = ShardWorker(spec)
    outputs = worker.take_pending_outputs()
    if outputs is not None:
        conn.send(outputs)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg.get("type") == "stop":
            return
        outputs = worker.handle_inputs(msg)
        if outputs is None:
            continue
        conn.send(outputs)
        if outputs["type"] == "final":
            return
