"""An asyncio SMTP client matching :mod:`repro.smtp.server`.

The client speaks the same RFC 821 subset: EHLO, MAIL FROM, RCPT TO, DATA
(with dot-stuffing), QUIT. :func:`send_message` is the synchronous
convenience wrapper used by examples.
"""

from __future__ import annotations

import asyncio

from ..errors import SMTPPermanentError, SMTPProtocolError, SMTPTemporaryError
from .message import MailMessage
from .transport import Envelope

__all__ = ["SMTPClient", "send_message"]


class SMTPClient:
    """One SMTP connection to a server; usable for multiple messages.

    Example::

        client = SMTPClient(host, port)
        await client.connect()
        await client.send(Envelope("a@x.example", "b@y.example", msg))
        await client.quit()
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    # -- low-level ----------------------------------------------------------

    async def _expect(self, *codes: int) -> tuple[int, str]:
        assert self._reader is not None
        line = await self._reader.readline()
        if not line:
            raise SMTPProtocolError("server closed connection")
        text = line.decode("ascii", errors="replace").rstrip("\r\n")
        if len(text) < 3 or not text[:3].isdigit():
            raise SMTPProtocolError(f"malformed reply {text!r}")
        code = int(text[:3])
        message = text[4:] if len(text) > 4 else ""
        if code not in codes:
            if 400 <= code < 500:
                raise SMTPTemporaryError(code, message)
            raise SMTPPermanentError(code, message)
        return code, message

    async def _command(self, line: str, *codes: int) -> tuple[int, str]:
        assert self._writer is not None
        self._writer.write(f"{line}\r\n".encode("ascii"))
        await self._writer.drain()
        return await self._expect(*codes)

    # -- session ----------------------------------------------------------------

    async def connect(self, *, helo_name: str = "client.example") -> None:
        """Open the connection and complete the EHLO exchange."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        await self._expect(220)
        await self._command(f"EHLO {helo_name}", 250)

    async def send(self, envelope: Envelope) -> None:
        """Transmit one message (single recipient) on the open session."""
        if self._writer is None:
            raise SMTPProtocolError("client is not connected")
        await self._command(f"MAIL FROM:<{envelope.mail_from}>", 250)
        await self._command(f"RCPT TO:<{envelope.rcpt_to}>", 250)
        await self._command("DATA", 354)
        payload = envelope.message.serialize()
        stuffed_lines = [
            "." + line if line.startswith(".") else line
            for line in payload.split("\r\n")
        ]
        body = "\r\n".join(stuffed_lines)
        assert self._writer is not None
        self._writer.write(f"{body}\r\n.\r\n".encode("utf-8"))
        await self._writer.drain()
        await self._expect(250)

    async def quit(self) -> None:
        """Send QUIT and close the connection."""
        if self._writer is None:
            return
        try:
            await self._command("QUIT", 221)
        finally:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass
            self._reader = None
            self._writer = None


def send_message(
    host: str, port: int, sender: str, recipient: str, message: MailMessage
) -> None:
    """Synchronous one-shot send: connect, transmit, quit."""

    async def _run() -> None:
        client = SMTPClient(host, port)
        await client.connect()
        try:
            await client.send(Envelope(sender, recipient, message))
        finally:
            await client.quit()

    asyncio.run(_run())
