"""A compliant ISP's full SMTP gateway.

Ties the substrates together into the deployable unit the paper
envisions: one :class:`ZmailGateway` per compliant ISP that

* **outbound** — stamps messages with the ISP's ``X-Zmail-*`` headers and
  submits them over any :class:`~repro.smtp.transport.MailTransport`
  (in-memory for tests, real SMTP via :mod:`repro.smtp.client`);
* **inbound** — authenticates the stamp against the transport-level
  origin (a stamp naming a different ISP than the envelope's domain is
  forged and the message is rejected), drives the Zmail accounting on a
  shared :class:`~repro.core.protocol.ZmailNetwork`, and files the
  message into the recipient's :class:`Mailbox`;
* **acknowledgments** — mailing-list messages (``X-Zmail-List-Token``)
  are acknowledged automatically per §5: the ack email returns the
  e-penny to the distributor *without* reaching a human inbox.

With an :class:`~repro.core.overload.OverloadConfig` the gateway also
applies admission control to outbound submissions: saturation defers
(bounded queue, exponential-backoff retries via :meth:`ZmailGateway.pump`)
or sheds, and a deferred message that exhausts its retries is terminally
bounced with a DSN-style notice filed into the sender's own mailbox.
All gateway counters are exported through the shared network's
:class:`~repro.sim.metrics.MetricsRegistry` under ``gateway.*`` names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.overload import AdmissionController, DeferredItem, OverloadConfig, shed_class_for
from ..core.protocol import ZmailNetwork
from ..core.transfer import SendStatus
from ..errors import SimulationError, SMTPPermanentError
from ..sim.workload import Address, TrafficKind
from .address import from_sim_address, to_sim_address
from .message import MailMessage
from .transport import Envelope, MailTransport
from .zmail_headers import (
    CLASS_ACK,
    CLASS_NORMAL,
    ZmailStamp,
    is_ack,
    make_ack_message,
    read_stamp,
    stamp_message,
)

__all__ = ["Mailbox", "DeliveryRecord", "ZmailGateway"]


@dataclass
class DeliveryRecord:
    """One message filed into a mailbox."""

    envelope: Envelope
    paid: bool
    folder: str  # "inbox" | "junk"


@dataclass
class Mailbox:
    """A user's stored mail, split by folder."""

    inbox: list[DeliveryRecord] = field(default_factory=list)
    junk: list[DeliveryRecord] = field(default_factory=list)

    def file(self, record: DeliveryRecord) -> None:
        """Store a record in the folder it names."""
        if record.folder == "junk":
            self.junk.append(record)
        else:
            self.inbox.append(record)

    def __len__(self) -> int:
        return len(self.inbox) + len(self.junk)


class ZmailGateway:
    """One compliant ISP's SMTP face over a shared deployment.

    Args:
        network: The Zmail deployment this gateway accounts against.
        isp_id: Which compliant ISP this gateway fronts.
        transport: Where outbound mail (including automatic acks) goes.
        retain_messages: Keep full messages in mailboxes (tests/demos);
            disable for high-volume simulations.
        overload: Enables outbound admission control (token bucket +
            bounded deferred queue + priority shedding). ``None`` keeps
            the pre-overload behaviour exactly.
        clock: Virtual-time source for the admission layer; without one
            time only advances through :meth:`pump` calls.
    """

    def __init__(
        self,
        network: ZmailNetwork,
        isp_id: int,
        transport: MailTransport,
        *,
        retain_messages: bool = True,
        overload: OverloadConfig | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if isp_id not in network.compliant_isps():
            raise ValueError(f"isp {isp_id} is not compliant in this network")
        self.network = network
        self.isp_id = isp_id
        self.transport = transport
        self.retain_messages = retain_messages
        self.mailboxes: dict[int, Mailbox] = {}
        self.forged_rejected = 0
        self.acks_sent = 0
        self.acks_absorbed = 0
        self.rejected_sends = 0
        self.shed_sends = 0
        self.deferred_sends = 0
        self.bounced_sends = 0
        self.overload = overload
        self._clock = clock
        self._now = 0.0
        # Trace through the shared network's recorder so gateway events
        # interleave with the accounting events they cause.
        self.tracer = network.tracer
        self._admission: AdmissionController | None = None
        if overload is not None:
            self._admission = AdmissionController(f"gateway{isp_id}", overload)
            self._admission.on_bounce = self._bounce_deferred
        # Satellite observability: every gateway decision is visible
        # through the shared registry, summed across the network's
        # gateways under one namespace.
        metrics = network.metrics
        self._m = {
            name: metrics.counter(f"gateway.{name}").increment
            for name in (
                "forged_rejected", "acks_sent", "acks_absorbed",
                "rejected_sends", "shed", "deferred", "bounced",
                "submitted", "delivered_inbound",
            )
        }

    @property
    def domain(self) -> str:
        """The gateway's mail domain under the simulator convention."""
        return f"isp{self.isp_id}.example"

    def mailbox(self, user_id: int) -> Mailbox:
        """The (created-on-demand) mailbox of a local user."""
        box = self.mailboxes.get(user_id)
        if box is None:
            box = Mailbox()
            self.mailboxes[user_id] = box
        return box

    # -- outbound ------------------------------------------------------------------

    def submit_outbound(
        self,
        sender_user: int,
        recipient: Address,
        message: MailMessage,
        *,
        list_token: str | None = None,
    ) -> SendStatus:
        """A local user sends a message: admit, account, stamp, transport.

        When overload protection is on, admission control runs *before*
        any accounting — a shed or deferred message never touches the
        ledger, so e-penny conservation is independent of load shedding.
        ``SHED`` is a terminal refusal (SMTP 451 at the server face);
        ``DEFERRED`` means the message is queued and will be retried by
        :meth:`pump`. Raises nothing for ordinary refusals — the status
        tells the caller what happened.
        """
        kind = (
            TrafficKind.MAILING_LIST if list_token is not None
            else TrafficKind.NORMAL
        )
        if self._admission is not None:
            now = self._gateway_now()
            shed_class = shed_class_for(
                kind, paid=self.network.bank.is_compliant(recipient.isp)
            )
            verdict = self._admission.admit(now, shed_class)
            tracer = self.tracer
            if verdict == "shed":
                self.shed_sends += 1
                self._m["shed"]()
                if tracer.enabled:
                    tracer.emit(
                        "gateway.submit",
                        sender=str(Address(self.isp_id, sender_user)),
                        status=SendStatus.SHED.value,
                    )
                return SendStatus.SHED
            if verdict == "defer":
                self.deferred_sends += 1
                self._m["deferred"]()
                self._admission.defer(
                    now, (sender_user, recipient, message, list_token),
                    shed_class,
                )
                if tracer.enabled:
                    tracer.emit(
                        "gateway.submit",
                        sender=str(Address(self.isp_id, sender_user)),
                        status=SendStatus.DEFERRED.value,
                    )
                return SendStatus.DEFERRED
        return self._submit_admitted(
            sender_user, recipient, message, list_token=list_token, kind=kind
        )

    def _submit_admitted(
        self,
        sender_user: int,
        recipient: Address,
        message: MailMessage,
        *,
        list_token: str | None,
        kind: TrafficKind,
    ) -> SendStatus:
        """The pre-overload submission path: account, stamp, transport."""
        receipt = self.network.send(
            Address(self.isp_id, sender_user), recipient, kind
        )
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                "gateway.submit",
                sender=str(Address(self.isp_id, sender_user)),
                status=receipt.status.value,
            )
        if receipt.status.blocked or receipt.status is SendStatus.BUFFERED:
            self.rejected_sends += 1
            self._m["rejected_sends"]()
            return receipt.status
        stamped = stamp_message(
            message,
            ZmailStamp(
                sender_isp=f"isp{self.isp_id}",
                message_class=CLASS_NORMAL,
                list_token=list_token,
            ),
        )
        envelope = Envelope(
            mail_from=str(from_sim_address(Address(self.isp_id, sender_user))),
            rcpt_to=str(from_sim_address(recipient)),
            message=stamped,
        )
        if receipt.status is not SendStatus.DELIVERED_LOCAL:
            self.transport.submit(envelope)
        else:
            # Local mail never leaves the ISP; file it directly.
            self._file(recipient.user, envelope, paid=True, folder="inbox")
        self._m["submitted"]()
        return receipt.status

    # -- overload: deferred retries and terminal bounces ----------------------------

    def _gateway_now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return self._now

    def pump(self, now: float | None = None) -> int:
        """Retry due deferred submissions; returns how many were processed.

        Args:
            now: Virtual time of the pump; advances the gateway's internal
                clock when no ``clock`` callable was configured. ``None``
                reads the configured clock.

        Accepted retries run the normal submission path; exhausted ones
        are terminally bounced (the DSN notice is filed by the bounce
        hook). A no-op without overload protection.
        """
        if now is not None:
            self._now = max(self._now, now)
        if self._admission is None:
            return 0
        processed = 0
        for outcome, item in self._admission.pump(self._gateway_now()):
            processed += 1
            if outcome == "accept":
                sender_user, recipient, message, list_token = item.payload
                kind = (
                    TrafficKind.MAILING_LIST if list_token is not None
                    else TrafficKind.NORMAL
                )
                self._submit_admitted(
                    sender_user, recipient, message,
                    list_token=list_token, kind=kind,
                )
            # "bounce" outcomes were handled by the on_bounce hook.
        return processed

    def _bounce_deferred(self, now: float, item: DeferredItem, reason: str) -> None:
        """Terminal bounce: file a DSN-style notice with the sender."""
        self.bounced_sends += 1
        self._m["bounced"]()
        sender_user, recipient, original, _token = item.payload
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                "gateway.bounce", recipient=str(from_sim_address(recipient))
            )
        sender_address = str(from_sim_address(Address(self.isp_id, sender_user)))
        notice = MailMessage.compose(
            sender=f"mailer-daemon@{self.domain}",
            recipient=sender_address,
            subject="Undeliverable: message bounced",
            body=(
                f"Your message could not be delivered: {reason}.\n"
                f"Original subject: {original.subject or '(none)'}\n"
            ),
            extra_headers={
                "X-Failed-Recipient": str(from_sim_address(recipient)),
            },
        )
        envelope = Envelope(
            mail_from=f"mailer-daemon@{self.domain}",
            rcpt_to=sender_address,
            message=notice,
        )
        self._file(sender_user, envelope, paid=True, folder="inbox")

    @property
    def pending_sends(self) -> int:
        """Deferred submissions currently awaiting retry."""
        return self._admission.pending if self._admission is not None else 0

    def next_retry_due(self) -> float | None:
        """Earliest deferred retry time, or ``None`` (for pump scheduling)."""
        return (
            self._admission.next_due() if self._admission is not None else None
        )

    def pending_state(self) -> dict[str, object] | None:
        """The deferred outbound queue as a durable journal (or ``None``).

        Deferred submissions are mail the gateway *accepted* (the client
        got a 451-retry answer and walked away); losing them across a
        restart silently drops in-flight retries. The durable store
        persists this journal and :meth:`load_pending_state` rehydrates
        it on restart.
        """
        if self._admission is None:
            return None

        def enc(payload: object) -> object:
            sender_user, recipient, message, list_token = payload  # type: ignore[misc]
            return {
                "sender_user": sender_user,
                "recipient": [recipient.isp, recipient.user],
                "message": message.serialize(),
                "list_token": list_token,
            }

        return self._admission.state_dict(enc)

    def load_pending_state(self, state: dict[str, object] | None) -> None:
        """Rehydrate the deferred outbound queue from :meth:`pending_state`.

        Raises:
            SimulationError: if the journal is malformed or the gateway
                has no admission controller to receive it.
        """
        if state is None:
            return
        if self._admission is None:
            raise SimulationError(
                f"gateway{self.isp_id}: pending journal present but "
                "overload admission is disabled"
            )

        def dec(blob: object) -> object:
            try:
                return (
                    int(blob["sender_user"]),  # type: ignore[index]
                    Address(
                        int(blob["recipient"][0]),  # type: ignore[index]
                        int(blob["recipient"][1]),  # type: ignore[index]
                    ),
                    MailMessage.parse(blob["message"]),  # type: ignore[index]
                    blob["list_token"],  # type: ignore[index]
                )
            except (KeyError, IndexError, TypeError, ValueError) as exc:
                raise SimulationError(
                    f"gateway{self.isp_id}: malformed deferred payload: {exc}"
                ) from exc

        self._admission.load_state(state, dec)

    def admission_stats(self) -> dict[str, int]:
        """The admission controller's counters (zeros when overload is off)."""
        if self._admission is None:
            return {
                "attempts": 0, "accepted": 0, "shed": 0,
                "bounced": 0, "evicted": 0, "pending": 0, "peak_pending": 0,
            }
        a = self._admission
        return {
            "attempts": a.attempts,
            "accepted": a.accepted,
            "shed": a.shed,
            "bounced": a.bounced,
            "evicted": a.evicted,
            "pending": a.pending,
            "peak_pending": a.peak_pending,
        }

    # -- inbound --------------------------------------------------------------------

    def handle_inbound(self, envelope: Envelope) -> bool:
        """Transport delivery handler; returns ``True`` if accepted.

        The accounting (`network.send`) was already performed by the
        *sending* gateway — this side only verifies, files, and (for list
        messages) generates the §5 acknowledgment. Inbound acks are
        absorbed without reaching any inbox.

        Raises:
            SMTPPermanentError: 550 for recipients we do not host.
        """
        recipient = to_sim_address(envelope.rcpt_to)
        if recipient.isp != self.isp_id:
            raise SMTPPermanentError(550, f"{envelope.rcpt_to} not local")
        sender = to_sim_address(envelope.mail_from)
        stamp = read_stamp(envelope.message)

        tracer = self.tracer
        # A stamp asserting a different origin than the envelope is forged.
        if stamp is not None and stamp.sender_isp != f"isp{sender.isp}":
            self.forged_rejected += 1
            self._m["forged_rejected"]()
            if tracer.enabled:
                tracer.emit("gateway.inbound", outcome="forged")
            return False

        if is_ack(envelope.message):
            # §5: acks are processed automatically, never delivered.
            self.acks_absorbed += 1
            self._m["acks_absorbed"]()
            if tracer.enabled:
                tracer.emit("gateway.inbound", outcome="ack")
            return True

        paid = self.network.bank.is_compliant(sender.isp)
        folder = "inbox" if paid else "junk"
        self._file(recipient.user, envelope, paid=paid, folder=folder)
        self._m["delivered_inbound"]()
        if tracer.enabled:
            tracer.emit("gateway.inbound", outcome=folder)

        if stamp is not None and stamp.list_token is not None:
            self._auto_ack(recipient, envelope)
        return True

    def _auto_ack(self, recipient: Address, envelope: Envelope) -> None:
        """Generate the automatic §5 acknowledgment for a list message."""
        receipt = self.network.send(
            recipient, to_sim_address(envelope.mail_from), TrafficKind.ACK
        )
        if receipt.status.blocked:
            return
        ack = make_ack_message(
            envelope.message,
            ack_sender=envelope.rcpt_to,
            distributor=envelope.mail_from,
        )
        ack = stamp_message(
            ack,
            ZmailStamp(
                sender_isp=f"isp{self.isp_id}", message_class=CLASS_ACK
            ),
        )
        self.acks_sent += 1
        self._m["acks_sent"]()
        if receipt.status is not SendStatus.DELIVERED_LOCAL:
            self.transport.submit(
                Envelope(envelope.rcpt_to, envelope.mail_from, ack)
            )

    def _file(
        self, user_id: int, envelope: Envelope, *, paid: bool, folder: str
    ) -> None:
        record = DeliveryRecord(
            envelope=envelope if self.retain_messages else Envelope(
                envelope.mail_from, envelope.rcpt_to, MailMessage()
            ),
            paid=paid,
            folder=folder,
        )
        self.mailbox(user_id).file(record)
