"""A compliant ISP's full SMTP gateway.

Ties the substrates together into the deployable unit the paper
envisions: one :class:`ZmailGateway` per compliant ISP that

* **outbound** — stamps messages with the ISP's ``X-Zmail-*`` headers and
  submits them over any :class:`~repro.smtp.transport.MailTransport`
  (in-memory for tests, real SMTP via :mod:`repro.smtp.client`);
* **inbound** — authenticates the stamp against the transport-level
  origin (a stamp naming a different ISP than the envelope's domain is
  forged and the message is rejected), drives the Zmail accounting on a
  shared :class:`~repro.core.protocol.ZmailNetwork`, and files the
  message into the recipient's :class:`Mailbox`;
* **acknowledgments** — mailing-list messages (``X-Zmail-List-Token``)
  are acknowledged automatically per §5: the ack email returns the
  e-penny to the distributor *without* reaching a human inbox.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.protocol import ZmailNetwork
from ..core.transfer import SendStatus
from ..errors import SMTPPermanentError
from ..sim.workload import Address, TrafficKind
from .address import from_sim_address, to_sim_address
from .message import MailMessage
from .transport import Envelope, MailTransport
from .zmail_headers import (
    CLASS_ACK,
    CLASS_NORMAL,
    ZmailStamp,
    is_ack,
    make_ack_message,
    read_stamp,
    stamp_message,
)

__all__ = ["Mailbox", "DeliveryRecord", "ZmailGateway"]


@dataclass
class DeliveryRecord:
    """One message filed into a mailbox."""

    envelope: Envelope
    paid: bool
    folder: str  # "inbox" | "junk"


@dataclass
class Mailbox:
    """A user's stored mail, split by folder."""

    inbox: list[DeliveryRecord] = field(default_factory=list)
    junk: list[DeliveryRecord] = field(default_factory=list)

    def file(self, record: DeliveryRecord) -> None:
        """Store a record in the folder it names."""
        if record.folder == "junk":
            self.junk.append(record)
        else:
            self.inbox.append(record)

    def __len__(self) -> int:
        return len(self.inbox) + len(self.junk)


class ZmailGateway:
    """One compliant ISP's SMTP face over a shared deployment.

    Args:
        network: The Zmail deployment this gateway accounts against.
        isp_id: Which compliant ISP this gateway fronts.
        transport: Where outbound mail (including automatic acks) goes.
        retain_messages: Keep full messages in mailboxes (tests/demos);
            disable for high-volume simulations.
    """

    def __init__(
        self,
        network: ZmailNetwork,
        isp_id: int,
        transport: MailTransport,
        *,
        retain_messages: bool = True,
    ) -> None:
        if isp_id not in network.compliant_isps():
            raise ValueError(f"isp {isp_id} is not compliant in this network")
        self.network = network
        self.isp_id = isp_id
        self.transport = transport
        self.retain_messages = retain_messages
        self.mailboxes: dict[int, Mailbox] = {}
        self.forged_rejected = 0
        self.acks_sent = 0
        self.acks_absorbed = 0
        self.rejected_sends = 0

    @property
    def domain(self) -> str:
        """The gateway's mail domain under the simulator convention."""
        return f"isp{self.isp_id}.example"

    def mailbox(self, user_id: int) -> Mailbox:
        """The (created-on-demand) mailbox of a local user."""
        box = self.mailboxes.get(user_id)
        if box is None:
            box = Mailbox()
            self.mailboxes[user_id] = box
        return box

    # -- outbound ------------------------------------------------------------------

    def submit_outbound(
        self,
        sender_user: int,
        recipient: Address,
        message: MailMessage,
        *,
        list_token: str | None = None,
    ) -> SendStatus:
        """A local user sends a message: account, stamp, transport.

        Accounting runs first; only sends the ledger accepted reach the
        wire. Raises nothing for ordinary refusals — the status tells the
        caller what happened.
        """
        kind = (
            TrafficKind.MAILING_LIST if list_token is not None
            else TrafficKind.NORMAL
        )
        receipt = self.network.send(
            Address(self.isp_id, sender_user), recipient, kind
        )
        if receipt.status.blocked or receipt.status is SendStatus.BUFFERED:
            self.rejected_sends += 1
            return receipt.status
        stamped = stamp_message(
            message,
            ZmailStamp(
                sender_isp=f"isp{self.isp_id}",
                message_class=CLASS_NORMAL,
                list_token=list_token,
            ),
        )
        envelope = Envelope(
            mail_from=str(from_sim_address(Address(self.isp_id, sender_user))),
            rcpt_to=str(from_sim_address(recipient)),
            message=stamped,
        )
        if receipt.status is not SendStatus.DELIVERED_LOCAL:
            self.transport.submit(envelope)
        else:
            # Local mail never leaves the ISP; file it directly.
            self._file(recipient.user, envelope, paid=True, folder="inbox")
        return receipt.status

    # -- inbound --------------------------------------------------------------------

    def handle_inbound(self, envelope: Envelope) -> bool:
        """Transport delivery handler; returns ``True`` if accepted.

        The accounting (`network.send`) was already performed by the
        *sending* gateway — this side only verifies, files, and (for list
        messages) generates the §5 acknowledgment. Inbound acks are
        absorbed without reaching any inbox.

        Raises:
            SMTPPermanentError: 550 for recipients we do not host.
        """
        recipient = to_sim_address(envelope.rcpt_to)
        if recipient.isp != self.isp_id:
            raise SMTPPermanentError(550, f"{envelope.rcpt_to} not local")
        sender = to_sim_address(envelope.mail_from)
        stamp = read_stamp(envelope.message)

        # A stamp asserting a different origin than the envelope is forged.
        if stamp is not None and stamp.sender_isp != f"isp{sender.isp}":
            self.forged_rejected += 1
            return False

        if is_ack(envelope.message):
            # §5: acks are processed automatically, never delivered.
            self.acks_absorbed += 1
            return True

        paid = self.network.bank.is_compliant(sender.isp)
        folder = "inbox" if paid else "junk"
        self._file(recipient.user, envelope, paid=paid, folder=folder)

        if stamp is not None and stamp.list_token is not None:
            self._auto_ack(recipient, envelope)
        return True

    def _auto_ack(self, recipient: Address, envelope: Envelope) -> None:
        """Generate the automatic §5 acknowledgment for a list message."""
        receipt = self.network.send(
            recipient, to_sim_address(envelope.mail_from), TrafficKind.ACK
        )
        if receipt.status.blocked:
            return
        ack = make_ack_message(
            envelope.message,
            ack_sender=envelope.rcpt_to,
            distributor=envelope.mail_from,
        )
        ack = stamp_message(
            ack,
            ZmailStamp(
                sender_isp=f"isp{self.isp_id}", message_class=CLASS_ACK
            ),
        )
        self.acks_sent += 1
        if receipt.status is not SendStatus.DELIVERED_LOCAL:
            self.transport.submit(
                Envelope(envelope.rcpt_to, envelope.mail_from, ack)
            )

    def _file(
        self, user_id: int, envelope: Envelope, *, paid: bool, folder: str
    ) -> None:
        record = DeliveryRecord(
            envelope=envelope if self.retain_messages else Envelope(
                envelope.mail_from, envelope.rcpt_to, MailMessage()
            ),
            paid=paid,
            folder=folder,
        )
        self.mailbox(user_id).file(record)
