"""An asyncio SMTP server implementing the RFC 821 subset Zmail needs.

Supported verbs: HELO, EHLO, MAIL FROM, RCPT TO, DATA, RSET, NOOP, VRFY,
QUIT. The server performs dot-unstuffing on DATA and hands each completed
:class:`~repro.smtp.transport.Envelope` to a delivery handler. It exists
to demonstrate the paper's claim that Zmail "requires no change to SMTP":
the Zmail binding lives entirely in message headers and in the handler
behind the server.

Overload hardening: a concurrent-connection cap and per-session command
and error budgets (all answered with ``421``, the RFC 821 "service not
available, closing transmission channel" reply), plus an optional
admission gate consulted at MAIL time that temp-fails with ``451`` when
the system is saturated — backpressure instead of unbounded buffering.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

from ..errors import SMTPProtocolError
from ..obs.spans import NULL_SPANS, SpanRegistry
from ..obs.trace import NULL_TRACER, TraceRecorder
from .address import parse_address
from .message import MailMessage
from .transport import Envelope

__all__ = ["SMTPServer"]

_MAX_LINE = 4096
_MAX_MESSAGE = 1 << 20  # 1 MiB is plenty for simulation traffic

HandlerFn = Callable[[Envelope], None] | Callable[[Envelope], Awaitable[None]]


class SMTPServer:
    """A minimal but correct SMTP listener.

    Args:
        handler: Called (sync or async) once per accepted message, with one
            envelope per RCPT recipient.
        hostname: Name announced in the greeting banner.
        rcpt_checker: Optional predicate; returning ``False`` rejects the
            recipient with 550 (used to model non-compliant-mail policies).
        max_connections: Concurrent-session cap; connection attempts
            beyond it are greeted with ``421`` and closed immediately
            (counted in :attr:`connections_rejected`).
        max_session_commands: Commands one session may issue before the
            server closes it with ``421`` (anti-hogging budget).
        max_session_errors: Errored commands (4xx/5xx replies) one
            session may accumulate before a ``421`` close — a client
            spewing garbage loses its slot instead of burning cycles.
        admission: Optional gate consulted at MAIL time; returning
            ``False`` temp-fails the transaction with ``451`` (counted in
            :attr:`mail_tempfailed`), the SMTP face of admission control.
        tracer: Structured trace recorder; sessions emit
            ``smtp.session`` events. The server has no virtual clock, so
            events carry whatever clock the recorder was given (``t=0``
            for a bare recorder).
        spans: Wall-clock span registry; each session's lifetime is
            recorded under the ``smtp.session`` span.

    Example (see ``examples/smtp_demo.py`` for a full round-trip)::

        server = SMTPServer(handler, hostname="isp0.example")
        host, port = await server.start()
        ...
        await server.stop()
    """

    def __init__(
        self,
        handler: HandlerFn,
        *,
        hostname: str = "zmail.example",
        rcpt_checker: Callable[[str], bool] | None = None,
        max_connections: int = 64,
        max_session_commands: int = 1000,
        max_session_errors: int = 20,
        admission: Callable[[], bool] | None = None,
        tracer: TraceRecorder | None = None,
        spans: SpanRegistry | None = None,
    ) -> None:
        if max_connections < 1 or max_session_commands < 1 or max_session_errors < 1:
            raise ValueError("SMTP server budgets must be at least 1")
        self._handler = handler
        self.hostname = hostname
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.spans = spans if spans is not None else NULL_SPANS
        self._rcpt_checker = rcpt_checker
        self._server: asyncio.AbstractServer | None = None
        self.max_connections = max_connections
        self.max_session_commands = max_session_commands
        self.max_session_errors = max_session_errors
        self._admission = admission
        self._active_sessions = 0
        self.messages_accepted = 0
        self.sessions_served = 0
        self.connections_rejected = 0
        self.sessions_capped = 0
        self.mail_tempfailed = 0

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Start listening; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(self._serve_session, host, port)
        sock = self._server.sockets[0]
        bound_host, bound_port = sock.getsockname()[:2]
        return bound_host, bound_port

    async def stop(self) -> None:
        """Stop listening and wait for the listener to close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- session handling ------------------------------------------------------

    async def _serve_session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._active_sessions >= self.max_connections:
            self.connections_rejected += 1
            if self.tracer.enabled:
                self.tracer.emit("smtp.session", outcome="rejected")
            try:
                writer.write(
                    f"421 {self.hostname} too many connections, "
                    f"try again later\r\n".encode("ascii")
                )
                await writer.drain()
            except ConnectionError:  # pragma: no cover - client raced away
                pass
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except ConnectionError:  # pragma: no cover
                    pass
            return
        self._active_sessions += 1
        self.sessions_served += 1
        session = _Session(self, reader, writer)
        outcome = "served"
        try:
            with self.spans.span("smtp.session"):
                await session.run()
        except (ConnectionError, asyncio.IncompleteReadError):
            outcome = "aborted"
        finally:
            if self.tracer.enabled:
                self.tracer.emit("smtp.session", outcome=outcome)
            self._active_sessions -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass

    async def _dispatch(self, envelope: Envelope) -> None:
        result = self._handler(envelope)
        if asyncio.iscoroutine(result):
            await result
        self.messages_accepted += 1


class _Session:
    """State machine for one SMTP connection."""

    def __init__(
        self,
        server: SMTPServer,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.greeted = False
        self.mail_from: str | None = None
        self.rcpt_to: list[str] = []
        self.commands = 0
        self.errors = 0

    async def _reply(self, code: int, text: str) -> None:
        if code >= 400:
            self.errors += 1
        self.writer.write(f"{code} {text}\r\n".encode("ascii"))
        await self.writer.drain()

    async def _read_line(self) -> str:
        line = await self.reader.readline()
        if not line:
            raise ConnectionError("client closed connection")
        if len(line) > _MAX_LINE:
            raise SMTPProtocolError("line too long")
        return line.decode("ascii", errors="replace").rstrip("\r\n")

    def _reset(self) -> None:
        self.mail_from = None
        self.rcpt_to = []

    async def _over_budget(self) -> bool:
        """Check the per-session command and error budgets.

        Returns True (after sending the 421 goodbye) when either budget
        is exhausted, which terminates the session: a single client must
        not be able to hog the listener with an endless command stream
        or a torrent of garbage.
        """
        if self.commands > self.server.max_session_commands:
            self.server.sessions_capped += 1
            await self._reply(421, "too many commands, closing channel")
            return True
        if self.errors >= self.server.max_session_errors:
            self.server.sessions_capped += 1
            await self._reply(421, "too many errors, closing channel")
            return True
        return False

    async def run(self) -> None:
        await self._reply(220, f"{self.server.hostname} Zmail-repro SMTP ready")
        while True:
            line = await self._read_line()
            self.commands += 1
            if await self._over_budget():
                return
            verb, _, argument = line.partition(" ")
            verb = verb.upper()
            if verb in ("HELO", "EHLO"):
                self.greeted = True
                self._reset()
                await self._reply(250, f"{self.server.hostname} greets you")
            elif verb == "MAIL":
                await self._do_mail(argument)
            elif verb == "RCPT":
                await self._do_rcpt(argument)
            elif verb == "DATA":
                await self._do_data()
            elif verb == "RSET":
                self._reset()
                await self._reply(250, "OK")
            elif verb == "NOOP":
                await self._reply(250, "OK")
            elif verb == "VRFY":
                await self._reply(252, "cannot VRFY user, will attempt delivery")
            elif verb == "QUIT":
                await self._reply(221, f"{self.server.hostname} closing channel")
                return
            else:
                await self._reply(500, f"unrecognized command {verb!r}")

    async def _do_mail(self, argument: str) -> None:
        if not self.greeted:
            await self._reply(503, "send HELO/EHLO first")
            return
        if self.mail_from is not None:
            await self._reply(503, "nested MAIL command")
            return
        gate = self.server._admission
        if gate is not None and not gate():
            self.server.mail_tempfailed += 1
            await self._reply(451, "server overloaded, try again later")
            return
        upper = argument.upper()
        if not upper.startswith("FROM:"):
            await self._reply(501, "syntax: MAIL FROM:<address>")
            return
        raw = argument[5:].strip()
        try:
            address = parse_address(raw)
        except SMTPProtocolError:
            await self._reply(553, f"malformed reverse-path {raw!r}")
            return
        self.mail_from = str(address)
        await self._reply(250, "OK")

    async def _do_rcpt(self, argument: str) -> None:
        if self.mail_from is None:
            await self._reply(503, "need MAIL before RCPT")
            return
        upper = argument.upper()
        if not upper.startswith("TO:"):
            await self._reply(501, "syntax: RCPT TO:<address>")
            return
        raw = argument[3:].strip()
        try:
            address = parse_address(raw)
        except SMTPProtocolError:
            await self._reply(553, f"malformed forward-path {raw!r}")
            return
        checker = self.server._rcpt_checker
        if checker is not None and not checker(str(address)):
            await self._reply(550, f"recipient {address} rejected")
            return
        self.rcpt_to.append(str(address))
        await self._reply(250, "OK")

    async def _do_data(self) -> None:
        if not self.rcpt_to:
            await self._reply(503, "need RCPT before DATA")
            return
        await self._reply(354, "start mail input; end with <CRLF>.<CRLF>")
        lines: list[str] = []
        size = 0
        oversize = False
        while True:
            line = await self._read_line()
            if line == ".":
                break
            if line.startswith("."):
                line = line[1:]  # dot-unstuffing (RFC 821 §4.5.2)
            size += len(line) + 2
            if size > _MAX_MESSAGE:
                # Keep consuming to the end-of-data marker so the rest of
                # the stream is not misread as commands; reject after.
                oversize = True
                lines.clear()
                continue
            if not oversize:
                lines.append(line)
        if oversize:
            await self._reply(552, "message exceeds maximum size")
            self._reset()
            return
        raw = "\r\n".join(lines)
        try:
            message = MailMessage.parse(raw)
        except SMTPProtocolError as exc:
            await self._reply(554, f"unparseable message: {exc}")
            self._reset()
            return
        assert self.mail_from is not None
        for recipient in self.rcpt_to:
            await self.server._dispatch(
                Envelope(self.mail_from, recipient, message)
            )
        self._reset()
        await self._reply(250, "OK message accepted for delivery")
