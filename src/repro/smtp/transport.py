"""Mail transports: how a composed message reaches a receiving handler.

Two implementations share one interface:

* :class:`InMemoryTransport` — synchronous, deterministic delivery used by
  tests and the discrete-event experiments;
* the asyncio socket pair in :mod:`repro.smtp.server` /
  :mod:`repro.smtp.client` — real SMTP over localhost TCP, used by the
  SMTP-overhead experiment (E11) and the live demo example.

A transport moves ``(envelope_from, envelope_to, message)`` triples; Zmail
semantics live entirely above this layer, which is the paper's point about
requiring no change to SMTP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from ..errors import SMTPPermanentError
from .message import MailMessage

__all__ = ["Envelope", "DeliveryHandler", "MailTransport", "InMemoryTransport"]


@dataclass(frozen=True)
class Envelope:
    """The SMTP envelope: reverse-path, forward-path and the message."""

    mail_from: str
    rcpt_to: str
    message: MailMessage


class DeliveryHandler(Protocol):
    """Receiver-side hook invoked once per delivered message."""

    def __call__(self, envelope: Envelope) -> None: ...  # pragma: no cover


class MailTransport(Protocol):
    """Anything that can deliver an envelope to a destination domain."""

    def submit(self, envelope: Envelope) -> None:
        """Deliver (or queue) ``envelope``; raise on permanent failure."""
        ...  # pragma: no cover - protocol definition


class InMemoryTransport:
    """Synchronous in-process delivery keyed by recipient domain.

    Example:
        >>> seen = []
        >>> t = InMemoryTransport()
        >>> t.register_domain("isp0.example", seen.append)
        >>> msg = MailMessage.compose(sender="a@x", recipient="u@isp0.example")
        >>> t.submit(Envelope("a@x", "u@isp0.example", msg))
        >>> len(seen)
        1
    """

    def __init__(self) -> None:
        self._handlers: dict[str, Callable[[Envelope], None]] = {}
        self.delivered = 0
        self.rejected = 0

    def register_domain(
        self, domain: str, handler: Callable[[Envelope], None]
    ) -> None:
        """Route mail for ``domain`` (case-insensitive) to ``handler``."""
        self._handlers[domain.lower()] = handler

    def submit(self, envelope: Envelope) -> None:
        """Deliver immediately to the registered domain handler.

        Raises:
            SMTPPermanentError: 550 if no handler owns the domain — the
                moral equivalent of "relay access denied".
        """
        domain = envelope.rcpt_to.rpartition("@")[2].lower()
        handler = self._handlers.get(domain)
        if handler is None:
            self.rejected += 1
            raise SMTPPermanentError(550, f"no route to domain {domain!r}")
        self.delivered += 1
        handler(envelope)
