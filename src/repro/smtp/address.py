"""Email address parsing and formatting (RFC 821 subset).

Addresses are the ``local@domain`` form; the Zmail convention used across
the library maps the paper's ``(isp, user)`` coordinates onto
``user<u>@isp<i>.example``. :func:`to_sim_address` and
:func:`from_sim_address` convert between the two representations so the
SMTP layer and the simulator can exchange traffic.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import SMTPProtocolError
from ..sim.workload import Address

__all__ = ["EmailAddress", "parse_address", "to_sim_address", "from_sim_address"]

_LOCAL_RE = re.compile(r"^[A-Za-z0-9!#$%&'*+/=?^_`{|}~.-]+$")
_DOMAIN_RE = re.compile(r"^[A-Za-z0-9]([A-Za-z0-9-]*[A-Za-z0-9])?"
                        r"(\.[A-Za-z0-9]([A-Za-z0-9-]*[A-Za-z0-9])?)*$")
_SIM_RE = re.compile(r"^user(\d+)@isp(\d+)\.example$")


@dataclass(frozen=True)
class EmailAddress:
    """A validated ``local@domain`` address."""

    local: str
    domain: str

    def __str__(self) -> str:
        return f"{self.local}@{self.domain}"

    @property
    def domain_lower(self) -> str:
        """The domain folded to lowercase (domains are case-insensitive)."""
        return self.domain.lower()


def parse_address(raw: str) -> EmailAddress:
    """Parse ``local@domain``, accepting an optional ``<...>`` wrapper.

    Raises:
        SMTPProtocolError: if the address is syntactically invalid.
    """
    text = raw.strip()
    if text.startswith("<") and text.endswith(">"):
        text = text[1:-1]
    if "@" not in text:
        raise SMTPProtocolError(f"address {raw!r} has no @")
    local, _, domain = text.rpartition("@")
    if not local or not _LOCAL_RE.match(local):
        raise SMTPProtocolError(f"bad local part in {raw!r}")
    if not domain or not _DOMAIN_RE.match(domain):
        raise SMTPProtocolError(f"bad domain in {raw!r}")
    return EmailAddress(local, domain)


def from_sim_address(address: Address) -> EmailAddress:
    """Map a simulator ``(isp, user)`` address onto the SMTP convention."""
    return EmailAddress(f"user{address.user}", f"isp{address.isp}.example")


def to_sim_address(address: EmailAddress | str) -> Address:
    """Map an SMTP address following the convention back to ``(isp, user)``.

    Raises:
        SMTPProtocolError: if the address does not follow the
            ``user<u>@isp<i>.example`` convention.
    """
    text = str(address)
    match = _SIM_RE.match(text)
    if not match:
        raise SMTPProtocolError(f"{text!r} is not a simulator-convention address")
    return Address(isp=int(match.group(2)), user=int(match.group(1)))
