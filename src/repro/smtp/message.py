"""RFC 822-subset message model: headers plus body.

Header field names are case-insensitive but order- and case-preserving,
matching real mail software. Serialisation uses CRLF line endings and a
blank line between headers and body; parsing accepts both CRLF and LF and
unfolds continuation lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import SMTPProtocolError

__all__ = ["Headers", "MailMessage"]


class Headers:
    """An ordered, case-insensitive multimap of header fields."""

    def __init__(self) -> None:
        self._items: list[tuple[str, str]] = []

    def add(self, name: str, value: str) -> None:
        """Append a header field, preserving insertion order."""
        if "\n" in name or "\r" in name:
            raise SMTPProtocolError(f"header name {name!r} contains a newline")
        if "\n" in value or "\r" in value:
            raise SMTPProtocolError(f"header {name} value contains a newline")
        self._items.append((name, value))

    def get(self, name: str, default: str | None = None) -> str | None:
        """The first value for ``name`` (case-insensitive), or ``default``."""
        lowered = name.lower()
        for key, value in self._items:
            if key.lower() == lowered:
                return value
        return default

    def get_all(self, name: str) -> list[str]:
        """All values for ``name`` in order."""
        lowered = name.lower()
        return [v for k, v in self._items if k.lower() == lowered]

    def replace(self, name: str, value: str) -> None:
        """Remove all fields called ``name`` and append one with ``value``."""
        self.remove(name)
        self.add(name, value)

    def remove(self, name: str) -> int:
        """Remove all fields called ``name``; returns how many were removed."""
        lowered = name.lower()
        before = len(self._items)
        self._items = [(k, v) for k, v in self._items if k.lower() != lowered]
        return before - len(self._items)

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def copy(self) -> "Headers":
        """A shallow copy preserving order."""
        clone = Headers()
        clone._items = list(self._items)
        return clone


@dataclass
class MailMessage:
    """A parsed email: envelope-independent headers and body.

    The envelope (SMTP MAIL FROM / RCPT TO) is carried separately by the
    transports; ``From``/``To`` headers here are display content, exactly
    as in real SMTP.
    """

    headers: Headers = field(default_factory=Headers)
    body: str = ""

    # -- construction -------------------------------------------------------

    @classmethod
    def compose(
        cls,
        *,
        sender: str,
        recipient: str,
        subject: str = "",
        body: str = "",
        extra_headers: dict[str, str] | None = None,
    ) -> "MailMessage":
        """Build a message with the standard From/To/Subject headers."""
        msg = cls()
        msg.headers.add("From", sender)
        msg.headers.add("To", recipient)
        if subject:
            msg.headers.add("Subject", subject)
        for name, value in (extra_headers or {}).items():
            msg.headers.add(name, value)
        msg.body = body
        return msg

    # -- serialisation --------------------------------------------------------

    def serialize(self) -> str:
        """Render to wire form with CRLF line endings."""
        lines = [f"{name}: {value}" for name, value in self.headers]
        header_block = "\r\n".join(lines)
        body = self.body.replace("\r\n", "\n").replace("\n", "\r\n")
        return f"{header_block}\r\n\r\n{body}"

    @classmethod
    def parse(cls, raw: str) -> "MailMessage":
        """Parse wire form; accepts CRLF or LF, unfolds continuations.

        Raises:
            SMTPProtocolError: on a malformed header line.
        """
        normalized = raw.replace("\r\n", "\n")
        head, _, body = normalized.partition("\n\n")
        msg = cls()
        current: list[str] | None = None
        for line in head.split("\n"):
            if not line:
                continue
            if line[0] in " \t":
                if current is None:
                    raise SMTPProtocolError("continuation line before any header")
                current[1] += " " + line.strip()
                continue
            if ":" not in line:
                raise SMTPProtocolError(f"malformed header line {line!r}")
            if current is not None:
                msg.headers.add(current[0], current[1])
            name, _, value = line.partition(":")
            current = [name.strip(), value.strip()]
        if current is not None:
            msg.headers.add(current[0], current[1])
        msg.body = body
        return msg

    # -- convenience ---------------------------------------------------------

    @property
    def subject(self) -> str:
        """The Subject header, or the empty string."""
        return self.headers.get("Subject", "") or ""

    @property
    def sender(self) -> str:
        """The From header, or the empty string."""
        return self.headers.get("From", "") or ""

    @property
    def recipient(self) -> str:
        """The To header, or the empty string."""
        return self.headers.get("To", "") or ""

    def size_bytes(self) -> int:
        """Wire size of the serialised message in bytes."""
        return len(self.serialize().encode("utf-8"))

    def copy(self) -> "MailMessage":
        """An independent copy (headers are duplicated)."""
        clone = MailMessage(headers=self.headers.copy(), body=self.body)
        return clone
