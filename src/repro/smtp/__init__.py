"""SMTP substrate: RFC 821/822 subset plus the Zmail header binding.

Zmail rides unmodified SMTP (§1.3 of the paper): the server and client
here speak plain SMTP, and all Zmail semantics live in ``X-Zmail-*``
headers (:mod:`repro.smtp.zmail_headers`) and in the ISP logic behind the
delivery handler. An in-memory transport gives deterministic delivery for
tests and simulations; the asyncio server/client pair runs the same
messages over real localhost TCP.
"""

from .address import EmailAddress, from_sim_address, parse_address, to_sim_address
from .client import SMTPClient, send_message
from .gateway import DeliveryRecord, Mailbox, ZmailGateway
from .message import Headers, MailMessage
from .server import SMTPServer
from .transport import Envelope, InMemoryTransport, MailTransport
from .zmail_headers import (
    CLASS_ACK,
    CLASS_NORMAL,
    H_CLASS,
    H_LIST_TOKEN,
    H_SENDER_ISP,
    H_VERSION,
    ZMAIL_VERSION,
    ZmailStamp,
    is_ack,
    make_ack_message,
    read_stamp,
    stamp_message,
)

__all__ = [
    "EmailAddress",
    "parse_address",
    "from_sim_address",
    "to_sim_address",
    "Headers",
    "MailMessage",
    "SMTPServer",
    "ZmailGateway",
    "Mailbox",
    "DeliveryRecord",
    "SMTPClient",
    "send_message",
    "Envelope",
    "MailTransport",
    "InMemoryTransport",
    "ZMAIL_VERSION",
    "H_VERSION",
    "H_SENDER_ISP",
    "H_CLASS",
    "H_LIST_TOKEN",
    "CLASS_NORMAL",
    "CLASS_ACK",
    "ZmailStamp",
    "stamp_message",
    "read_stamp",
    "make_ack_message",
    "is_ack",
]
