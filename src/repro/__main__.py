"""``python -m repro`` dispatches to the CLI.

The ``__main__`` guard is load-bearing: the cluster runtime starts its
workers with the ``multiprocessing`` spawn method, and spawn re-imports
the parent's main module in every child — an unguarded ``main()`` here
would re-run the whole CLI once per worker.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
