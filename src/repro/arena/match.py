"""The match engine: one attacker vs. one defender on a live deployment.

A match runs a schema-v2 strategies-document on the direct reference
path, one period per virtual day. Each period, in a fixed order:

1. the **defender** observes last period's ISP-side signals and sets
   knobs (daily limits on ordinary users, the e-penny price multiplier,
   POW difficulty, bulk class price/cap);
2. the **attacker** observes the published knobs and its own last
   outcome and returns an :class:`~repro.arena.interface.AttackAction`;
3. the engine applies the action's market moves (machine rentals,
   account enlistments, e-penny purchases — dollars out, conservation-
   tracked grants in), drives the day's slice of the world's legitimate
   workload through the network in time order, then fires the salvos;
4. midnight work runs (§4.1 resets, pool rebalancing), a §4.4
   reconciliation round verifies the books, the zombie monitor sweeps
   warning logs, conversions are drawn, and the period's economics and
   invariants are recorded.

Every random draw comes from a stream derived from the match seed via
:func:`~repro.sim.rng.derive_seed`, so a match is a pure function of
``(document, seed)`` — byte-reproducible, which the tournament report
digest and the CI ``cmp`` smoke both rely on.

Modeling note: the operator's hub sends under a commercial bulk
account — an effectively unlimited §4.1 quota. The daily limit is the
paper's *zombie* lever (bounding what a compromised machine can burn);
the per-message price is the lever against the operator itself. Giving
the hub a quota would let a defender kill paid bulk mail for free,
which only looks like a win because this world has no legitimate bulk
senders to hurt. Defender limit tuning therefore applies to every
ordinary user but not the hub.

Dollar accounting charges the hub's e-penny *spend* at market price
(prepaid pennies — explicit purchases, washed arrivals — excepted):
world documents endow every purse with slack balance so lowered worlds
stay cluster-comparable, and without spend-charging that endowment
would be free spamming money. Pennies spent from rented machines and
enlisted accounts are the *owners'* money — the attacker pays rent and
acquisition instead, which is the paper's theft-of-service economics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from ..core.transfer import SendStatus
from ..core.zombie import ZombieMonitor
from ..errors import SimulationError
from ..obs.manifest import accounting_digest
from ..sim.clock import DAY
from ..sim.rng import SeededStreams, derive_seed
from ..sim.workload import Address, TrafficKind, merge_workloads
from .interface import (
    ROUTE_BULK,
    ROUTE_PAID,
    ROUTE_POW,
    AttackerView,
    AttackOutcome,
    DefenderView,
    DefenseSignals,
    Knobs,
    Market,
    make_attacker,
    make_defender,
)

__all__ = ["PeriodRecord", "MatchResult", "run_match"]

_DELIVERED = (
    SendStatus.SENT_PAID,
    SendStatus.DELIVERED_LOCAL,
    SendStatus.SENT_UNPAID,
)

#: The hub's commercial bulk quota (see module docstring).
HUB_DAILY_LIMIT = 10**9

_KIND = {"spam": TrafficKind.SPAM, "zombie": TrafficKind.ZOMBIE}


@dataclass(frozen=True)
class PeriodRecord:
    """One period's economics, traffic and invariant outcomes."""

    period: int
    volume_planned: int
    attempted: int
    delivered_paid: int
    delivered_pow: int
    delivered_bulk: int
    delivered_wash: int
    blocked: int
    conversions: int
    revenue: float
    cost: float
    profit: float
    #: Deterministic expectation (delivered × rate × revenue − cost):
    #: realized profit carries lucky-conversion variance at low volume,
    #: so the phase extraction classifies markets on expectation.
    expected_revenue: float
    expected_profit: float
    fleet_size: int
    machines_lost: int
    accounts_enlisted: int
    legit_attempted: int
    legit_delivered: int
    spam_inbox: int
    bulk_folder: int
    goodput: float
    spam_share: float
    detections: int
    daily_limit: int
    price_multiplier: float
    pow_seconds: float | None
    bulk_price_dollars: float | None
    bulk_cap: int
    conserved: bool
    consistent: bool

    def to_row(self) -> dict[str, Any]:
        return dict(self.__dict__)


@dataclass
class MatchResult:
    """Everything one tournament cell produced."""

    attacker: str
    defender: str
    scenario_digest: str
    seed: int
    periods: list[PeriodRecord]
    #: Victim-directed ledger traffic, per period, for lowering:
    #: ``(period, kind, isp, user, volume)`` tuples.
    schedule: list[tuple[int, str, int, int, int]]
    accounting_digest: str

    @property
    def profit(self) -> float:
        return sum(p.profit for p in self.periods)

    @property
    def expected_profit(self) -> float:
        return sum(p.expected_profit for p in self.periods)

    @property
    def goodput(self) -> float:
        attempted = sum(p.legit_attempted for p in self.periods)
        if attempted == 0:
            return 1.0
        return sum(p.legit_delivered for p in self.periods) / attempted

    @property
    def spam_share(self) -> float:
        spam = sum(p.spam_inbox for p in self.periods)
        total = spam + sum(p.legit_delivered for p in self.periods)
        return spam / total if total else 0.0

    @property
    def final_volume(self) -> int:
        return self.periods[-1].volume_planned if self.periods else 0

    @property
    def collapsed(self) -> bool:
        """Whether the market drove the campaign to (near) zero volume."""
        return self.final_volume < 10

    @property
    def conserved(self) -> bool:
        return all(p.conserved for p in self.periods)

    @property
    def consistent(self) -> bool:
        return all(p.consistent for p in self.periods)

    def to_row(self) -> dict[str, Any]:
        """A flat, JSON-stable summary row (no per-period detail)."""
        return {
            "attacker": self.attacker,
            "defender": self.defender,
            "scenario_digest": self.scenario_digest,
            "seed": self.seed,
            "periods": len(self.periods),
            "profit": self.profit,
            "expected_profit": self.expected_profit,
            "goodput": self.goodput,
            "spam_share": self.spam_share,
            "final_volume": self.final_volume,
            "collapsed": self.collapsed,
            "conserved": self.conserved,
            "consistent": self.consistent,
            "delivered_victims": sum(
                p.delivered_paid + p.delivered_pow + p.delivered_bulk
                for p in self.periods
            ),
            "machines_lost": sum(p.machines_lost for p in self.periods),
            "accounting_digest": self.accounting_digest,
        }


def _base_doc(doc: dict[str, Any]) -> dict[str, Any]:
    """The document with its strategies term stripped (legit background)."""
    import copy

    base = copy.deepcopy(doc)
    base["strategies"] = None
    return base


class _Engine:
    """Mutable match state; :func:`run_match` drives it period by period."""

    def __init__(self, doc: dict[str, Any], seed: int, tracer) -> None:
        from ..scenario.compiler import compile_scenario

        strategies = doc.get("strategies")
        if strategies is None:
            raise SimulationError(
                "arena match needs a document with a strategies term"
            )
        self.doc = doc
        self.strategies = strategies
        self.seed = seed
        self.market = Market.from_doc(strategies["market"])
        plan = compile_scenario(_base_doc(doc))
        self.scenario = plan.scenario("direct")
        self.scenario.tracer = tracer
        self.network = self.scenario.build_network()
        self.tracer = self.network.tracer
        for spec in self.scenario.spammers:
            if spec.war_chest:
                self.network.fund_user(spec.address, epennies=spec.war_chest)
        self.monitor = ZombieMonitor(self.network)
        self.requests = merge_workloads(
            *self.scenario.workload_streams(SeededStreams(self.scenario.seed))
        )
        self.pending = None  # one-request lookahead into self.requests

        topo = doc["topology"]
        self.n_isps = topo["n_isps"]
        self.users_per_isp = topo["users_per_isp"]
        attacker_spec = strategies["attacker"]
        defender_spec = strategies["defender"]
        self.hub = Address(attacker_spec["isp"], attacker_spec["user"])
        self.default_daily_limit = doc["economics"]["default_daily_limit"]
        hub_isp = self.network.isps[self.hub.isp]
        if hasattr(hub_isp, "ledger"):
            hub_isp.ledger.user(self.hub.user).daily_limit = HUB_DAILY_LIMIT

        self.rng_attacker = random.Random(derive_seed(seed, "arena:attacker"))
        self.rng_defender = random.Random(derive_seed(seed, "arena:defender"))
        self.rng_targets = random.Random(derive_seed(seed, "arena:targets"))
        self.rng_convert = random.Random(derive_seed(seed, "arena:convert"))
        rng_pool = random.Random(derive_seed(seed, "arena:pool"))

        params = dict(attacker_spec["params"])
        params["hub"] = (self.hub.isp, self.hub.user)
        self.attacker = make_attacker(
            attacker_spec["name"], params, self.rng_attacker
        )
        self.defender = make_defender(
            defender_spec["name"], defender_spec["params"], self.rng_defender
        )

        self.knobs = Knobs(daily_limit=self.default_daily_limit)
        #: Hub pennies already paid for in dollars (explicit purchases,
        #: washed arrivals — those were bought via account acquisition).
        #: Any hub spend beyond this is charged at market price when it
        #: happens: the world endows every purse with slack balance for
        #: executor comparability, and without spend-charging that float
        #: would be free spamming money.
        self.hub_prepaid = 0
        self.controlled = {self.hub}
        self.fleet: list[Address] = []
        self.pool = [
            Address(isp_id, user)
            for isp_id in sorted(self.network.compliant_isps())
            for user in range(self.users_per_isp)
            if Address(isp_id, user) != self.hub
        ]
        rng_pool.shuffle(self.pool)
        self.victims = self._victims()
        self.last_outcome: AttackOutcome | None = None
        self.last_signals: DefenseSignals | None = None
        self.records: list[PeriodRecord] = []
        self.schedule: list[tuple[int, str, int, int, int]] = []

    # -- helpers --------------------------------------------------------------

    def _victims(self) -> list[Address]:
        return [
            Address(isp, user)
            for isp in range(self.n_isps)
            for user in range(self.users_per_isp)
            if Address(isp, user) not in self.controlled
        ]

    def balance(self, address: Address) -> int:
        isp = self.network.isps[address.isp]
        if not hasattr(isp, "ledger"):
            return 0
        return isp.ledger.user(address.user).balance

    def _apply_defense(self, action) -> None:
        knobs = self.knobs
        limit = knobs.daily_limit
        if action.daily_limit is not None and action.daily_limit != limit:
            limit = action.daily_limit
            for isp_id, isp in self.network.compliant_isps().items():
                for user in isp.ledger.users():
                    if Address(isp_id, user.user_id) == self.hub:
                        continue
                    user.daily_limit = limit
        self.knobs = Knobs(
            daily_limit=limit,
            price_multiplier=(
                knobs.price_multiplier
                if action.price_multiplier is None
                else action.price_multiplier
            ),
            pow_seconds=(
                knobs.pow_seconds
                if action.pow_seconds is None
                else action.pow_seconds
            ),
            bulk_price_dollars=(
                knobs.bulk_price_dollars
                if action.bulk_price_dollars is None
                else action.bulk_price_dollars
            ),
            bulk_cap=(
                knobs.bulk_cap if action.bulk_cap is None else action.bulk_cap
            ),
        )

    def _drive_legit(self, end: float) -> tuple[int, int, int]:
        """Drive background requests with time < ``end``; returns
        (legit_attempted, legit_delivered, background_spam_delivered)."""
        attempted = delivered = spam = 0
        network = self.network
        while True:
            request = self.pending
            self.pending = None
            if request is None:
                request = next(self.requests, None)
                if request is None:
                    break
            if request.time >= end:
                self.pending = request
                break
            network.note_time(request.time)
            receipt = network.send(
                request.sender, request.recipient, request.kind
            )
            ok = receipt.status in _DELIVERED
            if request.kind is TrafficKind.NORMAL:
                attempted += 1
                delivered += 1 if ok else 0
            elif ok:
                spam += 1
        return attempted, delivered, spam

    def _conversions(self, delivered: int, rate: float) -> int:
        if rate <= 0.0 or delivered <= 0:
            return 0
        rng = self.rng_convert
        return sum(1 for _ in range(delivered) if rng.random() < rate)

    # -- one period -----------------------------------------------------------

    def run_period(self, period: int) -> PeriodRecord:
        market, network = self.market, self.network
        self._apply_defense(
            self.defender.act(
                DefenderView(
                    period=period,
                    market=market,
                    knobs=self.knobs,
                    default_daily_limit=self.default_daily_limit,
                    last=self.last_signals,
                )
            )
        )
        action = self.attacker.plan(
            AttackerView(
                period=period,
                market=market,
                knobs=self.knobs,
                n_isps=self.n_isps,
                users_per_isp=self.users_per_isp,
                fleet=tuple(self.fleet),
                pool_remaining=len(self.pool),
                last=self.last_outcome,
                balance=self.balance,
            )
        )
        cost = 0.0
        # Market moves first: rentals, enlistments, penny purchases.
        rented = 0
        while rented < action.rent and self.pool:
            machine = self.pool.pop()
            if machine in self.controlled:
                continue
            self.fleet.append(machine)
            self.controlled.add(machine)
            rented += 1
        for account in action.enlist:
            if account not in self.controlled:
                self.controlled.add(account)
                cost += market.compromised_account_dollars
        if rented or action.enlist:
            self.victims = self._victims()
        cost += len(self.fleet) * market.rent_per_machine_day
        for address, amount in action.buy_epennies:
            if amount <= 0:
                continue
            network.fund_user(address, epennies=amount)
            cost += (
                amount * market.epenny_dollars * self.knobs.price_multiplier
            )
            if address == self.hub:
                self.hub_prepaid += amount

        legit_attempted, legit_delivered, background_spam = self._drive_legit(
            (period + 1) * DAY
        )

        attempted = blocked = 0
        delivered_paid = delivered_pow = delivered_bulk = delivered_wash = 0
        bulk_remaining = self.knobs.bulk_cap
        for salvo in action.salvos:
            if salvo.volume <= 0:
                continue
            if salvo.route == ROUTE_POW:
                if self.knobs.pow_seconds is None:
                    raise SimulationError(
                        "arena: POW salvo but no POW route is offered"
                    )
                attempted += salvo.volume
                delivered_pow += salvo.volume
                cost += salvo.volume * (
                    self.knobs.pow_seconds * market.cpu_second_dollars
                    + market.infra_cost_per_message
                )
                continue
            if salvo.route == ROUTE_BULK:
                if self.knobs.bulk_price_dollars is None:
                    raise SimulationError(
                        "arena: bulk salvo but no bulk class is offered"
                    )
                accepted = min(salvo.volume, bulk_remaining)
                bulk_remaining -= accepted
                attempted += accepted
                delivered_bulk += accepted
                cost += accepted * (
                    self.knobs.bulk_price_dollars
                    + market.infra_cost_per_message
                )
                continue
            if salvo.route != ROUTE_PAID:
                raise SimulationError(
                    f"arena: unknown salvo route {salvo.route!r}"
                )
            kind = _KIND[salvo.kind]
            wash = salvo.target is not None
            if not wash and not self.victims:
                # Degenerate world: everyone is attacker-controlled.
                blocked += salvo.volume
                attempted += salvo.volume
                continue
            hub_purse = (
                self.balance(self.hub) if salvo.sender == self.hub else 0
            )
            sent = 0
            for _ in range(salvo.volume):
                target = (
                    salvo.target
                    if wash
                    else self.rng_targets.choice(self.victims)
                )
                receipt = network.send(salvo.sender, target, kind)
                attempted += 1
                if receipt.status in _DELIVERED:
                    sent += 1
                else:
                    blocked += 1
            cost += salvo.volume * market.infra_cost_per_message
            if wash:
                delivered_wash += sent
                if salvo.target == self.hub:
                    self.hub_prepaid += sent
            else:
                if salvo.sender == self.hub:
                    spent = hub_purse - self.balance(self.hub)
                    covered = min(spent, self.hub_prepaid)
                    self.hub_prepaid -= covered
                    cost += (
                        (spent - covered)
                        * market.epenny_dollars
                        * self.knobs.price_multiplier
                    )
                delivered_paid += sent
                self.schedule.append((
                    period,
                    salvo.kind,
                    salvo.sender.isp,
                    salvo.sender.user,
                    salvo.volume,
                ))

        network.advance_day_to(period + 1)
        report = network.reconcile("direct")
        consistent = report.consistent if report is not None else True
        fresh = self.monitor.poll()
        lost = tuple(d.address for d in fresh if d.address in self.fleet)
        for machine in lost:
            self.fleet.remove(machine)

        conversions = self._conversions(
            delivered_paid + delivered_pow, market.conversion_rate
        ) + self._conversions(
            delivered_bulk,
            market.conversion_rate * market.bulk_conversion_factor,
        )
        revenue = conversions * market.revenue_per_response
        expected_revenue = market.revenue_per_response * (
            (delivered_paid + delivered_pow) * market.conversion_rate
            + delivered_bulk
            * market.conversion_rate
            * market.bulk_conversion_factor
        )
        volume_planned = sum(
            s.volume for s in action.salvos if s.target is None
        )
        spam_inbox = delivered_paid + delivered_pow + background_spam
        conserved = (
            network.total_value() == network.expected_total_value()
        )

        self.last_outcome = AttackOutcome(
            attempted=attempted,
            delivered_paid=delivered_paid,
            delivered_pow=delivered_pow,
            delivered_bulk=delivered_bulk,
            delivered_wash=delivered_wash,
            blocked=blocked,
            conversions=conversions,
            revenue=revenue,
            cost=cost,
            detected=lost,
        )
        self.last_signals = DefenseSignals(
            spam_inbox=spam_inbox,
            bulk_folder=delivered_bulk,
            legit_attempted=legit_attempted,
            legit_delivered=legit_delivered,
            detections=len(fresh),
        )
        record = PeriodRecord(
            period=period,
            volume_planned=volume_planned,
            attempted=attempted,
            delivered_paid=delivered_paid,
            delivered_pow=delivered_pow,
            delivered_bulk=delivered_bulk,
            delivered_wash=delivered_wash,
            blocked=blocked,
            conversions=conversions,
            revenue=revenue,
            cost=cost,
            profit=revenue - cost,
            expected_revenue=expected_revenue,
            expected_profit=expected_revenue - cost,
            fleet_size=len(self.fleet),
            machines_lost=len(lost),
            accounts_enlisted=len(action.enlist),
            legit_attempted=legit_attempted,
            legit_delivered=legit_delivered,
            spam_inbox=spam_inbox,
            bulk_folder=delivered_bulk,
            goodput=self.last_signals.goodput,
            spam_share=self.last_signals.spam_share,
            detections=len(fresh),
            daily_limit=self.knobs.daily_limit,
            price_multiplier=self.knobs.price_multiplier,
            pow_seconds=self.knobs.pow_seconds,
            bulk_price_dollars=self.knobs.bulk_price_dollars,
            bulk_cap=self.knobs.bulk_cap,
            conserved=conserved,
            consistent=consistent,
        )
        self.records.append(record)
        if self.tracer.enabled:
            self.tracer.emit(
                "arena.period",
                period=period,
                attacker=self.attacker.name,
                defender=self.defender.name,
                attempted=attempted,
                delivered=record.delivered_paid
                + record.delivered_pow
                + record.delivered_bulk,
                profit=record.profit,
                goodput=record.goodput,
                conserved=conserved,
            )
        return record


def run_match(
    doc: dict[str, Any], *, seed: int | None = None, tracer=None
) -> MatchResult:
    """Run one full match; a pure function of ``(doc, seed)``.

    ``doc`` must be a validated schema-v2 document whose ``strategies``
    term is present. ``seed`` defaults to the document seed; tournaments
    pass per-cell derived seeds so cells are order-independent.
    """
    from ..scenario.schema import scenario_digest

    if seed is None:
        seed = doc["seed"]
    engine = _Engine(doc, seed, tracer)
    for period in range(engine.strategies["periods"]):
        engine.run_period(period)
    # Drain any boundary-time background requests so the run is total.
    engine._drive_legit(float("inf"))
    return MatchResult(
        attacker=engine.attacker.name,
        defender=engine.defender.name,
        scenario_digest=scenario_digest(doc),
        seed=seed,
        periods=engine.records,
        schedule=engine.schedule,
        accounting_digest=accounting_digest(engine.network),
    )
