"""Attacker strategies: how a spam operator fights a Zmail market.

Five operators, each attacking a different seam of the protocol:

* ``static`` — the null adversary: a fixed-volume blast, pennies bought
  at market price. The paper's §1.2 calculus, live.
* ``response_rate`` — the :class:`~repro.economics.adaptive
  .VolumeLearner` feedback loop, plus rational route arbitrage: each
  period it prices the paid ledger route against any POW or bulk route
  the defender offers and takes the cheapest cost-per-expected-response.
* ``zombie_fleet`` — rents compromised machines and drives each at the
  full §4.1 daily limit, spending the *owners'* pennies. Greedy: every
  machine trips the limit warning and is detected and disinfected, so
  the fleet churns through the rentable pool.
* ``burst_idle`` — the evasion variant: sends ``daily_limit − headroom``
  per machine on burst periods and idles between, starving the
  limit-warning signal the zombie monitor keys on. Slower, stealthier,
  still rent-bound.
* ``epenny_wash`` — harvests the e-penny endowments of compromised
  accounts at a colluding ISP by washing their balances (paid sends) to
  the operator's hub, then spams on harvested pennies instead of bought
  ones. Zero-sum bites anyway: every account was bought at the
  market's compromised-account price.

All state a strategy carries is derived from its seeded RNG and the
views it has been shown — nothing reaches into the deployment.
"""

from __future__ import annotations

from ..economics.adaptive import VolumeLearner
from ..sim.workload import Address
from .interface import (
    ROUTE_BULK,
    ROUTE_PAID,
    ROUTE_POW,
    AttackAction,
    Attacker,
    AttackerView,
    Salvo,
    register_attacker,
)

__all__ = [
    "StaticBlaster",
    "ResponseRateLearner",
    "ZombieFleet",
    "BurstIdle",
    "EpennyWash",
]


def _shortfall(view: AttackerView, sender: Address, volume: int) -> int:
    """E-pennies the sender must buy to pay for ``volume`` sends."""
    return max(0, volume - view.balance(sender))


@register_attacker
class StaticBlaster(Attacker):
    """Fixed volume, paid route, pennies bought at market price."""

    name = "static"

    def __init__(self, params, rng):
        super().__init__(params, rng)
        self.hub = Address(*params["hub"])

    def plan(self, view: AttackerView) -> AttackAction:
        volume = self.params["volume"]
        buys = _shortfall(view, self.hub, volume)
        return AttackAction(
            salvos=(Salvo(sender=self.hub, volume=volume),),
            buy_epennies=((self.hub, buys),) if buys else (),
        )


def best_route(view: AttackerView) -> tuple[str, float]:
    """The cheapest offered route per *expected response*, with its cost.

    A rational operator compares dollars per expected conversion:
    the paid route costs ``infra + price·epenny`` per message at
    conversion rate ``c``; a POW route costs CPU-seconds per message at
    the same ``c``; a bulk class costs its posted price but converts at
    ``c · bulk_factor`` (bulk-folder placement). Ties break toward the
    paid route (stable, deterministic).
    """
    market, knobs = view.market, view.knobs
    rate = max(view.market.conversion_rate, 1e-12)
    infra = market.infra_cost_per_message
    paid = (infra + market.epenny_dollars * knobs.price_multiplier) / rate
    candidates = [(paid, 0, ROUTE_PAID)]
    if knobs.pow_seconds is not None:
        pow_cost = (infra + knobs.pow_seconds * market.cpu_second_dollars)
        candidates.append((pow_cost / rate, 1, ROUTE_POW))
    if knobs.bulk_price_dollars is not None and knobs.bulk_cap > 0:
        bulk_rate = rate * max(market.bulk_conversion_factor, 1e-12)
        candidates.append(
            ((infra + knobs.bulk_price_dollars) / bulk_rate, 2, ROUTE_BULK)
        )
    cost, _, route = min(candidates)
    return route, cost


@register_attacker
class ResponseRateLearner(Attacker):
    """Multiplicative profit feedback + rational route arbitrage."""

    name = "response_rate"

    def __init__(self, params, rng):
        super().__init__(params, rng)
        self.hub = Address(*params["hub"])
        self.learner = VolumeLearner(
            volume=params["volume"],
            growth=params["growth"],
            decay=params["decay"],
            max_volume=params["max_volume"],
        )

    def plan(self, view: AttackerView) -> AttackAction:
        if view.last is not None:
            self.learner.update(view.last.profit)
        volume = self.learner.volume
        route, _ = best_route(view)
        if route == ROUTE_BULK:
            volume = min(volume, view.knobs.bulk_cap)
        if volume <= 0:
            return AttackAction()
        salvo = Salvo(sender=self.hub, volume=volume, route=route)
        buys = (
            _shortfall(view, self.hub, volume) if route == ROUTE_PAID else 0
        )
        return AttackAction(
            salvos=(salvo,),
            buy_epennies=((self.hub, buys),) if buys else (),
        )


class _FleetAttacker(Attacker):
    """Shared rental bookkeeping for the zombie strategies."""

    def __init__(self, params, rng):
        super().__init__(params, rng)
        self.fleet_target = params["fleet"]

    def refill(self, view: AttackerView) -> int:
        """Machines to rent to bring the fleet back to target."""
        want = self.fleet_target - len(view.fleet)
        return max(0, min(want, view.pool_remaining))


@register_attacker
class ZombieFleet(_FleetAttacker):
    """Greedy fleet: every machine pushed to the §4.1 limit, every day."""

    name = "zombie_fleet"

    def plan(self, view: AttackerView) -> AttackAction:
        per_machine = self.params["per_machine"] or view.knobs.daily_limit
        salvos = tuple(
            Salvo(sender=machine, volume=per_machine, kind="zombie")
            for machine in view.fleet
        )
        return AttackAction(salvos=salvos, rent=self.refill(view))


@register_attacker
class BurstIdle(_FleetAttacker):
    """Evasive fleet: bursts below the detection threshold, then idles."""

    name = "burst_idle"

    def plan(self, view: AttackerView) -> AttackAction:
        rent = self.refill(view)
        if view.period % self.params["burst_every"] != 0:
            return AttackAction(rent=rent)
        volume = max(0, view.knobs.daily_limit - self.params["headroom"])
        if volume == 0:
            return AttackAction(rent=rent)
        salvos = tuple(
            Salvo(sender=machine, volume=volume, kind="zombie")
            for machine in view.fleet
        )
        return AttackAction(salvos=salvos, rent=rent)


@register_attacker
class EpennyWash(Attacker):
    """Harvests colluding-ISP endowments, washes them to the hub, spams."""

    name = "epenny_wash"

    def __init__(self, params, rng):
        super().__init__(params, rng)
        self.hub = Address(*params["hub"])
        self.learner = VolumeLearner(
            volume=params["volume"],
            growth=params["growth"],
            decay=params["decay"],
            max_volume=params["max_volume"],
        )
        self.enlisted: list[Address] = []
        #: Washed pennies banked at the hub and not yet spent. The hub
        #: purse also holds the world's endowment, but spending that
        #: would be charged at market price (see the match engine's
        #: spend accounting) — the washer only spams harvested credit.
        self.credit = 0

    def colluding_isp(self, view: AttackerView) -> int:
        isp = self.params["colluding_isp"]
        return view.n_isps - 1 if isp == -1 else isp

    def plan(self, view: AttackerView) -> AttackAction:
        if view.last is not None:
            self.learner.update(view.last.profit)
        volume = self.learner.volume
        headroom = self.params["headroom"]
        per_account = max(0, view.knobs.daily_limit - headroom)
        # Enlist lazily: only as many accounts as the harvest requires.
        enlist: list[Address] = []
        if per_account > 0:
            isp = self.colluding_isp(view)
            have = sum(
                min(view.balance(a), per_account) for a in self.enlisted
            )
            candidates = (
                Address(isp, user)
                for user in range(view.users_per_isp)
            )
            for account in candidates:
                if have >= volume:
                    break
                if account in self.enlisted or account == self.hub:
                    continue
                enlist.append(account)
                have += min(view.balance(account), per_account)
            self.enlisted.extend(enlist)
        wash = tuple(
            Salvo(
                sender=account,
                volume=min(view.balance(account), per_account),
                target=self.hub,
            )
            for account in self.enlisted
            if per_account > 0 and min(view.balance(account), per_account) > 0
        )
        self.credit += sum(s.volume for s in wash)
        blast = min(volume, self.credit)
        self.credit -= blast
        salvos = wash
        if blast > 0:
            salvos = wash + (Salvo(sender=self.hub, volume=blast),)
        return AttackAction(salvos=salvos, enlist=tuple(enlist))
