"""Lowering strategy worlds onto the batch executors.

Strategies are stateful feedback loops, so they cannot run *inside* the
columnar or cluster executors directly — but they don't need to. A match
is a pure function of ``(document, seed)``, so a **pilot match** on the
direct reference path resolves the strategy pair into its concrete
per-period send schedule, and that schedule lowers to the scenario DSL's
plain traffic terms:

* each victim-directed hub salvo becomes a one-day ``spammers`` entry
  (war-chested, so the purse never binds mid-epoch and the world stays
  inside the cluster comparison boundary);
* each fleet machine-day becomes a one-day ``zombies`` entry at the
  equivalent hourly rate.

The lowered document is an ordinary schema-v2 world (``strategies:
null``) that every executor runs through the unchanged plan machinery —
so arena traffic rides the same cross-executor differential oracle
(`repro fuzz` / :func:`repro.scenario.fuzz.check_world`) as everything
else. Two fidelity caveats, by design: wash transfers are *targeted*
sends the spray-pattern DSL cannot express (they move value between
attacker-controlled purses, not into victims' inboxes), and POW/bulk
overlay routes move dollars rather than ledger value; neither appears
in the lowered traffic, which reproduces the attack's *ledger
footprint*, not its dollar accounting.
"""

from __future__ import annotations

import copy
from typing import Any

from ..sim.clock import DAY
from .match import MatchResult, run_match

__all__ = ["lower_doc", "lower_plan"]


def lower_doc(
    doc: dict[str, Any], result: MatchResult | None = None
) -> dict[str, Any]:
    """The plain-traffic document equivalent to ``doc``'s pilot match.

    ``result`` may pass in an already-run match (same doc, document
    seed); otherwise the pilot runs here.
    """
    from ..scenario.schema import validate

    if result is None:
        result = run_match(doc)
    lowered = copy.deepcopy(doc)
    lowered["strategies"] = None
    lowered["name"] = f"{doc['name']}+lowered"
    spammers = lowered["traffic"]["spammers"]
    zombies = lowered["traffic"]["zombies"]
    for period, kind, isp, user, volume in result.schedule:
        if kind == "spam":
            spammers.append({
                "isp": isp,
                "user": user,
                "volume": volume,
                "war_chest": volume,
                "start": period * DAY,
                "duration": DAY,
            })
        else:
            zombies.append({
                "isp": isp,
                "user": user,
                "rate_per_hour": volume / 24.0,
                "start": period * DAY,
                "end": (period + 1) * DAY,
            })
    return validate(lowered)


def lower_plan(plan):
    """Compiler hook: the lowered :class:`~repro.scenario.compiler
    .ScenarioPlan` for a strategies-plan (pilot match runs here)."""
    from ..scenario.compiler import compile_scenario

    return compile_scenario(lower_doc(plan.doc))
