"""Defender policies: how the market side answers adaptive spam.

* ``zmail_static`` — the paper's protocol exactly as configured: the
  per-message e-penny and the §4.1 daily limit, no reactive tuning. The
  baseline every phase diagram is drawn against.
* ``price_tuner`` — adjusts the two levers Zmail actually has: while
  observed inbox spam share exceeds target it multiplies the e-penny
  price and halves ordinary users' daily limits (down to ``min_limit``);
  when clean it relaxes both toward defaults. The limit lever is the
  goodput tension: tight limits block legitimate mail too.
* ``pow_exchange`` — Gardner-Stephen's proof-of-work exchange as a
  hybrid route: mail may enter by burning CPU-seconds instead of an
  e-penny, with difficulty doubling while spam persists and decaying
  toward base when it doesn't.
* ``priority_classes`` — GridEmail-style priced classes (Soysa/Buyya):
  a capped bulk class at a posted dollar price, delivered to the bulk
  folder (responses discounted by the market's bulk factor); the cap
  halves while the class is saturated and spammy.

Defenders observe only ISP-side signals (:class:`~repro.arena.interface
.DefenseSignals`): user spam reports, delivery counters and §4.1
warning-log detections — never the attacker's internals.
"""

from __future__ import annotations

from .interface import (
    Defender,
    DefenderAction,
    DefenderView,
    register_defender,
)

__all__ = ["ZmailStatic", "PriceTuner", "PowExchange", "PriorityClasses"]


@register_defender
class ZmailStatic(Defender):
    """The protocol as configured; no reaction at all."""

    name = "zmail_static"

    def act(self, view: DefenderView) -> DefenderAction:
        return DefenderAction()


@register_defender
class PriceTuner(Defender):
    """Escalates e-penny price and tightens limits while spam persists."""

    name = "price_tuner"

    def act(self, view: DefenderView) -> DefenderAction:
        last, knobs = view.last, view.knobs
        if last is None:
            return DefenderAction()
        step = self.params["price_step"]
        if last.spam_share > self.params["target_spam_share"]:
            multiplier = min(
                self.params["max_price_multiplier"],
                knobs.price_multiplier * step,
            )
            limit = max(
                self.params["min_limit"],
                knobs.daily_limit // self.params["limit_step"],
            )
        else:
            multiplier = max(1.0, knobs.price_multiplier / step)
            limit = min(
                view.default_daily_limit,
                knobs.daily_limit * self.params["limit_step"],
            )
        return DefenderAction(
            daily_limit=limit, price_multiplier=multiplier
        )


@register_defender
class PowExchange(Defender):
    """Offers a CPU-priced route; difficulty doubles while spam persists."""

    name = "pow_exchange"

    def act(self, view: DefenderView) -> DefenderAction:
        base = self.params["base_seconds"]
        current = view.knobs.pow_seconds
        if current is None:
            return DefenderAction(pow_seconds=base)
        last = view.last
        if last is not None and (
            last.spam_share > self.params["target_spam_share"]
        ):
            return DefenderAction(
                pow_seconds=min(self.params["max_seconds"], current * 2.0)
            )
        return DefenderAction(pow_seconds=max(base, current / 2.0))


@register_defender
class PriorityClasses(Defender):
    """Posted-price bulk class with a cap that shrinks under abuse."""

    name = "priority_classes"

    def act(self, view: DefenderView) -> DefenderAction:
        price = self.params["bulk_price_dollars"]
        cap = (
            self.params["bulk_cap"]
            if view.knobs.bulk_price_dollars is None
            else view.knobs.bulk_cap
        )
        last = view.last
        if last is not None and last.bulk_folder >= cap > 0:
            cap = max(self.params["min_cap"], cap // 2)
        return DefenderAction(bulk_price_dollars=price, bulk_cap=cap)
