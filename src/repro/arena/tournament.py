"""The matchup matrix: strategy × strategy × world tournaments.

:func:`run_tournament` sweeps every attacker/defender pair over a set of
generated worlds and distils the grid into a byte-reproducible report:
per-cell economics and invariant outcomes, per-defender profit/goodput
frontiers, and the phase extraction the paper's economic claim turns
into — the **collapse region**, the band of spam markets (expected
dollars per delivered message) in which *no* strategy makes money
against a defender.

Determinism contract: every cell's seed derives from
``(tournament seed, attacker, defender, world index)`` — never from
iteration order — so permuting the matchup order cannot change any
cell's outcome (property-tested), and the canonical report
(:func:`report_json`) contains no wall-clock timestamps, so the same
seed produces ``cmp``-identical bytes (the CI smoke).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable

from ..errors import SimulationError
from ..sim.rng import derive_seed
from .interface import ATTACKERS, DEFENDERS
from .match import MatchResult, run_match
from .worlds import generate_arena_doc

__all__ = [
    "REPORT_FORMAT_VERSION",
    "cell_seed",
    "cell_doc",
    "run_cell",
    "run_tournament",
    "report_json",
    "report_digest",
]

REPORT_FORMAT_VERSION = 1


def cell_seed(seed: int, attacker: str, defender: str, world: int) -> int:
    """Order-independent per-cell seed."""
    return derive_seed(seed, f"arena-cell:{attacker}|{defender}|{world}")


def cell_doc(
    world: dict[str, Any], attacker: str, defender: str
) -> dict[str, Any]:
    """The world document with its strategy pair substituted."""
    from ..scenario.schema import validate

    import copy

    doc = copy.deepcopy(world)
    placeholder = doc["strategies"]["attacker"]
    doc["strategies"]["attacker"] = {
        "name": attacker,
        "isp": placeholder["isp"],
        "user": placeholder["user"],
    }
    doc["strategies"]["defender"] = {"name": defender}
    return validate(doc)


def run_cell(
    world: dict[str, Any],
    attacker: str,
    defender: str,
    *,
    seed: int,
    world_index: int,
) -> MatchResult:
    """One tournament cell, seeded independently of matchup order."""
    return run_match(
        cell_doc(world, attacker, defender),
        seed=cell_seed(seed, attacker, defender, world_index),
    )


def _expected_value(world: dict[str, Any]) -> float:
    market = world["strategies"]["market"]
    return market["conversion_rate"] * market["revenue_per_response"]


def _frontier(
    cells: list[dict[str, Any]], worlds: list[dict[str, Any]],
    attackers: Iterable[str], defenders: Iterable[str],
) -> dict[str, list[dict[str, Any]]]:
    """Per defender, per world: the best attacker and the goodput paid."""
    by_key = {
        (c["attacker"], c["defender"], c["world"]): c for c in cells
    }
    frontier: dict[str, list[dict[str, Any]]] = {}
    for defender in defenders:
        rows = []
        for index, world in enumerate(worlds):
            # Rank on *expected* profit: realized profit carries
            # lucky-conversion variance at low volume, and the phase
            # boundary is an expectation statement.
            best = max(
                (by_key[(a, defender, index)] for a in attackers),
                key=lambda c: (c["expected_profit"], c["attacker"]),
            )
            market = world["strategies"]["market"]
            rows.append({
                "world": index,
                "conversion_rate": market["conversion_rate"],
                "revenue_per_response": market["revenue_per_response"],
                "ev_per_message": _expected_value(world),
                "best_attacker": best["attacker"],
                "best_profit": best["expected_profit"],
                "realized_profit": best["profit"],
                "goodput": best["goodput"],
                "spam_share": best["spam_share"],
            })
        frontier[defender] = rows
    return frontier


def _phase(frontier_rows: list[dict[str, Any]]) -> dict[str, Any]:
    """The collapse-region extraction for one defender's frontier.

    Worlds are ordered by expected spam revenue per delivered message
    (``conversion_rate × revenue_per_response``). The *collapse
    boundary* is the highest expected value below which every world is
    unprofitable for every attacker — the paper's "market forces will
    control the volume of spam", measured.
    """
    rows = sorted(frontier_rows, key=lambda r: r["ev_per_message"])
    profitable = [r for r in rows if r["best_profit"] > 0]
    first_profitable = (
        profitable[0]["ev_per_message"] if profitable else None
    )
    if first_profitable is None:
        collapsed = rows
    else:
        collapsed = [
            r for r in rows if r["ev_per_message"] < first_profitable
        ]
    boundary = collapsed[-1]["ev_per_message"] if collapsed else None
    # Half-decade histogram over expected value: the phase diagram data.
    bins: list[dict[str, Any]] = []
    if rows:
        import math

        lo_exp = math.floor(
            math.log10(rows[0]["ev_per_message"]) * 2
        )
        hi_exp = math.floor(
            math.log10(rows[-1]["ev_per_message"]) * 2
        )
        for half_decade in range(lo_exp, hi_exp + 1):
            lo = 10.0 ** (half_decade / 2.0)
            hi = 10.0 ** ((half_decade + 1) / 2.0)
            members = [
                r for r in rows if lo <= r["ev_per_message"] < hi
            ]
            if not members:
                continue
            bins.append({
                "ev_lo": lo,
                "ev_hi": hi,
                "worlds": len(members),
                "profitable": sum(
                    1 for r in members if r["best_profit"] > 0
                ),
                "mean_best_profit": sum(
                    r["best_profit"] for r in members
                ) / len(members),
                "mean_goodput": sum(r["goodput"] for r in members)
                / len(members),
            })
    return {
        "worlds": len(rows),
        "profitable_worlds": len(profitable),
        "collapsed_worlds": len(collapsed),
        "collapse_boundary_ev": boundary,
        "first_profitable_ev": first_profitable,
        "bins": bins,
    }


def run_tournament(
    *,
    seed: int,
    attackers: Iterable[str] | None = None,
    defenders: Iterable[str] | None = None,
    worlds: int | list[dict[str, Any]] = 100,
    periods: int = 8,
    verify: int = 0,
) -> dict[str, Any]:
    """Sweep the matchup matrix; returns the canonical report dict.

    ``worlds`` is a count (generated from the tournament seed) or an
    explicit list of strategies-documents. ``verify`` lowers the first N
    cells and runs them through the cross-executor differential oracle
    (:func:`repro.scenario.fuzz.check_world`).
    """
    attackers = list(attackers) if attackers else sorted(ATTACKERS)
    defenders = list(defenders) if defenders else sorted(DEFENDERS)
    for name in attackers:
        if name not in ATTACKERS:
            raise SimulationError(
                f"unknown attacker {name!r}; known: {sorted(ATTACKERS)}"
            )
    for name in defenders:
        if name not in DEFENDERS:
            raise SimulationError(
                f"unknown defender {name!r}; known: {sorted(DEFENDERS)}"
            )
    if isinstance(worlds, int):
        worlds = [
            generate_arena_doc(
                derive_seed(seed, f"arena-world:{i}"), periods=periods
            )
            for i in range(worlds)
        ]
    from ..scenario.schema import scenario_digest

    cells: list[dict[str, Any]] = []
    verify_failures: list[dict[str, Any]] = []
    verified = 0
    for attacker in attackers:
        for defender in defenders:
            for index, world in enumerate(worlds):
                result = run_cell(
                    world, attacker, defender, seed=seed, world_index=index
                )
                row = result.to_row()
                row["world"] = index
                cells.append(row)
                if verified < verify:
                    verified += 1
                    failure = _verify_cell(
                        world, attacker, defender, seed, index
                    )
                    if failure is not None:
                        verify_failures.append({
                            "attacker": attacker,
                            "defender": defender,
                            "world": index,
                            "reason": failure,
                        })
    frontier = _frontier(cells, worlds, attackers, defenders)
    baseline = (
        "zmail_static" if "zmail_static" in frontier else defenders[0]
    )
    passed = (
        all(c["conserved"] and c["consistent"] for c in cells)
        and not verify_failures
    )
    return {
        "format_version": REPORT_FORMAT_VERSION,
        "seed": seed,
        "attackers": attackers,
        "defenders": defenders,
        "periods": periods,
        "world_count": len(worlds),
        "worlds": [
            {
                "world": i,
                "digest": scenario_digest(w),
                "name": w["name"],
                "conversion_rate": w["strategies"]["market"][
                    "conversion_rate"
                ],
                "revenue_per_response": w["strategies"]["market"][
                    "revenue_per_response"
                ],
                "ev_per_message": _expected_value(w),
            }
            for i, w in enumerate(worlds)
        ],
        "cells": cells,
        "frontier": frontier,
        "baseline_defender": baseline,
        "phase": {d: _phase(rows) for d, rows in frontier.items()},
        "verify": {
            "cells": verified,
            "failures": verify_failures,
        },
        "passed": passed,
    }


def _verify_cell(world, attacker, defender, seed, index) -> str | None:
    """Cross-executor differential check of one cell's lowered world."""
    from ..scenario.fuzz import check_world
    from .lower import lower_doc
    from .match import run_match

    doc = cell_doc(world, attacker, defender)
    result = run_match(
        doc, seed=cell_seed(seed, attacker, defender, index)
    )
    return check_world(lower_doc(doc, result))


def report_json(report: dict[str, Any]) -> str:
    """Canonical report bytes: sorted keys, indented, trailing newline."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def report_digest(report: dict[str, Any]) -> str:
    """SHA-256 over the canonical compact report (sans any digest key)."""
    body = {k: v for k, v in report.items() if k != "digest"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
