"""Seeded generation of arena worlds (schema-v2 strategies documents).

Tournament sweeps need many small, varied, *comparable* worlds: the
deployment and legitimate workload vary, the Zmail pricing stays at the
paper's defaults (1 e-penny ≈ $0.01 per message), and the spam market —
conversion rate and revenue per response — is drawn log-uniform across
the bulk-to-targeted spectrum so phase diagrams get coverage on both
sides of the break-even line.

Worlds are generated with slack balances (``default_user_balance`` a
multiple of the daily limit) and hour-tiling durations so their
*lowered* forms stay inside the cluster executor's credit-slack
comparison boundary (see DESIGN.md §14), and with every ISP compliant
so the columnar executor accepts them too.

Like :func:`repro.scenario.generate.generate_doc`, one
:class:`random.Random` with a **fixed draw order** — editing draws
reshuffles every seed's world, which only matters if something pins
world digests (the benchmark does; regenerate it when changing this).
"""

from __future__ import annotations

import math
import random
from typing import Any

from ..sim.clock import DAY, HOUR
from ..scenario.schema import validate

__all__ = ["generate_arena_doc"]


def generate_arena_doc(
    seed: int, *, periods: int = 8, name: str | None = None
) -> dict[str, Any]:
    """One canonical (validated) arena world for ``seed``."""
    rng = random.Random(seed)
    n_isps = rng.randint(2, 4)
    users_per_isp = rng.randint(6, 12)
    daily_limit = rng.choice([50, 100, 200])
    normal_rate = rng.choice([2.0, 4.0, 8.0])
    conversion_rate = 10.0 ** rng.uniform(-4.5, -1.5)
    revenue = 10.0 ** rng.uniform(math.log10(2.0), math.log10(50.0))
    doc_seed = rng.randrange(2**32)
    doc = {
        "schema_version": 2,
        "name": name or f"arena-{seed & 0xFFFFFFFF:08x}",
        "seed": doc_seed,
        "topology": {
            "n_isps": n_isps,
            "users_per_isp": users_per_isp,
        },
        "economics": {
            "default_daily_limit": daily_limit,
            # Slack purses: the balance never binds before the limit
            # does, keeping lowered worlds cluster-comparable and the
            # §4.1 limit the only containment in play.
            "default_user_balance": daily_limit * (periods + 2),
            "auto_topup_amount": 0,
        },
        "traffic": {
            "duration": float(periods) * DAY,
            "normal_rate_per_day": normal_rate,
        },
        "cluster": {"shards": 2, "epoch": HOUR},
        "strategies": {
            "periods": periods,
            # Placeholder pair; tournaments substitute per cell.
            "attacker": {"name": "static", "isp": 0, "user": 0},
            "defender": {"name": "zmail_static"},
            "market": {
                "conversion_rate": conversion_rate,
                "revenue_per_response": revenue,
            },
        },
    }
    return validate(doc)
