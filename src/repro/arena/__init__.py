"""Strategy arena: adaptive attackers vs. defender policies, live.

The arena pits *strategies* — stateful per-period decision loops —
against each other inside real :class:`~repro.core.protocol.ZmailNetwork`
deployments. Attackers (response-rate learners, zombie-fleet renters,
e-penny washers, burst-idle evaders) act through a narrow observe/act
interface; defenders (price/limit tuners, POW exchanges, priced
priority classes) retune the network between periods. Small matchups
run on the direct reference path; sweeps lower pilot-match schedules
onto the plain scenario DSL and ride the columnar/cluster executors
and the cross-executor differential oracle.

Modules: :mod:`.interface` (views, actions, registries),
:mod:`.attackers` / :mod:`.defenders` (the built-in strategies),
:mod:`.match` (the period engine), :mod:`.worlds` (seeded world
generation), :mod:`.lower` (schedule → DSL lowering), and
:mod:`.tournament` (matchup-matrix reports with phase extraction).
"""

from __future__ import annotations

from .interface import (
    ATTACKERS,
    DEFENDERS,
    AttackAction,
    Attacker,
    AttackerView,
    AttackOutcome,
    Defender,
    DefenderAction,
    DefenderView,
    DefenseSignals,
    Knobs,
    Market,
    Salvo,
    make_attacker,
    make_defender,
    register_attacker,
    register_defender,
)

# Importing the strategy modules populates the registries.
from . import attackers as attackers  # noqa: F401
from . import defenders as defenders  # noqa: F401

from .match import MatchResult, PeriodRecord, run_match
from .worlds import generate_arena_doc
from .lower import lower_doc, lower_plan
from .tournament import (
    REPORT_FORMAT_VERSION,
    cell_doc,
    cell_seed,
    report_digest,
    report_json,
    run_cell,
    run_tournament,
)

__all__ = [
    "ATTACKERS",
    "DEFENDERS",
    "AttackAction",
    "Attacker",
    "AttackerView",
    "AttackOutcome",
    "Defender",
    "DefenderAction",
    "DefenderView",
    "DefenseSignals",
    "Knobs",
    "Market",
    "MatchResult",
    "PeriodRecord",
    "REPORT_FORMAT_VERSION",
    "Salvo",
    "cell_doc",
    "cell_seed",
    "generate_arena_doc",
    "lower_doc",
    "lower_plan",
    "make_attacker",
    "make_defender",
    "register_attacker",
    "register_defender",
    "report_digest",
    "report_json",
    "run_cell",
    "run_match",
    "run_tournament",
]
