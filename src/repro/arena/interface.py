"""The arena's narrow observe/act surface.

A strategy never touches the deployment. Each period the match engine
(:mod:`repro.arena.match`) hands it a frozen view of what a real actor
could observe — the published knobs, the market it operates in, its own
last outcome — and the strategy returns a declarative action the engine
executes against the live :class:`~repro.core.protocol.ZmailNetwork`.
Everything a strategy can *do* is expressible as data (salvos, e-penny
purchases, machine rentals, account enlistments, knob settings), which
is what makes tournament cells deterministic and lowerable onto the
batch executors.

The strategy *vocabulary* — which names exist and which parameters they
take — is owned by the scenario schema
(:data:`repro.scenario.schema.ATTACKER_STRATEGIES` /
:data:`~repro.scenario.schema.DEFENDER_STRATEGIES`); this module's
registries implement exactly those names (parity is tested), so any
document naming a strategy is runnable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, ClassVar

from ..errors import SimulationError
from ..sim.workload import Address

__all__ = [
    "ROUTE_PAID",
    "ROUTE_POW",
    "ROUTE_BULK",
    "Market",
    "Knobs",
    "Salvo",
    "AttackAction",
    "DefenderAction",
    "AttackOutcome",
    "DefenseSignals",
    "AttackerView",
    "DefenderView",
    "Attacker",
    "Defender",
    "ATTACKERS",
    "DEFENDERS",
    "make_attacker",
    "make_defender",
]

#: Delivery routes a salvo can take. ``paid`` is the Zmail ledger path
#: (1 e-penny per message, §3); ``pow`` and ``bulk`` are *economic
#: overlays* offered by hybrid defenders — they move dollars, not
#: ledger value, so they never appear in the invariant manifest.
ROUTE_PAID = "paid"
ROUTE_POW = "pow"
ROUTE_BULK = "bulk"
ROUTES = (ROUTE_PAID, ROUTE_POW, ROUTE_BULK)


@dataclass(frozen=True)
class Market:
    """The dollar economy around the ledger — public, static per world."""

    conversion_rate: float
    revenue_per_response: float
    infra_cost_per_message: float
    epenny_dollars: float
    cpu_second_dollars: float
    bulk_conversion_factor: float
    rent_per_machine_day: float
    compromised_account_dollars: float

    @classmethod
    def from_doc(cls, market: dict) -> "Market":
        return cls(**market)


@dataclass(frozen=True)
class Knobs:
    """The defender's published knobs — visible to both sides.

    ``pow_seconds`` / ``bulk_price_dollars`` are ``None`` while the
    corresponding route is not offered.
    """

    daily_limit: int
    price_multiplier: float = 1.0
    pow_seconds: float | None = None
    bulk_price_dollars: float | None = None
    bulk_cap: int = 0


@dataclass(frozen=True)
class Salvo:
    """One burst of sends from one controlled address.

    ``target=None`` sprays deterministic-random victims; a concrete
    target directs every message there (the wash pattern). ``kind`` is
    the traffic class the ledger sees (``spam`` from the operator's own
    hub, ``zombie`` from rented machines).
    """

    sender: Address
    volume: int
    route: str = ROUTE_PAID
    kind: str = "spam"
    target: Address | None = None


@dataclass(frozen=True)
class AttackAction:
    """Everything an attacker does in one period, as data."""

    salvos: tuple[Salvo, ...] = ()
    #: (address, epennies) purchases, paid in dollars at the current
    #: price multiplier, credited before the salvos fire.
    buy_epennies: tuple[tuple[Address, int], ...] = ()
    #: Additional compromised machines to rent this period.
    rent: int = 0
    #: Accounts to take control of (colluding-ISP harvest), each paid
    #: for once at the market's compromised-account price.
    enlist: tuple[Address, ...] = ()


@dataclass(frozen=True)
class DefenderAction:
    """Knob settings for the coming period; ``None`` leaves a knob be."""

    daily_limit: int | None = None
    price_multiplier: float | None = None
    pow_seconds: float | None = None
    bulk_price_dollars: float | None = None
    bulk_cap: int | None = None


@dataclass(frozen=True)
class AttackOutcome:
    """What the attacker's last period actually did."""

    attempted: int
    delivered_paid: int
    delivered_pow: int
    delivered_bulk: int
    delivered_wash: int
    blocked: int
    conversions: int
    revenue: float
    cost: float
    #: Fleet machines lost to §4.1/§5 detection last period.
    detected: tuple[Address, ...] = ()

    @property
    def profit(self) -> float:
        return self.revenue - self.cost

    @property
    def delivered_victims(self) -> int:
        """Messages that reached someone other than the operator."""
        return self.delivered_paid + self.delivered_pow + self.delivered_bulk


@dataclass(frozen=True)
class DefenseSignals:
    """What an ISP-side policy observed last period (user spam reports,
    delivery counters, §4.1 warning-log detections)."""

    spam_inbox: int
    bulk_folder: int
    legit_attempted: int
    legit_delivered: int
    detections: int

    @property
    def goodput(self) -> float:
        if self.legit_attempted == 0:
            return 1.0
        return self.legit_delivered / self.legit_attempted

    @property
    def spam_share(self) -> float:
        total = self.spam_inbox + self.legit_delivered
        if total == 0:
            return 0.0
        return self.spam_inbox / total


@dataclass(frozen=True)
class AttackerView:
    """The attacker's observation at the start of a period."""

    period: int
    market: Market
    knobs: Knobs
    n_isps: int
    users_per_isp: int
    fleet: tuple[Address, ...]
    pool_remaining: int
    last: AttackOutcome | None
    #: Balance oracle for attacker-controlled addresses (an operator
    #: can read its own purses; everything else would be cheating).
    balance: Callable[[Address], int] = field(compare=False)


@dataclass(frozen=True)
class DefenderView:
    """The defender's observation at the start of a period."""

    period: int
    market: Market
    knobs: Knobs
    default_daily_limit: int
    last: DefenseSignals | None


class Attacker:
    """Base class: a seeded, stateful attacker strategy."""

    name: ClassVar[str] = ""

    def __init__(self, params: dict, rng: random.Random) -> None:
        self.params = dict(params)
        self.rng = rng

    def plan(self, view: AttackerView) -> AttackAction:
        raise NotImplementedError


class Defender:
    """Base class: a seeded, stateful defender policy."""

    name: ClassVar[str] = ""

    def __init__(self, params: dict, rng: random.Random) -> None:
        self.params = dict(params)
        self.rng = rng

    def act(self, view: DefenderView) -> DefenderAction:
        raise NotImplementedError


ATTACKERS: dict[str, type[Attacker]] = {}
DEFENDERS: dict[str, type[Defender]] = {}


def register_attacker(cls: type[Attacker]) -> type[Attacker]:
    ATTACKERS[cls.name] = cls
    return cls


def register_defender(cls: type[Defender]) -> type[Defender]:
    DEFENDERS[cls.name] = cls
    return cls


def make_attacker(name: str, params: dict, rng: random.Random) -> Attacker:
    """Instantiate a registered attacker strategy, loudly."""
    if name not in ATTACKERS:
        raise SimulationError(
            f"unknown attacker strategy {name!r}; "
            f"known strategies are {sorted(ATTACKERS)}"
        )
    return ATTACKERS[name](params, rng)


def make_defender(name: str, params: dict, rng: random.Random) -> Defender:
    """Instantiate a registered defender policy, loudly."""
    if name not in DEFENDERS:
        raise SimulationError(
            f"unknown defender policy {name!r}; "
            f"known policies are {sorted(DEFENDERS)}"
        )
    return DEFENDERS[name](params, rng)
