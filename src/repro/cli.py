"""Command-line interface: ``python -m repro <command>``.

Commands map onto the library's headline capabilities so a user can see
the system work without writing code:

* ``quickstart``  — tiny two-ISP deployment, zero-sum accounting.
* ``breakeven``   — the §1.2 spammer break-even table.
* ``compare``     — the §2 baseline comparison table.
* ``adoption``    — the §5 incremental-deployment S-curve.
* ``spec-check``  — model-check the §4 formal spec (optionally cheating).
* ``zombie``      — the §5 zombie-containment scenario.
* ``scenario``    — kitchen-sink mixed simulation via the Scenario API.
* ``audit``       — the solvency audit catching an e-penny-minting ISP.
* ``cluster``     — sharded multi-process run in deterministic epoch
  lockstep or bounded-lag asynchrony; the merged manifest is
  bit-identical across shard counts and drive modes.
* ``chaos``       — fault-injection campaign with invariant monitors.
* ``overload``    — burst/flood campaign against the overload-protection
  layer (admission control, bounded queues, circuit breakers).
* ``trace``       — canonical traced run: schema-valid JSONL event trace
  plus the run manifest (byte-identical across same-seed runs).
* ``metrics``     — canonical run's unified metrics export (one
  namespaced registry over protocol, overload and gateway counters).
* ``serve``       — long-running SMTP service over the durable SQLite
  store: one listener per compliant ISP, periodic barrier commits,
  restart-safe pending queues.
* ``selftest``    — operator health check of a durable store: checksum
  sweep, anti-symmetry/conservation invariants, one live SMTP round
  trip.
* ``soak``        — the recovery-equivalence soak: a crash/restart-laden
  scenario over the durable store whose manifest must be byte-identical
  to the in-memory oracle run (``--oracle``).
* ``run``         — compile a declarative scenario document (JSON/YAML)
  and execute it unchanged on any drive: direct loop, columnar batch,
  event engine, sharded cluster or fault-injecting chaos.
* ``fuzz``        — seeded differential fuzzing campaign: N generated
  worlds through every executor, byte-comparing invariant manifests;
  failures shrink to minimal worlds replayable with ``--replay``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Zmail (ICDCS 2005) reproduction — runnable scenarios",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the command under cProfile and print the hottest "
        "functions afterwards (e.g. `repro --profile scenario`)",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=25,
        metavar="N",
        help="with --profile: number of rows to print (default 25)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    quickstart = sub.add_parser("quickstart", help="two-ISP zero-sum demo")
    quickstart.add_argument("--messages", type=int, default=5)
    quickstart.add_argument("--seed", type=int, default=1)

    breakeven = sub.add_parser("breakeven", help="§1.2 spammer break-even table")
    breakeven.add_argument(
        "--seed", type=int, default=0,
        help="accepted for interface uniformity; the table is closed-form",
    )
    compare = sub.add_parser("compare", help="§2 baseline comparison table")
    compare.add_argument("--seed", type=int, default=0)

    adoption = sub.add_parser("adoption", help="§5 adoption S-curve")
    adoption.add_argument("--isps", type=int, default=100)
    adoption.add_argument("--propensity", type=float, default=0.15)
    adoption.add_argument("--seed", type=int, default=3)

    spec = sub.add_parser("spec-check", help="model-check the §4 formal spec")
    spec.add_argument("--steps", type=int, default=3000)
    spec.add_argument("--isps", type=int, default=3)
    spec.add_argument("--users", type=int, default=3)
    spec.add_argument("--seed", type=int, default=7)
    spec.add_argument(
        "--cheat", action="store_true",
        help="inject a credit-inflating cheater at isp[1]",
    )

    zombie = sub.add_parser("zombie", help="§5 zombie containment scenario")
    zombie.add_argument("--limit", type=int, default=40)
    zombie.add_argument("--seed", type=int, default=2)

    scenario = sub.add_parser(
        "scenario", help="kitchen-sink mixed simulation (Scenario API)"
    )
    scenario.add_argument("--days", type=int, default=3)
    scenario.add_argument("--seed", type=int, default=42)

    audit = sub.add_parser(
        "audit", help="solvency audit demo: catch an e-penny-minting ISP"
    )
    audit.add_argument("--mint", type=int, default=5000)
    audit.add_argument("--seed", type=int, default=18)

    cluster = sub.add_parser(
        "cluster",
        help="sharded multi-process run: ISPs partitioned across worker "
        "processes in deterministic epoch lockstep or bounded-lag "
        "asynchrony (--lag K); results are bit-identical across shard "
        "counts and drive modes",
    )
    cluster.add_argument(
        "--shards", type=int, default=4,
        help="worker count (default 4); results do not depend on it",
    )
    cluster.add_argument(
        "--seed", type=int, default=0,
        help="scenario seed; the merged manifest is bit-reproducible "
        "from it (default 0)",
    )
    cluster.add_argument("--isps", type=int, default=8)
    cluster.add_argument("--users", type=int, default=32)
    cluster.add_argument("--days", type=int, default=2)
    cluster.add_argument(
        "--epoch-hours", type=float, default=1.0,
        help="barrier spacing in virtual hours; must divide the day "
        "(default 1.0)",
    )
    cluster.add_argument(
        "--mode", choices=("spawn", "inline"), default="spawn",
        help="spawn real worker processes (default) or drive the same "
        "workers in-process",
    )
    cluster.add_argument(
        "--lag", type=int, default=0, metavar="K",
        help="bounded-lag asynchronous drive: shards may run up to K "
        "epochs apart, with streaming reconciliation (default 0 = "
        "epoch-barriered lockstep); results do not depend on it",
    )
    cluster.add_argument(
        "--journal-dir", metavar="PATH", default=None,
        help="journal worker barrier state here (enables crash recovery)",
    )
    cluster.add_argument(
        "--manifest", metavar="PATH", default=None,
        help="write the merged run manifest here (byte-identical across "
        "same-seed runs and shard counts)",
    )
    cluster.add_argument(
        "--report", metavar="PATH", default=None,
        help="write the per-run cluster report (assignment, restarts, "
        "per-shard digests) here",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run a fault-injection campaign (drop/dup/reorder/crash) "
        "with always-on invariant monitors",
    )
    chaos.add_argument(
        "--seed", type=int, default=None,
        help="campaign seed (default: the spec's seed); the whole run is "
        "bit-reproducible from it",
    )
    chaos.add_argument(
        "--spec", metavar="PATH", default=None,
        help="campaign spec file (JSON, or YAML if available); "
        "default: the built-in campaign",
    )
    chaos.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the full report as JSON instead of the table",
    )
    chaos.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the JSON report to this file",
    )

    overload = sub.add_parser(
        "overload",
        help="run a burst/flood overload campaign against the "
        "admission-control layer (bounded queues, shed/bounce, breakers)",
    )
    overload.add_argument(
        "--seed", type=int, default=None,
        help="campaign seed (default: the spec's seed); the whole run is "
        "bit-reproducible from it",
    )
    overload.add_argument(
        "--spec", metavar="PATH", default=None,
        help="campaign spec file (JSON, or YAML if available); "
        "default: the built-in overload campaign",
    )
    overload.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the full report as JSON instead of the table",
    )
    overload.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the JSON report to this file",
    )

    trace = sub.add_parser(
        "trace",
        help="run the canonical 3-ISP traced scenario and dump the JSONL "
        "event trace plus the run manifest",
    )
    trace.add_argument(
        "--seed", type=int, default=7,
        help="scenario seed; the trace and manifest are bit-reproducible "
        "from it (default 7)",
    )
    trace.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the JSONL trace to this file",
    )
    trace.add_argument(
        "--manifest", metavar="PATH", default=None,
        help="write the run manifest here "
        "(default: <out>.manifest.json when --out is given)",
    )
    trace.add_argument(
        "--tail", type=int, default=0, metavar="N",
        help="print the last N trace lines to stdout",
    )
    trace.add_argument(
        "--mode", choices=("direct", "columnar", "engine_stream"),
        default="direct",
        help="executor driving the canonical scenario (default direct)",
    )
    trace.add_argument(
        "--invariant-manifest", metavar="PATH", default=None,
        help="also write the executor-invariant manifest here; the file "
        "is byte-identical across --mode values for the same seed",
    )

    metrics = sub.add_parser(
        "metrics",
        help="run the canonical scenario and dump the unified metrics "
        "export (sorted, namespaced, digestable)",
    )
    metrics.add_argument(
        "--seed", type=int, default=7,
        help="scenario seed (default 7)",
    )
    metrics.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the metrics JSON to this file",
    )

    serve = sub.add_parser(
        "serve",
        help="run the durable SMTP service: one listener per compliant "
        "ISP over the SQLite write-ahead store, with periodic barrier "
        "commits and restart-safe pending queues",
    )
    serve.add_argument(
        "--store", metavar="PATH", required=True,
        help="durable store file; created (with --isps/--users/--seed) "
        "if it does not exist yet",
    )
    serve.add_argument("--isps", type=int, default=3,
                       help="ISP count when creating a new store")
    serve.add_argument("--users", type=int, default=16,
                       help="users per ISP when creating a new store")
    serve.add_argument("--seed", type=int, default=7,
                       help="network seed when creating a new store")
    serve.add_argument(
        "--overload", action="store_true",
        help="enable outbound admission control (token bucket + bounded "
        "deferred queue); pending retries survive restarts",
    )
    serve.add_argument(
        "--commit-interval", type=float, default=5.0, metavar="SECONDS",
        help="wall seconds between automatic barrier commits (default 5)",
    )
    serve.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="serve for this long then exit cleanly "
        "(default: until interrupted)",
    )

    selftest = sub.add_parser(
        "selftest",
        help="verify a durable store: checksum sweep, anti-symmetry and "
        "conservation invariants, one live SMTP round trip",
    )
    selftest.add_argument("--store", metavar="PATH", required=True,
                          help="durable store file to verify")

    soak = sub.add_parser(
        "soak",
        help="run the recovery-equivalence soak: crash/restart cycles "
        "and an overload flood over the durable store; with --oracle the "
        "same scenario runs purely in memory and must produce a "
        "byte-identical manifest",
    )
    soak.add_argument("--seed", type=int, default=7)
    soak.add_argument("--days", type=float, default=0.5,
                      help="virtual days of workload (default 0.5)")
    soak.add_argument("--isps", type=int, default=3)
    soak.add_argument("--users", type=int, default=6)
    soak.add_argument(
        "--crashes", type=int, default=2, metavar="N",
        help="injected crash/restart cycles, alternating isp1/bank "
        "(default 2)",
    )
    soak.add_argument(
        "--store", metavar="PATH", default=None,
        help="durable store file (default: a temporary file, removed "
        "afterwards); ignored with --oracle",
    )
    soak.add_argument(
        "--oracle", action="store_true",
        help="run the uninterrupted in-memory oracle instead of the "
        "durable run",
    )
    soak.add_argument(
        "--manifest", metavar="PATH", default=None,
        help="write the run manifest here (byte-identical between the "
        "durable and oracle runs of the same seed)",
    )

    run = sub.add_parser(
        "run",
        help="compile a scenario document (JSON/YAML) and execute it on "
        "one drive; the invariant manifest is byte-identical across "
        "direct/columnar/engine/cluster for the same document",
    )
    run.add_argument(
        "scenario", metavar="PATH",
        help="scenario document (.json or .yaml, schema_version-pinned)",
    )
    run.add_argument(
        "--mode",
        choices=("direct", "columnar", "engine", "cluster", "chaos"),
        default="direct",
        help="drive to execute the compiled plan on (default direct)",
    )
    run.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="cluster mode: worker count (default: the document's "
        "cluster.shards); the manifest does not depend on it",
    )
    run.add_argument(
        "--lag", type=int, default=None, metavar="K",
        help="cluster mode: bounded-lag drive, shards up to K epochs "
        "apart (default: the document's cluster.lag)",
    )
    run.add_argument(
        "--cluster-mode", choices=("inline", "spawn"), default="inline",
        help="cluster mode: drive workers in-process (default) or as "
        "spawned processes",
    )
    run.add_argument(
        "--manifest", metavar="PATH", default=None,
        help="write the cross-executor invariant manifest here "
        "(unavailable in chaos mode)",
    )
    run.add_argument(
        "--report", metavar="PATH", default=None,
        help="write the drive's native report JSON here",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing campaign: N seeded random worlds "
        "through every executor, byte-comparing invariant manifests; "
        "failing worlds shrink to minimal reproductions",
    )
    fuzz.add_argument(
        "--count", type=int, default=25, metavar="N",
        help="number of generated worlds (default 25)",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed; world i generates from "
        "derive_seed(seed, 'world:i') (default 0)",
    )
    fuzz.add_argument(
        "--shards", type=int, default=2,
        help="cluster shard count for the executor matrix (default 2; "
        "clamped to the world's ISP count)",
    )
    fuzz.add_argument(
        "--out", metavar="DIR", default=None,
        help="write failing-world artifacts (original + shrunk "
        "documents) into this directory",
    )
    fuzz.add_argument(
        "--replay", metavar="SEED:INDEX", default=None,
        help="re-run (and re-shrink) one world from a failure report "
        "instead of a fresh campaign",
    )
    fuzz.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the full campaign report as JSON instead of text",
    )
    fuzz.add_argument(
        "--max-shrink-steps", type=int, default=200, metavar="N",
        help="oracle-call budget per shrink descent (default 200)",
    )

    arena = sub.add_parser(
        "arena",
        help="strategy tournament: adaptive attackers vs defender "
        "policies over seeded worlds; emits a byte-reproducible report "
        "with profit/goodput frontiers and the collapse-region phase "
        "diagram",
    )
    arena.add_argument(
        "--seed", type=int, default=0,
        help="tournament seed; worlds and every cell derive from it "
        "(default 0)",
    )
    arena.add_argument(
        "--worlds", type=int, default=25, metavar="N",
        help="number of generated worlds per matchup (default 25)",
    )
    arena.add_argument(
        "--periods", type=int, default=8, metavar="N",
        help="match length in periods/virtual days (default 8)",
    )
    arena.add_argument(
        "--attackers", metavar="A,B,...", default=None,
        help="comma-separated attacker strategies (default: all "
        "registered)",
    )
    arena.add_argument(
        "--defenders", metavar="A,B,...", default=None,
        help="comma-separated defender policies (default: all "
        "registered)",
    )
    arena.add_argument(
        "--verify", type=int, default=0, metavar="N",
        help="lower the first N cells and run them through the "
        "cross-executor differential oracle (default 0)",
    )
    arena.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the canonical report JSON here (byte-identical for "
        "the same seed and arguments)",
    )
    arena.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the full report JSON instead of the text summary",
    )
    return parser


def cmd_quickstart(args: argparse.Namespace) -> int:
    from .core import ZmailNetwork
    from .sim import Address

    net = ZmailNetwork(n_isps=2, users_per_isp=5, seed=args.seed)
    alice, bob = Address(0, 1), Address(1, 2)
    for _ in range(args.messages):
        net.send(alice, bob)
    sender = net.isps[0].ledger.user(1)
    receiver = net.isps[1].ledger.user(2)
    print(f"{alice} sent {sender.lifetime_sent} messages, "
          f"balance {sender.balance}")
    print(f"{bob} received {receiver.lifetime_received}, "
          f"balance {receiver.balance}")
    print(f"reconciliation consistent: {net.reconcile('direct').consistent}")
    print(f"conserved: {net.total_value() == net.expected_total_value()}")
    return 0


def cmd_breakeven(args: argparse.Namespace) -> int:
    from .economics import break_even_table, cost_increase_factor

    print(f"per-message cost factor under Zmail: {cost_increase_factor():.0f}x")
    print(f"{'campaign':<16} {'sq volume':>12} {'zmail volume':>13} survives")
    for row in break_even_table():
        print(f"{row.campaign:<16} {row.statusquo_volume:>12,} "
              f"{row.zmail_volume:>13,} {'yes' if row.survives else 'no':>8}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from .baselines import ComparisonScenario, run_comparison

    results = run_comparison(
        ComparisonScenario(n_train=800, n_test=800, seed=args.seed)
    )
    print(f"{'approach':<22} {'blocked':>8} {'ham lost':>9} "
          f"{'$/msg':>8} {'needs defn':>10}")
    for result in results:
        print(f"{result.approach:<22} "
              f"{result.spam_blocked_fraction:>7.0%} "
              f"{result.ham_lost_fraction:>8.1%} "
              f"{result.sender_dollar_cost_per_msg:>8.4f} "
              f"{'yes' if result.needs_spam_definition else 'no':>10}")
    return 0


def cmd_adoption(args: argparse.Namespace) -> int:
    from .core import AdoptionParams, AdoptionSimulation

    sim = AdoptionSimulation(
        AdoptionParams(
            n_isps=args.isps,
            base_switch_propensity=args.propensity,
            seed=args.seed,
        )
    )
    sim.run(max_rounds=100)
    for record in sim.rounds[:: max(1, len(sim.rounds) // 15)]:
        bar = "#" * int(40 * record.compliant_fraction)
        print(f"round {record.round_index:>3}: {bar:<40} "
              f"{record.compliant_fraction:.0%}")
    print(f"positive feedback: {sim.has_positive_feedback()}")
    return 0


def cmd_spec_check(args: argparse.Namespace) -> int:
    from .apn import CheatMode, ZmailSpecConfig, build_zmail_protocol

    cheaters = {1: CheatMode.INFLATE_SENT} if args.cheat else {}
    config = ZmailSpecConfig(
        n=args.isps, m=args.users, seed=args.seed, key_bits=128,
        cheaters=cheaters,
    )
    protocol = build_zmail_protocol(config)
    steps = protocol.run(args.steps)
    print(f"steps executed:        {steps}")
    print(f"reconciliation rounds: {protocol.completed_rounds()}")
    print(f"flagged pairs:         {len(protocol.flagged_pairs())}")
    if args.cheat:
        flagged = {isp for pair in protocol.flagged_pairs() for isp in pair}
        caught = 1 in flagged
        print(f"cheater isp[1] caught: {caught}")
        return 0 if caught else 1
    return 0 if not protocol.flagged_pairs() else 1


def cmd_zombie(args: argparse.Namespace) -> int:
    from .core import ZmailConfig, ZmailNetwork
    from .core.zombie import ZombieMonitor
    from .sim import Address

    config = ZmailConfig(
        default_daily_limit=args.limit,
        default_user_balance=1000,
        auto_topup_amount=0,
    )
    net = ZmailNetwork(n_isps=2, users_per_isp=5, config=config,
                       seed=args.seed)
    zombie = Address(0, 1)
    for i in range(10 * args.limit):
        net.send(zombie, Address(1, i % 5))
    monitor = ZombieMonitor(net)
    monitor.poll()
    user = net.isps[0].ledger.user(1)
    print(f"daily limit:     {args.limit}")
    print(f"zombie detected: {monitor.detected(zombie)}")
    print(f"liability:       {1000 - user.balance} e-pennies (bound: "
          f"{args.limit})")
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    from .core import NonCompliantMailPolicy, ZmailConfig
    from .core.scenario import Scenario, SpammerSpec, ZombieSpec
    from .sim import DAY, HOUR, Address

    result = Scenario(
        n_isps=4,
        users_per_isp=10,
        compliant=[True, True, True, False],
        config=ZmailConfig(
            default_daily_limit=80,
            noncompliant_policy=NonCompliantMailPolicy.SEGREGATE,
            auto_topup_amount=0,
        ),
        seed=args.seed,
        duration=args.days * DAY,
        spammers=[
            SpammerSpec(Address(0, 0), volume=500, war_chest=100),
            SpammerSpec(Address(3, 0), volume=500),
        ],
        zombies=[
            ZombieSpec(Address(1, 9), rate_per_hour=100.0,
                       start=DAY, end=DAY + 6 * HOUR)
        ],
        reconcile_every=DAY,
    ).run()
    for key, value in result.summary().items():
        print(f"{key:<24} {value}")
    return 0 if (result.conserved and result.all_reconciliations_consistent) else 1


def cmd_audit(args: argparse.Namespace) -> int:
    import random

    from .core import ZmailConfig, ZmailNetwork
    from .core.audit import EconomicAuditor
    from .sim import Address

    config = ZmailConfig(
        initial_pool=500, minavail=200, maxavail=900,
        default_user_balance=50, auto_topup_amount=10,
    )
    net = ZmailNetwork(n_isps=3, users_per_isp=8, config=config,
                       seed=args.seed)
    auditor = EconomicAuditor()
    endowment = config.initial_pool + 8 * config.default_user_balance
    for isp_id in net.compliant_isps():
        auditor.register_isp(isp_id, initial_endowment=endowment)
    net.isps[1].ledger.pool += args.mint
    print(f"isp1 secretly minted {args.mint} e-pennies...")

    rng = random.Random(args.seed)
    for day in range(1, 15):
        for _ in range(300):
            net.send(Address(rng.randrange(3), rng.randrange(8)),
                     Address(rng.randrange(3), rng.randrange(8)))
        isps = net.compliant_isps()
        for isp in isps.values():
            isp.begin_snapshot(net.bank.next_seq)
        reports = {}
        for isp_id, isp in sorted(isps.items()):
            reports[isp_id] = isp.snapshot_reply()
            isp.resume_sending()
        net.bank.reconcile(reports)
        auditor.ingest_credit_reports(reports)
        before = {i: net.bank.account_balance(i) for i in isps}
        net.advance_day_to(day)
        for isp_id in isps:
            delta = net.bank.account_balance(isp_id) - before[isp_id]
            if delta < 0:
                auditor.note_purchase(isp_id, -delta)
            elif delta > 0:
                auditor.note_sale(isp_id, delta)
    alerts = auditor.check()
    for alert in alerts:
        print(f"ALERT: isp{alert.isp_id} sold {alert.sold} e-pennies, "
              f"solvency ceiling {alert.ceiling} (excess {alert.excess})")
    if not alerts:
        print("all clear")
    caught = any(a.isp_id == 1 for a in alerts) if args.mint else not alerts
    return 0 if caught else 1


def cmd_cluster(args: argparse.Namespace) -> int:
    import json

    from .cluster import ClusterConfig, cluster_scenario, run_cluster
    from .sim import HOUR

    scenario = cluster_scenario(
        args.seed,
        n_isps=args.isps,
        users_per_isp=args.users,
        days=args.days,
    )
    result = run_cluster(
        ClusterConfig(
            scenario=scenario,
            n_shards=args.shards,
            epoch_len=args.epoch_hours * HOUR,
            mode=args.mode,
            journal_dir=args.journal_dir,
            lag=args.lag,
        )
    )
    if args.manifest:
        with open(args.manifest, "w", encoding="utf-8") as handle:
            handle.write(result.manifest.to_json())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(result.report, sort_keys=True, indent=2) + "\n"
            )
    extra = result.manifest.extra
    drive = "lockstep" if args.lag == 0 else f"bounded-lag K={args.lag}"
    print(f"shards:          {args.shards} ({args.mode}, {drive})")
    print(f"cycles:          {result.report['cycles']} "
          f"x {args.epoch_hours}h epochs")
    print(f"sends attempted: {extra['sends_attempted']}")
    print(f"events:          {result.manifest.event_count}")
    print(f"rounds:          {extra['rounds']} "
          f"(consistent: {result.all_consistent})")
    print(f"zombies caught:  {extra['zombies_detected']}")
    print(f"conserved:       {result.conserved}")
    print(f"manifest digest: {result.manifest.digest()}")
    return 0 if (result.conserved and result.all_consistent) else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .chaos import DEFAULT_SPEC, format_report, load_spec, run_campaign

    spec = load_spec(args.spec) if args.spec else DEFAULT_SPEC
    report = run_campaign(spec, seed=args.seed)
    payload = json.dumps(report, sort_keys=True, indent=2)
    if args.as_json:
        print(payload)
    else:
        print(format_report(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    return 0 if report["passed"] else 1


def cmd_overload(args: argparse.Namespace) -> int:
    import json

    from .chaos import (
        DEFAULT_OVERLOAD_SPEC,
        OVERLOAD_COLUMNS,
        format_report,
        load_spec,
        run_campaign,
    )

    spec = load_spec(args.spec) if args.spec else DEFAULT_OVERLOAD_SPEC
    report = run_campaign(spec, seed=args.seed)
    payload = json.dumps(report, sort_keys=True, indent=2)
    if args.as_json:
        print(payload)
    else:
        print(format_report(report, columns=OVERLOAD_COLUMNS))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    return 0 if report["passed"] else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from .obs.canonical import invariant_manifest, run_canonical
    from .obs.schema import validate_trace_lines
    from .obs.trace import ListSink

    sink = ListSink()
    result, recorder, exporter, manifest = run_canonical(
        seed=args.seed, sink=sink, mode=args.mode
    )
    lines = sink.lines()
    validate_trace_lines(lines)
    manifest_path = args.manifest
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        if manifest_path is None:
            manifest_path = f"{args.out}.manifest.json"
    if manifest_path:
        with open(manifest_path, "w", encoding="utf-8") as handle:
            handle.write(manifest.to_json())
    if args.invariant_manifest:
        invariant = invariant_manifest(seed=args.seed, mode=args.mode)
        with open(args.invariant_manifest, "w", encoding="utf-8") as handle:
            handle.write(invariant.to_json())
    if args.tail > 0:
        for line in lines[-args.tail:]:
            print(line)
    print(f"events:          {recorder.events_emitted}")
    print(f"event digest:    {recorder.digest()}")
    print(f"metrics digest:  {exporter.digest()}")
    print(f"manifest digest: {manifest.digest()}")
    print(f"conserved:       {result.conserved}")
    return 0 if result.conserved else 1


def cmd_metrics(args: argparse.Namespace) -> int:
    from .obs.canonical import run_canonical

    result, _recorder, exporter, _manifest = run_canonical(seed=args.seed)
    payload = exporter.to_json()
    print(payload)
    print(f"metrics digest:  {exporter.digest()}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    return 0 if result.conserved else 1


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from .core import ZmailNetwork
    from .core.overload import OverloadConfig
    from .store import DurableStore, init_store
    from .store.service import ZmailService

    if os.path.exists(args.store):
        store = DurableStore.open(args.store)
        print(f"opened store {args.store} at barrier {store.barrier} "
              f"({store.count()} records)")
    else:
        store = DurableStore.create(args.store)
        init_store(
            store,
            ZmailNetwork(
                n_isps=args.isps, users_per_isp=args.users, seed=args.seed
            ),
        )
        print(f"created store {args.store} "
              f"({args.isps} ISPs x {args.users} users, seed {args.seed})")
    overload = OverloadConfig() if args.overload else None

    async def _serve() -> None:
        service = ZmailService(
            store, overload=overload, commit_interval=args.commit_interval
        )
        addresses = await service.start()
        for isp_id, (host, port) in sorted(addresses.items()):
            print(f"isp{isp_id}.example listening on {host}:{port}")
        print("serving (Ctrl-C to stop)...")
        try:
            if args.duration is not None:
                await asyncio.sleep(args.duration)
            else:
                await asyncio.Event().wait()
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            await service.stop()
            stats = service.stats()
            print(f"stopped at barrier {stats['barrier']}: "
                  f"{stats['messages_handled']} messages handled, "
                  f"{stats['pending_sends']} pending, "
                  f"conserved={stats['conserved']}")

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    finally:
        store.close()
    return 0


def cmd_selftest(args: argparse.Namespace) -> int:
    from .store.service import run_selftest

    report = run_selftest(args.store)
    for key in ("records", "barrier", "isps", "anti_symmetric",
                "conserved", "roundtrip"):
        print(f"{key:<16} {report[key]}")
    print(f"{'passed':<16} {report['passed']}")
    return 0 if report["passed"] else 1


def cmd_soak(args: argparse.Namespace) -> int:
    import os
    import tempfile

    from .store.soak import SoakSpec, run_soak

    nodes = tuple(
        ("isp1", "bank")[i % 2] for i in range(args.crashes)
    )
    spec = SoakSpec(
        seed=args.seed,
        n_isps=args.isps,
        users_per_isp=args.users,
        days=args.days,
        crash_nodes=nodes,
    )
    if args.oracle:
        report = run_soak(spec, manifest_path=args.manifest)
    elif args.store is not None:
        report = run_soak(
            spec, store_path=args.store, manifest_path=args.manifest
        )
    else:
        with tempfile.TemporaryDirectory() as tmpdir:
            report = run_soak(
                spec,
                store_path=os.path.join(tmpdir, "soak.db"),
                manifest_path=args.manifest,
            )
    print(f"mode:            {report['mode']}")
    print(f"cuts:            {report['cuts']}")
    print(f"crashes:         {report['stats']['crashes']} "
          f"(restarts {report['stats']['restarts']})")
    print(f"converged:       {report['converged']}")
    print(f"conserved:       {report['conserved']}")
    print(f"final digest:    {report['final_digest']}")
    print(f"event digest:    {report['manifest']['event_digest']}")
    print(f"passed:          {report['passed']}")
    return 0 if report["passed"] else 1


def cmd_run(args: argparse.Namespace) -> int:
    import json

    from .scenario import compile_scenario, run_plan

    plan = compile_scenario(args.scenario)
    result = run_plan(
        plan,
        args.mode,
        shards=args.shards,
        lag=args.lag,
        cluster_mode=args.cluster_mode,
    )
    manifest = result["manifest"]
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(result["report"], sort_keys=True, indent=2) + "\n"
            )
    print(f"scenario:        {plan.name}")
    print(f"scenario digest: {plan.digest}")
    print(f"mode:            {result['mode']}")
    if manifest is None:
        row = result["report"]
        print(f"chaos cell:      {row['cell']} (seed {row['seed']})")
        print(f"converged:       {row['converged']}")
        print(f"conserved:       {row['conserved']}")
        print(f"passed:          {row['passed']}")
        if args.manifest:
            print("note: chaos mode reports a campaign row; no invariant "
                  "manifest was written")
        return 0 if row["passed"] else 1
    if args.manifest:
        with open(args.manifest, "w", encoding="utf-8") as handle:
            handle.write(manifest.to_json())
    extra = manifest.extra
    print(f"sends attempted: {extra['sends_attempted']}")
    print(f"events:          {manifest.event_count}")
    print(f"zombies caught:  {extra['zombies_detected']}")
    print(f"conserved:       {extra['conserved']}")
    print(f"manifest digest: {manifest.digest()}")
    return 0 if extra["conserved"] else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from .scenario import format_report, replay_world, run_fuzz

    if args.replay:
        report = replay_world(
            args.replay,
            shards=args.shards,
            out=args.out,
            max_shrink_steps=args.max_shrink_steps,
        )
    else:
        report = run_fuzz(
            count=args.count,
            seed=args.seed,
            shards=args.shards,
            out=args.out,
            max_shrink_steps=args.max_shrink_steps,
        )
    if args.as_json:
        print(json.dumps(report, sort_keys=True, indent=2))
    else:
        print(format_report(report))
    return 0 if report["passed"] else 1


def cmd_arena(args: argparse.Namespace) -> int:
    import json

    from .arena import report_digest, report_json, run_tournament

    report = run_tournament(
        seed=args.seed,
        attackers=args.attackers.split(",") if args.attackers else None,
        defenders=args.defenders.split(",") if args.defenders else None,
        worlds=args.worlds,
        periods=args.periods,
        verify=args.verify,
    )
    text = report_json(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
    if args.as_json:
        print(text, end="")
        return 0 if report["passed"] else 1
    print(f"arena:          {len(report['attackers'])} attackers x "
          f"{len(report['defenders'])} defenders x "
          f"{report['world_count']} worlds ({report['periods']} periods)")
    print(f"seed:           {report['seed']}")
    print(f"report digest:  {report_digest(report)}")
    print(f"cells:          {len(report['cells'])} "
          f"(verified: {report['verify']['cells']}, "
          f"verify failures: {len(report['verify']['failures'])})")
    print(f"{'defender':<18} {'profitable':>10} {'collapsed':>9} "
          f"{'boundary ev $/msg':>18}")
    for defender in report["defenders"]:
        phase = report["phase"][defender]
        boundary = phase["collapse_boundary_ev"]
        shown = "-" if boundary is None else format(boundary, ".6f")
        print(f"{defender:<18} "
              f"{phase['profitable_worlds']:>7}/{phase['worlds']:<3}"
              f"{phase['collapsed_worlds']:>9} "
              f"{shown:>18}")
    print(f"passed:         {report['passed']}")
    return 0 if report["passed"] else 1


_COMMANDS = {
    "quickstart": cmd_quickstart,
    "breakeven": cmd_breakeven,
    "compare": cmd_compare,
    "adoption": cmd_adoption,
    "spec-check": cmd_spec_check,
    "zombie": cmd_zombie,
    "scenario": cmd_scenario,
    "audit": cmd_audit,
    "cluster": cmd_cluster,
    "chaos": cmd_chaos,
    "overload": cmd_overload,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "serve": cmd_serve,
    "selftest": cmd_selftest,
    "soak": cmd_soak,
    "run": cmd_run,
    "fuzz": cmd_fuzz,
    "arena": cmd_arena,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    command = _COMMANDS[args.command]
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        code = profiler.runcall(command, args)
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(args.profile_top)
        return code
    return command(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
