"""One namespaced registry over every metric the system produces.

Before this module, each harness read its own private counters: the
benchmarks reached into ``network.metrics``, the chaos campaign into
``deployment.stats()``, the SMTP tests into ``gateway.*`` counter names.
:class:`MetricsExporter` unifies them: attach registries, callables and
static values under namespaces, then :meth:`export` a single flat,
sorted, JSON-ready mapping.

The export digest is **order-insensitive by construction**: keys are
sorted before serialization, so the digest depends only on the final
``name → value`` mapping, never on attachment order. The property tests
pin this down.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Mapping

from ..sim.metrics import MetricsRegistry

__all__ = [
    "METRICS_FORMAT_VERSION",
    "MetricsExporter",
    "export_network",
    "export_deployment",
]

#: Bumped when the export layout or digest definition changes.
METRICS_FORMAT_VERSION = 1


class MetricsExporter:
    """Namespaced aggregation of registries, sources and static values.

    Attach producers under unique namespaces; :meth:`collect` flattens
    everything to ``namespace.key`` entries read at call time (sources
    are live — re-collecting after more traffic reflects the new
    counts).
    """

    def __init__(self) -> None:
        self._registries: dict[str, MetricsRegistry] = {}
        self._sources: dict[str, Callable[[], Mapping[str, object]]] = {}
        self._static: dict[str, dict[str, object]] = {}

    def _claim(self, namespace: str) -> None:
        if not namespace or "." in namespace:
            raise ValueError(f"invalid namespace {namespace!r}")
        if (
            namespace in self._registries
            or namespace in self._sources
            or namespace in self._static
        ):
            raise ValueError(f"namespace {namespace!r} already attached")

    def add_registry(self, namespace: str, registry: MetricsRegistry) -> None:
        """Attach a :class:`MetricsRegistry`; counters, series and
        histogram summaries export under ``namespace.<instrument>``."""
        self._claim(namespace)
        self._registries[namespace] = registry

    def add_source(
        self, namespace: str, source: Callable[[], Mapping[str, object]]
    ) -> None:
        """Attach a live callable returning a flat ``{key: scalar}`` map."""
        self._claim(namespace)
        self._sources[namespace] = source

    def add_static(self, namespace: str, values: Mapping[str, object]) -> None:
        """Attach fixed values (run parameters, verdicts) copied now."""
        self._claim(namespace)
        self._static[namespace] = dict(values)

    def namespaces(self) -> list[str]:
        """Every attached namespace, sorted."""
        return sorted(
            set(self._registries) | set(self._sources) | set(self._static)
        )

    def collect(self) -> dict[str, object]:
        """Flatten everything to a ``{namespace.key: value}`` mapping."""
        flat: dict[str, object] = {}
        for namespace, registry in self._registries.items():
            snap = registry.snapshot()
            for name, value in snap["counters"].items():
                flat[f"{namespace}.{name}"] = value
            for name, info in snap["series"].items():
                flat[f"{namespace}.{name}.len"] = info["len"]
                flat[f"{namespace}.{name}.mean"] = info["stats"]["mean"]
            for name, info in snap["histograms"].items():
                flat[f"{namespace}.{name}.observations"] = info["observations"]
                flat[f"{namespace}.{name}.mean"] = info["mean"]
        for namespace, source in self._sources.items():
            for name, value in source().items():
                flat[f"{namespace}.{name}"] = value
        for namespace, values in self._static.items():
            for name, value in values.items():
                flat[f"{namespace}.{name}"] = value
        return flat

    def export(self) -> dict[str, object]:
        """The JSON-ready document: format version + sorted metrics."""
        flat = self.collect()
        return {
            "format_version": METRICS_FORMAT_VERSION,
            "metrics": {name: flat[name] for name in sorted(flat)},
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize :meth:`export` (sorted keys; pretty by default)."""
        return json.dumps(self.export(), sort_keys=True, indent=indent)

    def digest(self) -> str:
        """SHA-256 over the canonical export bytes (hex).

        Order-insensitive with respect to attachment order: the export
        sorts every key, so only the name→value mapping matters.
        """
        canonical = json.dumps(
            self.export(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def export_network(network) -> MetricsExporter:
    """The standard exporter for a :class:`~repro.core.protocol.ZmailNetwork`.

    Namespaces: ``zmail`` (the protocol registry, including the
    ``gateway.*`` counters an attached SMTP gateway records there),
    ``overload`` (admission accounting), and when present ``engine`` /
    ``link`` (event and wire totals).
    """
    exporter = MetricsExporter()
    exporter.add_registry("zmail", network.metrics)
    exporter.add_source(
        "overload",
        lambda: {
            key.removeprefix("overload_"): value
            for key, value in network.overload_stats().items()
        },
    )
    if network.engine is not None:
        engine = network.engine
        exporter.add_source(
            "engine",
            lambda: {
                "events_processed": engine.events_processed,
                "pending": engine.pending,
            },
        )
    if network.net is not None:
        net = network.net
        exporter.add_source(
            "link",
            lambda: {
                "messages_sent": net.messages_sent,
                "messages_delivered": net.messages_delivered,
                "messages_dropped": net.messages_dropped,
                "bytes_sent": net.bytes_sent,
            },
        )
    return exporter


def export_deployment(deployment) -> MetricsExporter:
    """Exporter for a chaos :class:`~repro.chaos.deployment.ChaosDeployment`.

    Everything :func:`export_network` provides, plus the harness's own
    accounting (fault, crash, snapshot and monitor totals) under
    ``chaos``. The deployment drives its Zmail network in direct mode,
    so the ``engine`` and ``link`` namespaces come from the harness's
    own engine and faulty wire rather than from the network.
    """
    exporter = export_network(deployment.network)
    engine = deployment.engine
    if engine is not None and "engine" not in exporter.namespaces():
        exporter.add_source(
            "engine",
            lambda: {
                "events_processed": engine.events_processed,
                "pending": engine.pending,
            },
        )
    net = deployment.net
    if net is not None and "link" not in exporter.namespaces():
        exporter.add_source(
            "link",
            lambda: {
                "messages_sent": net.messages_sent,
                "messages_delivered": net.messages_delivered,
                "messages_dropped": net.messages_dropped,
                "bytes_sent": net.bytes_sent,
            },
        )
    exporter.add_source("chaos", deployment.stats)
    return exporter
