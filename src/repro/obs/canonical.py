"""The canonical 3-ISP scenario behind ``repro trace`` and the oracle tests.

One fixed, fast (<1s), mixed workload — normal correspondence, a funded
spam campaign, a zombie burst, daily reconciliation — exercising every
ledger-visible event type. Its only free parameter is the seed, so the
trace digest doubles as a regression oracle: any behavioural change in
the protocol shows up as a digest change here before anything else.
"""

from __future__ import annotations

from ..core.config import ZmailConfig
from ..core.scenario import Scenario, SpammerSpec, ZombieSpec
from ..sim.clock import DAY, HOUR
from ..sim.workload import Address
from .manifest import RunManifest, build_manifest
from .metrics_export import MetricsExporter, export_network
from .trace import TraceRecorder

__all__ = ["CANONICAL_SEED", "canonical_scenario", "run_canonical"]

#: The default seed for the canonical run (matching the campaign specs).
CANONICAL_SEED = 7


def canonical_config() -> ZmailConfig:
    """The canonical run's deployment parameters."""
    return ZmailConfig(default_daily_limit=120)


def canonical_scenario(
    *, seed: int = CANONICAL_SEED, tracer: TraceRecorder | None = None
) -> Scenario:
    """Build the canonical scenario (direct mode, 3 ISPs × 8 users)."""
    return Scenario(
        n_isps=3,
        users_per_isp=8,
        config=canonical_config(),
        seed=seed,
        duration=2 * DAY,
        normal_rate_per_day=40.0,
        spammers=[SpammerSpec(Address(1, 0), volume=400, war_chest=60)],
        zombies=[
            ZombieSpec(
                Address(2, 7),
                rate_per_hour=120.0,
                start=12 * HOUR,
                end=DAY,
            )
        ],
        reconcile_every=DAY,
        tracer=tracer,
    )


def run_canonical(
    *, seed: int = CANONICAL_SEED, sink=None
) -> tuple[object, TraceRecorder, MetricsExporter, RunManifest]:
    """Run the canonical scenario with tracing on.

    Returns ``(result, recorder, exporter, manifest)`` — everything the
    CLI and the determinism tests need in one call.
    """
    recorder = TraceRecorder(sink=sink)
    scenario = canonical_scenario(seed=seed, tracer=recorder)
    result = scenario.run()
    exporter = export_network(result.network)
    manifest = build_manifest(
        seed=seed,
        config=scenario.config,
        recorder=recorder,
        exporter=exporter,
        extra={
            "scenario": "canonical-3isp",
            "sends_attempted": result.sends_attempted,
            "conserved": result.conserved,
        },
    )
    return result, recorder, exporter, manifest
