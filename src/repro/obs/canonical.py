"""The canonical 3-ISP scenario behind ``repro trace`` and the oracle tests.

One fixed, fast (<1s), mixed workload — normal correspondence, a funded
spam campaign, a zombie burst, daily reconciliation — exercising every
ledger-visible event type. Its only free parameter is the seed, so the
trace digest doubles as a regression oracle: any behavioural change in
the protocol shows up as a digest change here before anything else.

The scenario can be driven by any executor (``mode``): the ``direct``
loop, the ``columnar`` batch executor, or the ``engine_stream`` event
engine over a zero-latency link. :func:`invariant_manifest` distils a
run down to its executor-invariant facts — the ledger-event multiset
with timestamps/sequence/method stripped, the protocol metrics, and the
accounting digest — so CI can ``cmp`` the resulting files across modes.
"""

from __future__ import annotations

from ..core.config import ZmailConfig
from ..core.scenario import Scenario, SpammerSpec, ZombieSpec
from ..errors import SimulationError
from ..sim.clock import DAY, HOUR
from ..sim.network import LinkSpec
from ..sim.workload import Address
from .manifest import (
    RunManifest,
    accounting_digest,
    build_manifest,
    config_digest,
)
from .metrics_export import MetricsExporter, export_network
from .schema import LEDGER_EVENT_TYPES
from .trace import AdditiveMultisetDigest, DigestSink, TraceRecorder

__all__ = [
    "CANONICAL_SEED",
    "CANONICAL_MODES",
    "canonical_scenario",
    "run_canonical",
    "invariant_manifest",
]

#: The default seed for the canonical run (matching the campaign specs).
CANONICAL_SEED = 7

#: Executors that can drive the canonical scenario.
CANONICAL_MODES = ("direct", "columnar", "engine_stream")


def _apply_mode(scenario: Scenario, mode: str) -> Scenario:
    """Point the scenario at one of the three executors."""
    if mode == "columnar":
        scenario.columnar = True
    elif mode == "engine_stream":
        # Zero latency keeps every delivery inside the sender's epoch so
        # executor-invariant facts line up with the synchronous modes.
        scenario.engine_mode = True
        scenario.link = LinkSpec(base_latency=0.0)
    elif mode != "direct":
        raise SimulationError(
            f"unknown canonical mode {mode!r}; expected one of {CANONICAL_MODES}"
        )
    return scenario


def canonical_config() -> ZmailConfig:
    """The canonical run's deployment parameters."""
    return ZmailConfig(default_daily_limit=120)


def canonical_scenario(
    *,
    seed: int = CANONICAL_SEED,
    tracer: TraceRecorder | None = None,
    mode: str = "direct",
) -> Scenario:
    """Build the canonical scenario (3 ISPs × 8 users, default direct)."""
    scenario = Scenario(
        n_isps=3,
        users_per_isp=8,
        config=canonical_config(),
        seed=seed,
        duration=2 * DAY,
        normal_rate_per_day=40.0,
        spammers=[SpammerSpec(Address(1, 0), volume=400, war_chest=60)],
        zombies=[
            ZombieSpec(
                Address(2, 7),
                rate_per_hour=120.0,
                start=12 * HOUR,
                end=DAY,
            )
        ],
        reconcile_every=DAY,
        tracer=tracer,
    )
    return _apply_mode(scenario, mode)


def run_canonical(
    *, seed: int = CANONICAL_SEED, sink=None, mode: str = "direct"
) -> tuple[object, TraceRecorder, MetricsExporter, RunManifest]:
    """Run the canonical scenario with tracing on.

    Returns ``(result, recorder, exporter, manifest)`` — everything the
    CLI and the determinism tests need in one call. The manifest's
    digests are executor-specific (timestamps and emission order differ
    between modes); use :func:`invariant_manifest` for cross-mode
    comparison.
    """
    recorder = TraceRecorder(sink=sink)
    scenario = canonical_scenario(seed=seed, tracer=recorder, mode=mode)
    result = scenario.run()
    exporter = export_network(result.network)
    manifest = build_manifest(
        seed=seed,
        config=scenario.config,
        recorder=recorder,
        exporter=exporter,
        extra={
            "scenario": "canonical-3isp",
            "mode": mode,
            "sends_attempted": result.sends_attempted,
            "conserved": result.conserved,
        },
    )
    return result, recorder, exporter, manifest


def invariant_manifest(
    *, seed: int = CANONICAL_SEED, mode: str = "direct"
) -> RunManifest:
    """Run the canonical scenario and keep only executor-invariant facts.

    The returned manifest is byte-identical across ``direct``,
    ``columnar`` and ``engine_stream`` for the same seed (CI compares
    the three files with ``cmp``):

    * ``event_digest`` / ``event_count`` — the additive multiset of
      ledger events with ``t``/``seq``/``method`` stripped (virtual
      timestamps and the reconcile trigger differ between executors;
      the *set of ledger facts* must not);
    * ``metrics_digest`` — the ``zmail`` protocol registry only (the
      engine adds ``engine``/``link`` namespaces of its own);
    * ``extra`` — the accounting digest over every balance, plus the
      summary facts every executor must agree on.
    """
    ledger_acc = AdditiveMultisetDigest(
        include_types=LEDGER_EVENT_TYPES,
        exclude_fields=("t", "seq", "method"),
    )
    recorder = TraceRecorder(sink=DigestSink(ledger_acc))
    scenario = canonical_scenario(seed=seed, tracer=recorder, mode=mode)
    result = scenario.run()
    exporter = MetricsExporter()
    exporter.add_registry("zmail", result.network.metrics)
    return RunManifest(
        seed=seed,
        config_digest=config_digest(scenario.config),
        event_count=ledger_acc.count,
        event_digest=ledger_acc.digest(),
        metrics_digest=exporter.digest(),
        extra={
            "scenario": "canonical-3isp-invariant",
            "accounting_digest": accounting_digest(result.network),
            "sends_attempted": result.sends_attempted,
            "conserved": result.conserved,
            "total_value": result.network.total_value(),
        },
    )
