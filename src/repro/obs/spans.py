"""Wall-clock span timing, kept strictly out of the trace digests.

Traces (:mod:`repro.obs.trace`) are byte-reproducible because they carry
virtual time only. Profiling still needs wall time — how long a snapshot
round, a transfer batch or an SMTP session actually took — so spans live
in their own registry that is *never* folded into any digest or manifest
field that two runs are compared on.

Usage::

    spans = SpanRegistry()
    with spans.span("snapshot.round"):
        coordinator.run()
    spans.stats()["snapshot.round"]["total"]   # seconds

A disabled registry hands out a shared no-op context manager, so
instrumented code pays one dict-free call on the disabled path.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable

__all__ = ["SpanRegistry", "NULL_SPANS"]


class _SpanStats:
    """Accumulated timings for one span name."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds


class _Span:
    """Context manager timing one span occurrence."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "SpanRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._registry._timer()
        return self

    def __exit__(self, *exc) -> None:
        self._registry.record(
            self._name, self._registry._timer() - self._start
        )


class _NullSpan:
    """The shared no-op span a disabled registry hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class SpanRegistry:
    """Names → accumulated wall-clock timings.

    Args:
        enabled: A disabled registry hands out a no-op span and records
            nothing.
        timer: Clock used for spans; injectable for deterministic tests
            (defaults to :func:`time.perf_counter`).
    """

    __slots__ = ("enabled", "_timer", "_stats")

    def __init__(
        self,
        *,
        enabled: bool = True,
        timer: Callable[[], float] = perf_counter,
    ) -> None:
        self.enabled = enabled
        self._timer = timer
        self._stats: dict[str, _SpanStats] = {}

    def span(self, name: str):
        """A context manager timing one occurrence of ``name``."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def record(self, name: str, seconds: float) -> None:
        """Record one timed occurrence directly (span-free callers)."""
        if not self.enabled:
            return
        stats = self._stats.get(name)
        if stats is None:
            stats = _SpanStats()
            self._stats[name] = stats
        stats.add(seconds)

    def stats(self) -> dict[str, dict[str, float]]:
        """``{name: {count, total, min, max, mean}}`` for all spans seen."""
        out: dict[str, dict[str, float]] = {}
        for name, stats in sorted(self._stats.items()):
            out[name] = {
                "count": stats.count,
                "total": stats.total,
                "min": stats.min if stats.count else 0.0,
                "max": stats.max,
                "mean": stats.total / stats.count if stats.count else 0.0,
            }
        return out


#: Shared disabled registry, the default for every instrumented component.
NULL_SPANS = SpanRegistry(enabled=False)
