"""Run manifests: the identity card that makes two runs comparable.

A manifest pins everything that *should* determine a run's observable
behaviour (seed, config digest, format versions) next to digests of what
the run actually produced (event stream, metrics). Two runs are
byte-for-byte comparable iff their manifests are equal; a mismatch tells
you *which* layer diverged (config? events? metrics?) before you diff a
single trace line.

Digest discipline: :meth:`RunManifest.digest` is computed over the
sorted-key canonical serialization, so it is **order-insensitive** with
respect to dict insertion order in ``extra`` and construction order of
fields — only the name→value mapping matters (property-tested). Wall
clock never appears in a manifest.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from .metrics_export import METRICS_FORMAT_VERSION
from .trace import TRACE_FORMAT_VERSION

__all__ = [
    "MANIFEST_FORMAT_VERSION",
    "RunManifest",
    "accounting_digest",
    "config_digest",
    "build_manifest",
]

#: Bumped when manifest fields or their digest definition change.
MANIFEST_FORMAT_VERSION = 1


def _jsonable(value):
    """Coerce config values to JSON-stable forms (enums → their value)."""
    if hasattr(value, "value") and not isinstance(value, (int, float, str, bool)):
        return value.value
    return value


def config_digest(config) -> str:
    """SHA-256 over a config dataclass's canonical field mapping (hex).

    Field order does not matter (keys are sorted); enum fields hash by
    their ``.value`` so renaming an enum *class* is not a config change
    but changing a policy is.
    """
    payload = {
        name: _jsonable(value)
        for name, value in dataclasses.asdict(config).items()
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def accounting_digest(network) -> str:
    """SHA-256 over every balance in the system, for determinism checks.

    Covers per-user (account, balance) pairs, ISP pools and cash, bank
    accounts, letters in flight and both sides of the conservation audit.
    Two runs agree on this digest iff they agree on all money movement.
    The macro benchmark, the cross-executor tests and the per-cut
    assertions of the columnar mode all compare this digest.
    """
    state: dict[str, object] = {
        "in_flight": network.paid_letters_in_flight,
        "total_value": network.total_value(),
        "expected_total_value": network.expected_total_value(),
        "bank_deposits": network.bank.total_deposits(),
        "isps": {},
    }
    for isp_id, isp in sorted(network.compliant_isps().items()):
        ledger = isp.ledger
        state["isps"][str(isp_id)] = {
            "users": [
                (u.user_id, u.account, u.balance) for u in ledger.users()
            ],
            "pool": ledger.pool,
            "cash": ledger.cash,
            "bank_account": network.bank.account_balance(isp_id),
        }
    blob = json.dumps(state, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class RunManifest:
    """Everything needed to decide whether two runs are the same run."""

    seed: int
    config_digest: str
    event_count: int
    event_digest: str
    metrics_digest: str
    trace_format_version: int = TRACE_FORMAT_VERSION
    metrics_format_version: int = METRICS_FORMAT_VERSION
    manifest_format_version: int = MANIFEST_FORMAT_VERSION
    extra: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """A plain dict with ``extra`` flattened under ``extra.``."""
        doc: dict[str, object] = {
            "seed": self.seed,
            "config_digest": self.config_digest,
            "event_count": self.event_count,
            "event_digest": self.event_digest,
            "metrics_digest": self.metrics_digest,
            "trace_format_version": self.trace_format_version,
            "metrics_format_version": self.metrics_format_version,
            "manifest_format_version": self.manifest_format_version,
        }
        for name, value in self.extra.items():
            doc[f"extra.{name}"] = value
        return doc

    def to_json(self) -> str:
        """Pretty, sorted serialization (ends with a newline) — the byte
        form ``repro trace`` writes and CI compares with ``cmp``."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def digest(self) -> str:
        """SHA-256 over the canonical (sorted, compact) manifest bytes."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        """Parse :meth:`to_json` output back into a manifest."""
        doc = json.loads(text)
        extra = {
            name.removeprefix("extra."): value
            for name, value in doc.items()
            if name.startswith("extra.")
        }
        return cls(
            seed=doc["seed"],
            config_digest=doc["config_digest"],
            event_count=doc["event_count"],
            event_digest=doc["event_digest"],
            metrics_digest=doc["metrics_digest"],
            trace_format_version=doc["trace_format_version"],
            metrics_format_version=doc["metrics_format_version"],
            manifest_format_version=doc["manifest_format_version"],
            extra=extra,
        )


def build_manifest(
    *, seed: int, config, recorder, exporter, extra: dict[str, object] | None = None
) -> RunManifest:
    """Assemble a manifest from a finished run's recorder and exporter."""
    return RunManifest(
        seed=seed,
        config_digest=config_digest(config),
        event_count=recorder.events_emitted,
        event_digest=recorder.digest(),
        metrics_digest=exporter.digest(),
        extra=dict(extra) if extra else {},
    )
