"""The event taxonomy: every trace event type and its required fields.

The schema is deliberately *open*: an event must carry the envelope
(``t``, ``seq``, ``type``) plus the required fields for its type, and may
carry extra fields — new detail can be added without a format-version
bump. Unknown *types* are rejected, because a typo'd type would silently
fall out of every ``include_types`` filter (the chaos differential test
depends on those filters being exhaustive).

See DESIGN.md §Observability for the prose taxonomy.
"""

from __future__ import annotations

import json
from typing import Iterable

from ..errors import SimulationError

__all__ = [
    "EVENT_TYPES",
    "LEDGER_EVENT_TYPES",
    "TraceSchemaError",
    "validate_event",
    "validate_trace_lines",
]


class TraceSchemaError(SimulationError):
    """An event violated the trace schema."""


#: type → required fields beyond the ``t``/``seq``/``type`` envelope.
EVENT_TYPES: dict[str, frozenset[str]] = {
    # protocol ledger path
    "send": frozenset({"src", "dst", "kind", "status"}),
    "deliver": frozenset({"src", "dst", "kind", "ok"}),
    "topup": frozenset({"isp", "user", "amount"}),
    "bank.trade": frozenset({"isp", "op", "amount"}),
    "midnight": frozenset({"day"}),
    "reconcile": frozenset({"method", "round", "consistent", "flagged"}),
    # streaming (barrier-free) reconciliation — observational only, so
    # none of these join LEDGER_EVENT_TYPES: the ledger multiset must
    # stay identical between lockstep and bounded-lag drives.
    "reconcile.delta": frozenset({"reporter", "peer", "window"}),
    "reconcile.window": frozenset({"window", "consistent", "flagged"}),
    "reconcile.fault": frozenset({"kind"}),
    # overload admission layer
    "overload.shed": frozenset({"isp"}),
    "overload.defer": frozenset({"isp"}),
    "overload.bounce": frozenset({"isp", "n"}),
    "overload.retry": frozenset({"isp"}),
    # simulated network + chaos harness
    "net.drop": frozenset({"src", "dst"}),
    "fault": frozenset({"src", "dst", "action"}),
    "crash": frozenset({"node"}),
    "restart": frozenset({"node"}),
    "snapshot.round": frozenset({"round", "attempt", "outcome"}),
    "monitor.violation": frozenset({"monitor", "kind"}),
    # strategy arena — one event per tournament-match period. Economics
    # bookkeeping, not a ledger fact, so not in LEDGER_EVENT_TYPES.
    "arena.period": frozenset({"period", "attacker", "defender"}),
    # SMTP face
    "gateway.submit": frozenset({"sender", "status"}),
    "gateway.inbound": frozenset({"outcome"}),
    "gateway.bounce": frozenset({"recipient"}),
    "smtp.session": frozenset({"outcome"}),
    # durable store — bookkeeping only, excluded from the soak's event
    # digest so durable and in-memory oracle runs stay comparable.
    "store.commit": frozenset({"barrier", "records"}),
    "store.restore": frozenset({"barrier", "records"}),
    "store.crash": frozenset({"node"}),
    "store.restart": frozenset({"node"}),
}

#: The subset of types that describe ledger-visible outcomes — what the
#: chaos differential test compares between faulty and fault-free runs.
LEDGER_EVENT_TYPES: frozenset[str] = frozenset(
    {"send", "deliver", "topup", "bank.trade", "reconcile"}
)

_ENVELOPE = ("t", "seq", "type")


def validate_event(event: dict) -> None:
    """Raise :class:`TraceSchemaError` unless ``event`` is schema-valid."""
    for name in _ENVELOPE:
        if name not in event:
            raise TraceSchemaError(f"event missing envelope field {name!r}: {event!r}")
    t = event["t"]
    if not isinstance(t, (int, float)) or isinstance(t, bool) or t < 0:
        raise TraceSchemaError(f"event time must be a non-negative number: {event!r}")
    seq = event["seq"]
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
        raise TraceSchemaError(f"event seq must be a positive integer: {event!r}")
    etype = event["type"]
    required = EVENT_TYPES.get(etype)
    if required is None:
        raise TraceSchemaError(f"unknown event type {etype!r}: {event!r}")
    missing = required.difference(event)
    if missing:
        raise TraceSchemaError(
            f"event type {etype!r} missing required fields "
            f"{sorted(missing)}: {event!r}"
        )


def validate_trace_lines(lines: Iterable[str]) -> int:
    """Validate a JSONL trace; returns the number of events checked.

    Also enforces the stream property the per-event check cannot see:
    ``seq`` strictly increases line over line (no drops, no reordering
    in whatever produced the file).
    """
    count = 0
    last_seq = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceSchemaError(f"unparseable trace line {line!r}: {exc}") from exc
        validate_event(event)
        if event["seq"] <= last_seq:
            raise TraceSchemaError(
                f"trace seq not strictly increasing: {event['seq']} "
                f"after {last_seq}"
            )
        last_seq = event["seq"]
        count += 1
    return count
