"""Unified observability: event tracing, span timing, metrics, manifests.

Four pieces, one discipline (virtual time in digests, wall clock never):

* :mod:`~repro.obs.trace` — the structured event bus. Near-zero cost
  when disabled; canonical JSONL + incremental stream digest when on.
* :mod:`~repro.obs.spans` — wall-clock span timing for profiling, kept
  strictly out of every digest.
* :mod:`~repro.obs.metrics_export` — one namespaced registry over all
  ad-hoc metrics, dumpable as JSON (``repro metrics``).
* :mod:`~repro.obs.manifest` — the run identity card: seed, config
  digest, format versions, event/metric digests.

``repro trace`` runs the canonical scenario in :mod:`~repro.obs.canonical`
and writes the JSONL trace plus its manifest; two same-seed runs produce
byte-identical files (CI compares them with ``cmp``).
"""

from .manifest import (
    MANIFEST_FORMAT_VERSION,
    RunManifest,
    accounting_digest,
    build_manifest,
    config_digest,
)
from .metrics_export import (
    METRICS_FORMAT_VERSION,
    MetricsExporter,
    export_deployment,
    export_network,
)
from .schema import (
    EVENT_TYPES,
    LEDGER_EVENT_TYPES,
    TraceSchemaError,
    validate_event,
    validate_trace_lines,
)
from .spans import NULL_SPANS, SpanRegistry
from .trace import (
    NULL_TRACER,
    TRACE_FORMAT_VERSION,
    AdditiveMultisetDigest,
    DigestSink,
    JsonlSink,
    ListSink,
    RingSink,
    TraceRecorder,
    canonical_line,
    multiset_digest,
    recover_jsonl_tail,
)

__all__ = [
    "TRACE_FORMAT_VERSION",
    "METRICS_FORMAT_VERSION",
    "MANIFEST_FORMAT_VERSION",
    "TraceRecorder",
    "RingSink",
    "ListSink",
    "JsonlSink",
    "recover_jsonl_tail",
    "DigestSink",
    "NULL_TRACER",
    "canonical_line",
    "multiset_digest",
    "AdditiveMultisetDigest",
    "SpanRegistry",
    "NULL_SPANS",
    "MetricsExporter",
    "export_network",
    "export_deployment",
    "RunManifest",
    "build_manifest",
    "config_digest",
    "accounting_digest",
    "EVENT_TYPES",
    "LEDGER_EVENT_TYPES",
    "TraceSchemaError",
    "validate_event",
    "validate_trace_lines",
]
