"""The structured event bus: virtual-time-stamped trace recording.

A :class:`TraceRecorder` is the single funnel every subsystem emits
through. Each event becomes one canonical JSON line — keys sorted,
compact separators — so the byte stream for a given run is a pure
function of the seed. The recorder maintains an incremental SHA-256
digest over those lines regardless of which sink (if any) retains them,
which is what makes the trace usable as a test oracle: two runs agree
iff their digests agree, without holding either trace in memory.

Cost model (DESIGN.md §Observability): every emit site in the hot path
is guarded with ``if tracer.enabled:`` so the disabled path is one
attribute load and a branch — no argument packing, no allocation. The
macro benchmark (``benchmarks/bench_obs.py``) pins the disabled-path
overhead under the 3% budget.

Timestamps are **virtual time only**. Wall-clock profiling lives in
:mod:`repro.obs.spans` and is deliberately kept out of every digest so
traces stay byte-reproducible across machines.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from collections import deque
from typing import Callable, Iterable

from ..errors import SimulationError

__all__ = [
    "TRACE_FORMAT_VERSION",
    "TraceRecorder",
    "RingSink",
    "ListSink",
    "JsonlSink",
    "recover_jsonl_tail",
    "NULL_TRACER",
    "DigestSink",
    "canonical_line",
    "multiset_digest",
    "AdditiveMultisetDigest",
]

#: Bumped whenever the line encoding or the digest definition changes, so
#: manifests from incompatible versions never compare equal by accident.
TRACE_FORMAT_VERSION = 1


def canonical_line(event: dict) -> str:
    """The one true encoding of an event: sorted keys, compact separators.

    Every digest in this package is defined over these bytes; any other
    serialization of the same event is a display convenience only.
    """
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


class RingSink:
    """Bounded in-memory retention: keeps the newest ``bound`` lines.

    The ring never exceeds its bound (property-tested); older lines fall
    off the front. The recorder's digest still covers *every* emitted
    event — the ring bounds memory, not the oracle.
    """

    __slots__ = ("_lines",)

    def __init__(self, bound: int = 4096) -> None:
        if bound <= 0:
            raise ValueError(f"ring bound must be positive, got {bound}")
        self._lines: deque[str] = deque(maxlen=bound)

    @property
    def bound(self) -> int:
        """The retention limit this ring was created with."""
        return self._lines.maxlen  # type: ignore[return-value]

    def accept(self, line: str) -> None:
        """Retain one canonical line (evicting the oldest at the bound)."""
        self._lines.append(line)

    def lines(self) -> list[str]:
        """The retained lines, oldest first."""
        return list(self._lines)

    def events(self) -> list[dict]:
        """The retained lines parsed back into event dicts."""
        return [json.loads(line) for line in self._lines]

    def __len__(self) -> int:
        return len(self._lines)


class ListSink:
    """Unbounded in-memory retention, for tests and the CLI.

    Use :class:`RingSink` anywhere memory must stay bounded; this sink
    exists for short runs whose full trace is wanted afterwards.
    """

    __slots__ = ("_lines",)

    def __init__(self) -> None:
        self._lines: list[str] = []

    def accept(self, line: str) -> None:
        self._lines.append(line)

    def lines(self) -> list[str]:
        return list(self._lines)

    def events(self) -> list[dict]:
        return [json.loads(line) for line in self._lines]

    def __len__(self) -> int:
        return len(self._lines)


class DigestSink:
    """Feeds every event into one or more digest accumulators, O(1) memory.

    The sink for runs whose trace is only wanted as a digest — the
    cluster workers and the cross-executor determinism checks. Each
    accepted line is parsed once and offered to every accumulator
    (typically :class:`AdditiveMultisetDigest` instances with different
    type filters).
    """

    __slots__ = ("_accumulators",)

    def __init__(self, *accumulators) -> None:
        self._accumulators = accumulators

    def accept(self, line: str) -> None:
        event = json.loads(line)
        for accumulator in self._accumulators:
            accumulator.add(event)


class JsonlSink:
    """Streams canonical lines to a file (JSONL), one event per line.

    Accepts a path or any object with ``write``. Paths are opened for
    writing immediately and closed by :meth:`close`; caller-supplied
    file objects are flushed but never closed.

    Crash safety for path-backed sinks: ``resume=True`` appends instead
    of truncating (a restarted service continues its trace), every line
    is written in one ``write`` call (a kill can only truncate the tail,
    not interleave), :meth:`sync` / :meth:`close` flush and ``fsync`` so
    acknowledged events survive power loss, and
    :func:`recover_jsonl_tail` trims a torn final line so the file stays
    parseable.
    """

    __slots__ = ("_file", "_owns")

    def __init__(self, target, *, resume: bool = False) -> None:
        if hasattr(target, "write"):
            self._file = target
            self._owns = False
        else:
            self._file = open(target, "a" if resume else "w", encoding="utf-8")
            self._owns = True

    def accept(self, line: str) -> None:
        self._file.write(line + "\n")

    def sync(self) -> None:
        """Flush and fsync without closing — a durability barrier.

        The soak driver calls this at every store commit so the trace on
        disk is never behind the ledger it explains. No-op fsync for
        caller-supplied objects without a real file descriptor.
        """
        self._file.flush()
        try:
            os.fsync(self._file.fileno())
        except (AttributeError, OSError, ValueError, io.UnsupportedOperation):
            pass

    def close(self) -> None:
        """Flush (and fsync), and close the file if this sink opened it."""
        self.sync()
        if self._owns:
            self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def recover_jsonl_tail(path) -> int:
    """Trim a torn trailing line from a killed run's JSONL trace.

    A fail-stop kill can leave the final line half-written (no trailing
    newline, or a newline-terminated line that is not valid JSON — the
    page holding the tail was only partially flushed). Everything before
    it is intact because each event was a single ``write``. This scans
    the complete, newline-terminated prefix, validates the last line,
    and truncates anything torn; returns the number of bytes dropped
    (0 when the file was already clean).

    Raises:
        SimulationError: if the file cannot be read.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise SimulationError(f"cannot recover trace {path!r}: {exc}") from exc
    keep = len(data)
    # Drop a tail with no terminating newline outright.
    if keep and not data.endswith(b"\n"):
        keep = data.rfind(b"\n") + 1
    # The last newline-terminated line can still be torn mid-page:
    # validate it and drop it if unparseable.
    while keep:
        start = data.rfind(b"\n", 0, keep - 1) + 1
        try:
            json.loads(data[start : keep - 1])
            break
        except json.JSONDecodeError:
            keep = start
    dropped = len(data) - keep
    if dropped:
        with open(path, "r+b") as handle:
            handle.truncate(keep)
    return dropped


class TraceRecorder:
    """The event bus: timestamps, sequences, digests and fans out events.

    Args:
        sink: Optional retention (:class:`RingSink`, :class:`ListSink`,
            :class:`JsonlSink`, or anything with ``accept(line)``). The
            stream digest is maintained whether or not a sink is set.
        clock: Zero-argument virtual-time source. Subsystems that own a
            clock (the engine, the direct-mode network driver) install
            one on attachment if none is set; events emitted with no
            clock carry ``t=0.0``.
        enabled: When ``False`` every :meth:`emit` is a no-op. Emit
            sites additionally guard on :attr:`enabled` themselves so
            the disabled hot path never packs arguments.
    """

    __slots__ = ("enabled", "clock", "sink", "events_emitted", "_seq", "_hash")

    def __init__(
        self,
        *,
        sink=None,
        clock: Callable[[], float] | None = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        self.sink = sink
        self.events_emitted = 0
        self._seq = 0
        self._hash = hashlib.sha256()

    def emit(self, etype: str, **fields) -> None:
        """Record one event of type ``etype`` at the current virtual time."""
        if not self.enabled:
            return
        clock = self.clock
        self._emit_at(clock() if clock is not None else 0.0, etype, fields)

    def emit_at(self, t: float, etype: str, **fields) -> None:
        """Record one event with an explicit timestamp.

        For layers with no virtual clock of their own (the asyncio SMTP
        server) — the caller supplies whatever deterministic time it has.
        """
        if not self.enabled:
            return
        self._emit_at(t, etype, fields)

    def _emit_at(self, t: float, etype: str, fields: dict) -> None:
        self._seq += 1
        event = {"t": t, "seq": self._seq, "type": etype}
        if fields:
            event.update(fields)
        line = canonical_line(event)
        self._hash.update(line.encode("utf-8"))
        self._hash.update(b"\n")
        self.events_emitted += 1
        sink = self.sink
        if sink is not None:
            sink.accept(line)

    def digest(self) -> str:
        """SHA-256 over every canonical line emitted so far (hex)."""
        return self._hash.hexdigest()


#: Shared disabled recorder: components default to this so ``tracer`` is
#: never ``None`` and the guard is always a plain attribute check. Never
#: mutate it (it is shared); pass a real recorder to enable tracing.
NULL_TRACER = TraceRecorder(enabled=False)


def multiset_digest(
    events: Iterable[dict | str],
    *,
    include_types: Iterable[str] | None = None,
    exclude_fields: tuple[str, ...] = ("t", "seq"),
) -> str:
    """Order-insensitive digest of a set of events.

    Each event (a dict, or a canonical line to parse) is reduced to its
    canonical bytes minus ``exclude_fields`` — by default the timestamp
    and sequence number, so two runs that produced the *same set of
    things at different times or interleavings* still compare equal.
    Per-event hashes are sorted before the final digest, making the
    result independent of event order (this is the documented
    order-insensitive digest the property tests pin down).

    ``include_types`` restricts the digest to a subset of event types —
    the chaos differential test uses it to compare only ledger events.
    """
    wanted = frozenset(include_types) if include_types is not None else None
    per_event: list[str] = []
    for item in events:
        event = json.loads(item) if isinstance(item, str) else dict(item)
        if wanted is not None and event.get("type") not in wanted:
            continue
        for name in exclude_fields:
            event.pop(name, None)
        digest = hashlib.sha256(canonical_line(event).encode("utf-8"))
        per_event.append(digest.hexdigest())
    per_event.sort()
    rollup = hashlib.sha256()
    for digest_hex in per_event:
        rollup.update(digest_hex.encode("ascii"))
    return rollup.hexdigest()


class AdditiveMultisetDigest:
    """Order-insensitive multiset hash that merges and survives restarts.

    Same per-event reduction as :func:`multiset_digest` (canonical bytes
    minus ``exclude_fields``, optional ``include_types`` allow-list and
    ``exclude_types`` deny-list), but the
    accumulator is the *sum* of per-event SHA-256 values mod 2**256 plus
    a count — O(1) state instead of O(events), so a shard worker can
    journal it mid-run (:meth:`state_dict` / :meth:`load_state`), a
    restarted worker can resume it exactly, and the parent can
    :meth:`merge` per-shard accumulators into one cluster-wide digest
    whose value is independent of sharding and interleaving. Addition
    mod 2**256 is commutative and associative, which is the whole trick.

    Not interchangeable with :func:`multiset_digest` output — the final
    hex is defined over ``count:sum`` — but has the same identity
    property: two accumulators agree iff (with overwhelming probability)
    they absorbed the same multiset of reduced events.
    """

    _MOD = 1 << 256

    __slots__ = ("_sum", "count", "_wanted", "_unwanted", "_exclude")

    def __init__(
        self,
        *,
        include_types: Iterable[str] | None = None,
        exclude_types: Iterable[str] | None = None,
        exclude_fields: tuple[str, ...] = ("t", "seq"),
    ) -> None:
        self._sum = 0
        self.count = 0
        self._wanted = frozenset(include_types) if include_types is not None else None
        self._unwanted = (
            frozenset(exclude_types) if exclude_types is not None else frozenset()
        )
        self._exclude = tuple(exclude_fields)

    def add(self, event: dict | str) -> None:
        """Absorb one event (a dict or canonical line)."""
        event = json.loads(event) if isinstance(event, str) else dict(event)
        etype = event.get("type")
        if self._wanted is not None and etype not in self._wanted:
            return
        if etype in self._unwanted:
            return
        for name in self._exclude:
            event.pop(name, None)
        value = int.from_bytes(
            hashlib.sha256(canonical_line(event).encode("utf-8")).digest(),
            "big",
        )
        self._sum = (self._sum + value) % self._MOD
        self.count += 1

    def merge(self, other: "AdditiveMultisetDigest") -> None:
        """Absorb everything ``other`` absorbed (disjoint-union merge)."""
        self._sum = (self._sum + other._sum) % self._MOD
        self.count += other.count

    def state_dict(self) -> dict:
        """JSON-compatible accumulator state (journal/restart support)."""
        return {"sum": format(self._sum, "x"), "count": self.count}

    def load_state(self, state: dict) -> None:
        """Restore accumulator state written by :meth:`state_dict`."""
        self._sum = int(state["sum"], 16) % self._MOD
        self.count = int(state["count"])

    def digest(self) -> str:
        """SHA-256 over ``count:sum`` (hex)."""
        payload = f"{self.count}:{self._sum:064x}".encode("ascii")
        return hashlib.sha256(payload).hexdigest()
