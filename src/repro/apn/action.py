"""Guarded actions for the Abstract Protocol notation engine.

An action is ``<guard> -> <statement>``. The paper (Section 3) allows three
guard forms:

1. a boolean expression over the process's constants and variables,
2. a receive guard ``rcv <message> from q``,
3. a timeout guard — a boolean expression over *every* process's state and
   the contents of *all* channels (used for the snapshot timeout in §4.4).

Statements are modelled as plain Python callables that mutate the owning
process's variables and send messages through the engine; the engine
guarantees the AP execution rules (enabled-only, one at a time, weak
fairness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from .channel import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .process import Process
    from .scheduler import ProtocolState

__all__ = ["BooleanGuard", "ReceiveGuard", "TimeoutGuard", "Action"]


@dataclass(frozen=True)
class BooleanGuard:
    """Guard form 1: a predicate over the owning process's local state."""

    predicate: Callable[["Process"], bool]
    description: str = "local"

    def __str__(self) -> str:
        return self.description


@dataclass(frozen=True)
class ReceiveGuard:
    """Guard form 2: ``rcv <name> from <sender>``.

    Enabled when the head of the channel ``sender -> self`` is a message
    with the given name. The statement receives the matched message.
    """

    message_name: str
    sender: str
    description: str = ""

    def __str__(self) -> str:
        return self.description or f"rcv {self.message_name} from {self.sender}"


@dataclass(frozen=True)
class TimeoutGuard:
    """Guard form 3: a predicate over the entire protocol state.

    The predicate sees a :class:`ProtocolState` view — every process and
    every channel — matching the paper's definition of a timeout guard.
    """

    predicate: Callable[["ProtocolState"], bool]
    description: str = "timeout"

    def __str__(self) -> str:
        return self.description


Guard = BooleanGuard | ReceiveGuard | TimeoutGuard


@dataclass
class Action:
    """One guarded action of a process.

    Attributes:
        name: Identifier used in traces ("send-email", "rcv-buyreply", ...).
        guard: One of the three guard forms.
        statement: For boolean/timeout guards, called as ``statement(proc)``;
            for receive guards, called as ``statement(proc, message)`` where
            ``message`` is the received :class:`Message`.
        weight: Relative probability weight used by the random scheduler to
            bias action selection (defaults to 1; e.g. the daily ``sent``
            reset gets a small weight so it fires rarely, mimicking "at the
            end of every day").
    """

    name: str
    guard: Guard
    statement: Callable[..., None]
    weight: float = 1.0
    fired: int = field(default=0, compare=False)

    def __str__(self) -> str:
        return f"{self.name}: {self.guard} ->"


def receive_action(
    name: str,
    message_name: str,
    sender: str,
    statement: Callable[["Process", Message], None],
    *,
    weight: float = 1.0,
) -> Action:
    """Convenience constructor for a receive-guarded action."""
    return Action(
        name=name,
        guard=ReceiveGuard(message_name, sender),
        statement=statement,
        weight=weight,
    )
