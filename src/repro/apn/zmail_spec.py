"""The paper's Section 4 Zmail specification, executable.

This module transliterates the Abstract Protocol pseudocode of the paper —
the ``isp[i]`` process (§4.1–§4.4) and the ``bank`` process — onto the
:mod:`repro.apn` engine, so the formal spec can be *run* under a
randomized weakly-fair scheduler and its invariants checked after every
step (a lightweight randomized model checker).

Modelling notes (each is a deliberate, documented decision):

* ``x := any`` in the paper simulates user input; here each process draws
  from its own seeded RNG stream (an AP *input* — read-only reference).
* The paper's buy/sell actions have guard ``canbuy``/``cansell`` with an
  internal ``if`` whose else-branch is ``skip``. We fold the condition into
  the guard: equivalent modulo stuttering steps, and it keeps the random
  scheduler from burning steps on no-ops.
* The §4.4 "10 minutes" quiescence timeout is modelled as a true AP
  *timeout guard* (a predicate over all processes and channels, exactly as
  §3 allows): an ISP's reply fires only when every compliant ISP has
  stopped sending (request received or already replied this round) and no
  compliant-to-compliant email remains in flight. This is precisely the
  real-time assumption the paper's fixed timeout encodes.
* The paper never shows the bank incrementing its ``seq`` after a
  reconciliation round, although ISPs increment theirs after replying; we
  increment the bank's ``seq`` when verification completes (spec gap).
* The paper's §4.2 user exchange decrements ``account[t]`` without any
  receiving side for those real pennies; we add an ISP ``cash`` variable
  so total value is auditable (spec gap).
* The paper's bank destructures buy/sell payloads as ``nr, y := DCR(...)``
  although the ISP sends ``(value|nonce)``; we unpack value-first so the
  nonce echo actually matches (spec gap).
* Encrypted payloads additionally carry plaintext ``meta`` used only by
  invariant checkers (never by process actions); see
  :class:`repro.apn.channel.Message`.

The module also provides :func:`conservation_invariant` (global value
conservation across user accounts, balances, ISP pools, bank accounts and
in-flight messages) and misbehaviour injection used by experiment E13/E5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..crypto import (
    KeyPair,
    NonceSource,
    dcr_object,
    generate_keypair,
    ncr_object,
)
from .channel import Message
from .process import Process
from .scheduler import ProtocolState, Scheduler

__all__ = [
    "ZmailSpecConfig",
    "CheatMode",
    "build_zmail_protocol",
    "conservation_invariant",
    "credit_antisymmetry_invariant",
    "nonnegative_invariant",
    "total_value",
    "ZmailProtocol",
]

BANK = "bank"


def _isp_name(i: int) -> str:
    return f"isp[{i}]"


@dataclass(frozen=True)
class ZmailSpecConfig:
    """Parameters of one protocol instance (the paper's constants/inputs).

    Attributes:
        n: Number of ISPs.
        m: Users per ISP (the paper assumes a uniform ``m``).
        compliant: Which ISPs run Zmail; defaults to all compliant.
        limit: Per-user daily send limit (uniform here; the paper's
            ``limit`` array is per-user — :mod:`repro.core` implements the
            full per-user form).
        initial_balance: Starting e-pennies per user.
        initial_account: Starting real pennies per user.
        initial_avail: Starting e-pennies in each ISP's pool.
        minavail / maxavail: The pool thresholds of §4.3.
        bank_account: Starting real pennies of each ISP's bank account.
        seed: Root seed for all randomness in the instance.
        key_bits: RSA modulus size for ``B_b``/``R_b``.
        cheaters: Map of ISP index to :class:`CheatMode` for misbehaviour
            injection (E5/E13).
    """

    n: int = 3
    m: int = 4
    compliant: tuple[bool, ...] = ()
    limit: int = 50
    initial_balance: int = 20
    initial_account: int = 100
    initial_avail: int = 200
    minavail: int = 50
    maxavail: int = 400
    bank_account: int = 1000
    seed: int = 0
    key_bits: int = 256
    cheaters: dict[int, "CheatMode"] = field(default_factory=dict)

    def compliance(self) -> tuple[bool, ...]:
        """The effective compliant array (defaults to all-true)."""
        if self.compliant:
            if len(self.compliant) != self.n:
                raise ValueError("compliant array length must equal n")
            return self.compliant
        return tuple(True for _ in range(self.n))


class CheatMode:
    """Ways an ISP can misreport its credit array (for detection tests)."""

    INFLATE_SENT = "inflate_sent"  # claims it sent more than it did
    SKIP_RECEIVE_DEBIT = "skip_receive_debit"  # doesn't decrement on receive


@dataclass
class ZmailProtocol:
    """A built protocol instance: scheduler plus convenient handles."""

    config: ZmailSpecConfig
    scheduler: Scheduler
    bank_keys: KeyPair
    isps: list[Process]
    bank: Process

    @property
    def state(self) -> ProtocolState:
        """The underlying protocol state (processes + channels)."""
        return self.scheduler.state

    def run(self, max_steps: int = 10_000) -> int:
        """Run the randomized scheduler; returns steps executed."""
        return self.scheduler.run(max_steps)

    def flagged_pairs(self) -> list[tuple[int, int]]:
        """ISP pairs the bank's verification flagged as inconsistent."""
        return list(self.bank["flagged"])

    def completed_rounds(self) -> int:
        """Reconciliation rounds the bank has completed."""
        return self.bank["rounds_done"]


# ---------------------------------------------------------------------------
# Invariants
# ---------------------------------------------------------------------------


def total_value(state: ProtocolState, config: ZmailSpecConfig) -> int:
    """Total value (real + e-pennies) across the whole system.

    Counts user real accounts, user e-penny balances, ISP pools, bank
    accounts, plus value in flight: one e-penny per compliant-to-compliant
    ``email``, the ``buyvalue`` carried by an accepted ``buyreply``, minus
    the ``sellvalue`` double-counted while a ``sellreply`` is in flight
    (the bank credits the account at ``sell`` receipt; the ISP debits its
    pool only at ``sellreply`` receipt).
    """
    compliant = config.compliance()
    total = 0
    for i in range(config.n):
        if not compliant[i]:
            continue
        isp = state.process(_isp_name(i))
        total += (
            sum(isp["account"]) + sum(isp["balance"]) + isp["avail"]
            + isp["cash"]
        )
    bank = state.process(BANK)
    total += sum(
        bank["account"][i] for i in range(config.n) if compliant[i]
    )
    for (src, dst), chan in state.channels().items():
        for msg in chan.contents():
            if msg.name == "email":
                if (
                    src.startswith("isp")
                    and dst.startswith("isp")
                    and msg.meta
                    and msg.meta.get("paid")
                ):
                    total += 1
            elif msg.name == "buyreply":
                if msg.meta and msg.meta.get("accepted"):
                    total += msg.meta["value"]
            elif msg.name == "sellreply":
                total -= msg.meta["value"]
    return total


def conservation_invariant(config: ZmailSpecConfig):
    """Build a scheduler invariant: total system value never changes."""
    expected: list[int | None] = [None]

    def check(state: ProtocolState) -> bool:
        current = total_value(state, config)
        if expected[0] is None:
            expected[0] = current
            return True
        return current == expected[0]

    return check


def nonnegative_invariant(config: ZmailSpecConfig):
    """Build an invariant: no balance, account, or pool ever goes negative."""
    compliant = config.compliance()

    def check(state: ProtocolState) -> bool:
        for i in range(config.n):
            if not compliant[i]:
                continue
            isp = state.process(_isp_name(i))
            if isp["avail"] < 0:
                return False
            if any(b < 0 for b in isp["balance"]):
                return False
            if any(a < 0 for a in isp["account"]):
                return False
        bank = state.process(BANK)
        return all(
            bank["account"][i] >= 0 for i in range(config.n) if compliant[i]
        )

    return check


def credit_antisymmetry_invariant(config: ZmailSpecConfig):
    """Build an invariant checked on *quiescent* credit state.

    When no compliant-to-compliant email is in flight and no snapshot is in
    progress, ``credit_i[j] + credit_j[i]`` must be zero for every honest
    compliant pair. Cheating ISPs are exempted — their inconsistency is the
    signal the bank detects.
    """
    compliant = config.compliance()

    def check(state: ProtocolState) -> bool:
        for chan in state.channels().values():
            for msg in chan.contents():
                if msg.name in ("email", "request", "reply"):
                    return True  # not quiescent; nothing to check
        snapshotting = any(
            compliant[i] and state.process(_isp_name(i))["snapshot_pending"]
            for i in range(config.n)
        )
        if snapshotting:
            return True
        for i in range(config.n):
            for j in range(i + 1, config.n):
                if not (compliant[i] and compliant[j]):
                    continue
                if i in config.cheaters or j in config.cheaters:
                    continue
                ci = state.process(_isp_name(i))["credit"][j]
                cj = state.process(_isp_name(j))["credit"][i]
                if ci + cj != 0:
                    return False
        return True

    return check


# ---------------------------------------------------------------------------
# Process construction
# ---------------------------------------------------------------------------


def _build_isp(
    i: int,
    config: ZmailSpecConfig,
    keys: KeyPair,
    rng: random.Random,
    nonces: NonceSource,
) -> Process:
    """Build the ``isp[i]`` process of §4 with all of its actions."""
    n, m = config.n, config.m
    compliant = config.compliance()
    cheat = config.cheaters.get(i)
    proc = Process(
        _isp_name(i),
        constants={"i": i, "n": n, "m": m, "compliant": compliant},
        inputs={
            "B_b": keys.public,
            "limit": [config.limit] * m,
            "minavail": config.minavail,
            "maxavail": config.maxavail,
            "_rng": rng,
            "_nnc": nonces,
        },
        variables={
            "avail": config.initial_avail,
            # `cash` is not in the paper's spec: it is the ISP's own real
            # pennies received from (paid to) users exchanging e-pennies in
            # §4.2. The paper drops this side of the exchange; without it
            # total value is not conserved, so the audit tracks it.
            "cash": 0,
            "account": [config.initial_account] * m,
            "balance": [config.initial_balance] * m,
            "sent": [0] * m,
            "credit": [0] * n,
            "cansend": True,
            "canbuy": True,
            "cansell": True,
            "buyvalue": 0,
            "sellvalue": 0,
            "seq": 0,
            "ns1": 0,
            "ns2": 0,
            "snapshot_pending": False,
            "delivered": 0,  # model metric: emails delivered to local users
        },
    )

    # -- §4.1 zero-sum email transfer ---------------------------------------

    def send_email(p: Process) -> None:
        r_ = p["_rng"]
        s = r_.randrange(m)
        j = r_.randrange(n)
        r = r_.randrange(m)
        if i == j:
            if p["balance"][s] >= 1 and p["sent"][s] < p["limit"][s]:
                p["balance"][s] -= 1
                p["balance"][r] += 1
                p["sent"][s] += 1
                p["delivered"] += 1
            return
        if compliant[j]:
            if p["balance"][s] >= 1 and p["sent"][s] < p["limit"][s]:
                p["balance"][s] -= 1
                base = p["credit"][j] + 1
                # A cheating ISP overstates what it sent.
                if cheat == CheatMode.INFLATE_SENT:
                    base += 1
                p["credit"][j] = base
                p["sent"][s] += 1
                _send(p, _isp_name(j), Message("email", (s, r), meta={"paid": True}))
        else:
            _send(p, _isp_name(j), Message("email", (s, r), meta={"paid": False}))

    proc.add_local_action(
        "send-email", lambda p: p["cansend"], send_email, description="cansend"
    )

    def make_receive(g: int):
        def rcv_email(p: Process, msg: Message) -> None:
            _, r = msg.fields
            if compliant[g]:
                p["balance"][r] += 1
                if cheat != CheatMode.SKIP_RECEIVE_DEBIT:
                    p["credit"][g] -= 1
                p["delivered"] += 1
            else:
                # deliver or discard: model as delivery without payment
                p["delivered"] += 1

        return rcv_email

    for g in range(n):
        if g == i:
            continue
        proc.add_receive_action(
            f"rcv-email[{g}]", "email", _isp_name(g), make_receive(g)
        )

    def reset_sent(p: Process) -> None:
        for u in range(m):
            p["sent"][u] = 0

    # "execute at the end of every day" — modelled as a rare action.
    proc.add_local_action(
        "reset-sent", lambda p: True, reset_sent, weight=0.02,
        description="end of day",
    )

    # -- §4.2 transactions with users -----------------------------------------

    def user_buy(p: Process) -> None:
        r_ = p["_rng"]
        t = r_.randrange(m)
        x = r_.randrange(1, 10)
        if p["account"][t] >= x and p["avail"] >= x:
            p["account"][t] -= x
            p["cash"] += x
            p["balance"][t] += x
            p["avail"] -= x

    proc.add_local_action(
        "user-buy", lambda p: True, user_buy, weight=0.3,
        description="user buys e-pennies",
    )

    def user_sell(p: Process) -> None:
        r_ = p["_rng"]
        t = r_.randrange(m)
        x = r_.randrange(1, 10)
        if p["balance"][t] >= x:
            p["account"][t] += x
            p["cash"] -= x
            p["balance"][t] -= x
            p["avail"] += x

    proc.add_local_action(
        "user-sell", lambda p: True, user_sell, weight=0.3,
        description="user sells e-pennies",
    )

    # -- §4.3 transactions with the bank -------------------------------------

    def buy(p: Process) -> None:
        p["canbuy"] = False
        p["buyvalue"] = p["_rng"].randrange(
            1, max(2, config.maxavail - config.minavail)
        )
        p["ns1"] = p["_nnc"].next()
        payload = ncr_object(p["B_b"], [p["buyvalue"], p["ns1"]])
        _send(p, BANK, Message("buy", (payload,), meta={"isp": i}))

    proc.add_local_action(
        "buy",
        lambda p: p["canbuy"] and p["avail"] < p["minavail"],
        buy,
        description="canbuy & avail<minavail",
    )

    def rcv_buyreply(p: Process, msg: Message) -> None:
        nr1, accepted = dcr_object(keys.public, msg.fields[0])
        if p["ns1"] == nr1:
            p["canbuy"] = True
            if accepted:
                p["avail"] += p["buyvalue"]

    proc.add_receive_action("rcv-buyreply", "buyreply", BANK, rcv_buyreply)

    def sell(p: Process) -> None:
        p["cansell"] = False
        surplus = p["avail"] - p["maxavail"]
        p["sellvalue"] = p["_rng"].randrange(1, max(2, surplus + 1))
        p["ns2"] = p["_nnc"].next()
        payload = ncr_object(p["B_b"], [p["sellvalue"], p["ns2"]])
        _send(
            p,
            BANK,
            Message("sell", (payload,), meta={"isp": i, "value": p["sellvalue"]}),
        )

    proc.add_local_action(
        "sell",
        lambda p: p["cansell"] and p["avail"] > p["maxavail"],
        sell,
        description="cansell & avail>maxavail",
    )

    def rcv_sellreply(p: Process, msg: Message) -> None:
        nr2 = dcr_object(keys.public, msg.fields[0])
        if p["ns2"] == nr2:
            p["avail"] -= p["sellvalue"]
            p["cansell"] = True

    proc.add_receive_action("rcv-sellreply", "sellreply", BANK, rcv_sellreply)

    # -- §4.4 snapshot participation ------------------------------------------

    def rcv_request(p: Process, msg: Message) -> None:
        seq_prime = dcr_object(keys.public, msg.fields[0])
        if p["seq"] == seq_prime:
            p["cansend"] = False
            p["snapshot_pending"] = True

    proc.add_receive_action("rcv-request", "request", BANK, rcv_request)

    def quiescent(state: ProtocolState, p: Process) -> bool:
        """The §4.4 timeout guard: the global condition that the 10-minute
        real-time wait is meant to guarantee (see module docstring)."""
        if not p["snapshot_pending"]:
            return False
        for k in range(n):
            if not compliant[k] or k == i:
                continue
            other = state.process(_isp_name(k))
            if not (other["snapshot_pending"] or other["seq"] == p["seq"] + 1):
                return False
        for (src, dst), chan in state.channels().items():
            if not (src.startswith("isp") and dst.startswith("isp")):
                continue
            si = int(src[4:-1])
            di = int(dst[4:-1])
            if not (compliant[si] and compliant[di]):
                continue
            if any(msg.name == "email" for msg in chan.contents()):
                return False
        return True

    def timeout_expired(p: Process) -> None:
        payload = ncr_object(p["B_b"], list(p["credit"]))
        _send(p, BANK, Message("reply", (payload,), meta={"isp": i}))
        p["credit"] = [0] * n
        p["snapshot_pending"] = False
        p["seq"] += 1
        # NOTE: the paper sets cansend := true here. With real 10-minute
        # waits every ISP resumes only after every other ISP has also
        # replied (all windows end together, skew << 10 min). Under a purely
        # asynchronous scheduler that timing assumption must be made
        # explicit, or an early resumer can slip a new-period email to a
        # still-snapshotting peer and cause a false alarm. The "resume"
        # timeout action below encodes it: resume once all compliant ISPs
        # have finished replying (equal seq).

    proc.add_timeout_action(
        "timeout-expired", quiescent, timeout_expired,
        description="snapshot quiescence",
    )

    def all_replied(state: ProtocolState, p: Process) -> bool:
        if p["cansend"] or p["snapshot_pending"]:
            return False
        for k in range(n):
            if not compliant[k] or k == i:
                continue
            if state.process(_isp_name(k))["seq"] != p["seq"]:
                return False
        return True

    def resume(p: Process) -> None:
        p["cansend"] = True

    proc.add_timeout_action(
        "resume-sending", all_replied, resume, description="all peers replied"
    )

    return proc


def _build_noncompliant_isp(
    i: int, config: ZmailSpecConfig, rng: random.Random
) -> Process:
    """A non-compliant ISP: sends unpaid email, discards incoming state.

    The paper's spec is written from the compliant side; non-compliant
    peers exist to exercise the ``~compliant[g]`` branches.
    """
    n, m = config.n, config.m
    proc = Process(
        _isp_name(i),
        constants={"i": i},
        inputs={"_rng": rng},
        variables={"delivered": 0, "cansend": True},
    )

    def send_email(p: Process) -> None:
        r_ = p["_rng"]
        j = r_.randrange(n)
        if j == i:
            return
        s, r = r_.randrange(m), r_.randrange(m)
        _send(p, _isp_name(j), Message("email", (s, r), meta={"paid": False}))

    proc.add_local_action("send-email", lambda p: True, send_email, weight=0.5)

    def rcv_email(p: Process, msg: Message) -> None:
        p["delivered"] += 1

    for g in range(n):
        if g != i:
            proc.add_receive_action(f"rcv-email[{g}]", "email", _isp_name(g), rcv_email)
    return proc


def _build_bank(config: ZmailSpecConfig, keys: KeyPair) -> Process:
    """Build the ``bank`` process of §4.3–§4.4."""
    n = config.n
    compliant = config.compliance()
    proc = Process(
        BANK,
        constants={"n": n, "compliant": compliant},
        inputs={"B_b": keys.public, "R_b": keys.private},
        variables={
            "account": [
                config.bank_account if compliant[i] else 0 for i in range(n)
            ],
            "verify": [[0] * n for _ in range(n)],
            "seq": 0,
            "total": 0,
            "canrequest": True,
            "flagged": [],
            "rounds_done": 0,
        },
    )

    def make_rcv_buy(g: int):
        def rcv_buy(p: Process, msg: Message) -> None:
            # Spec gap: the paper sends (buyvalue|ns1) but destructures
            # "nr, y := DCR(R_b, x)", which would bind the nonce to the
            # value slot. The reply/check logic only works with the value
            # first, so we unpack (y, nr).
            y, nr = dcr_object(keys.private, msg.fields[0])
            if p["account"][g] >= y:
                p["account"][g] -= y
                reply = ncr_object(keys.private, [nr, True])
                _send(
                    p,
                    _isp_name(g),
                    Message("buyreply", (reply,), meta={"accepted": True, "value": y}),
                )
            else:
                reply = ncr_object(keys.private, [nr, False])
                _send(
                    p,
                    _isp_name(g),
                    Message("buyreply", (reply,), meta={"accepted": False, "value": 0}),
                )

        return rcv_buy

    def make_rcv_sell(g: int):
        def rcv_sell(p: Process, msg: Message) -> None:
            y, nr = dcr_object(keys.private, msg.fields[0])  # same spec gap
            p["account"][g] += y
            reply = ncr_object(keys.private, nr)
            _send(p, _isp_name(g), Message("sellreply", (reply,), meta={"value": y}))

        return rcv_sell

    for g in range(n):
        if not compliant[g]:
            continue
        proc.add_receive_action(f"rcv-buy[{g}]", "buy", _isp_name(g), make_rcv_buy(g))
        proc.add_receive_action(
            f"rcv-sell[{g}]", "sell", _isp_name(g), make_rcv_sell(g)
        )

    def start_request(p: Process) -> None:
        total = 0
        for i in range(n):
            if compliant[i]:
                total += 1
                payload = ncr_object(keys.private, p["seq"])
                _send(p, _isp_name(i), Message("request", (payload,)))
        p["total"] = total
        p["canrequest"] = False

    # Reconciliation is "once a week or once a month" — a rare action.
    proc.add_local_action(
        "start-request", lambda p: p["canrequest"], start_request, weight=0.01,
        description="canrequest",
    )

    def make_rcv_reply(g: int):
        def rcv_reply(p: Process, msg: Message) -> None:
            credit = dcr_object(keys.private, msg.fields[0])
            p["total"] -= 1
            for i in range(n):
                p["verify"][i][g] = credit[i]

        return rcv_reply

    for g in range(n):
        if compliant[g]:
            proc.add_receive_action(
                f"rcv-reply[{g}]", "reply", _isp_name(g), make_rcv_reply(g)
            )

    def do_verify(p: Process) -> None:
        for i in range(n):
            for j in range(n):
                if i < j and compliant[i] and compliant[j]:
                    if p["verify"][i][j] + p["verify"][j][i] != 0:
                        p["flagged"].append((i, j))
        p["verify"] = [[0] * n for _ in range(n)]
        p["canrequest"] = True
        p["seq"] += 1  # spec gap: see module docstring
        p["rounds_done"] += 1

    proc.add_local_action(
        "verify",
        lambda p: p["total"] == 0 and not p["canrequest"],
        do_verify,
        description="total=0 & ~canrequest",
    )

    return proc


def _send(proc: Process, dst: str, message: Message) -> None:
    """Send helper bound at build time via the scheduler's state."""
    proc._protocol_state.send(proc.name, dst, message)  # type: ignore[attr-defined]


def build_zmail_protocol(config: ZmailSpecConfig) -> ZmailProtocol:
    """Construct a runnable instance of the paper's §4 specification.

    Returns a :class:`ZmailProtocol` whose scheduler already carries the
    conservation and non-negativity invariants; callers may add more.
    """
    root = random.Random(config.seed)
    keys = generate_keypair(config.key_bits, seed=root.getrandbits(64))
    compliant = config.compliance()

    isps = []
    for i in range(config.n):
        rng = random.Random(root.getrandbits(64))
        if compliant[i]:
            nonces = NonceSource(root.getrandbits(64), owner=_isp_name(i))
            isps.append(_build_isp(i, config, keys, rng, nonces))
        else:
            isps.append(_build_noncompliant_isp(i, config, rng))
    bank = _build_bank(config, keys)

    scheduler = Scheduler(isps + [bank], seed=root.getrandbits(64))
    # Give every process a back-reference for _send.
    for proc in list(isps) + [bank]:
        proc._protocol_state = scheduler.state  # type: ignore[attr-defined]

    scheduler.add_invariant("conservation", conservation_invariant(config))
    scheduler.add_invariant("non-negative", nonnegative_invariant(config))
    scheduler.add_invariant(
        "credit-antisymmetry", credit_antisymmetry_invariant(config)
    )
    return ZmailProtocol(
        config=config, scheduler=scheduler, bank_keys=keys, isps=isps, bank=bank
    )
