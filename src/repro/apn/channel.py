"""FIFO channels for the Abstract Protocol notation engine.

Section 3 of the paper: "Each message sent from p to q remains in the
channel from p to q until it is eventually received by process q. Messages
that reside simultaneously in a channel form a sequence and are received,
one at a time, in the same order in which they were sent."
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..errors import ChannelClosed

__all__ = ["Message", "Channel"]


@dataclass(frozen=True)
class Message:
    """A named message with positional fields, e.g. ``email(s, r)``.

    ``meta`` is model instrumentation: plaintext bookkeeping attached for
    invariant checkers that need a god's-eye view of encrypted payloads
    (e.g. the value carried by an in-flight ``buyreply``). Process actions
    must never read it; it does not participate in equality.
    """

    name: str
    fields: tuple[Any, ...] = ()
    meta: Any = field(default=None, compare=False)

    def __str__(self) -> str:
        inner = ", ".join(repr(f) for f in self.fields)
        return f"{self.name}({inner})"


@dataclass
class Channel:
    """A unidirectional FIFO message channel from ``src`` to ``dst``."""

    src: str
    dst: str
    _queue: deque[Message] = field(default_factory=deque)
    closed: bool = False

    def send(self, message: Message) -> None:
        """Append ``message`` to the channel tail."""
        if self.closed:
            raise ChannelClosed(f"channel {self.src}->{self.dst} is closed")
        self._queue.append(message)

    def peek(self) -> Message | None:
        """The head message, or ``None`` if the channel is empty."""
        return self._queue[0] if self._queue else None

    def receive(self) -> Message:
        """Remove and return the head message."""
        if self.closed:
            raise ChannelClosed(f"channel {self.src}->{self.dst} is closed")
        if not self._queue:
            raise ChannelClosed(
                f"receive on empty channel {self.src}->{self.dst}"
            )
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def contents(self) -> tuple[Message, ...]:
        """A read-only snapshot of the queued messages, head first."""
        return tuple(self._queue)
