"""Abstract Protocol notation engine (Section 3 of the paper).

Gouda's AP notation defines protocols as processes with guarded actions
over FIFO channels, executed one action at a time under weak fairness.
This package provides those semantics as an executable engine plus the
paper's Section 4 Zmail specification built on it
(:mod:`repro.apn.zmail_spec`), turning the formal spec into a randomized
model checker for the protocol's invariants.
"""

from .action import Action, BooleanGuard, ReceiveGuard, TimeoutGuard
from .alternating_bit import (
    AlternatingBitResult,
    build_alternating_bit,
    run_alternating_bit,
)
from .channel import Channel, Message
from .process import Process
from .scheduler import InvariantViolation, ProtocolState, Scheduler, StepRecord
from .zmail_spec import (
    CheatMode,
    ZmailProtocol,
    ZmailSpecConfig,
    build_zmail_protocol,
    conservation_invariant,
    credit_antisymmetry_invariant,
    nonnegative_invariant,
    total_value,
)

__all__ = [
    "Action",
    "AlternatingBitResult",
    "build_alternating_bit",
    "run_alternating_bit",
    "BooleanGuard",
    "ReceiveGuard",
    "TimeoutGuard",
    "Channel",
    "Message",
    "Process",
    "Scheduler",
    "ProtocolState",
    "StepRecord",
    "InvariantViolation",
    "ZmailSpecConfig",
    "ZmailProtocol",
    "CheatMode",
    "build_zmail_protocol",
    "conservation_invariant",
    "credit_antisymmetry_invariant",
    "nonnegative_invariant",
    "total_value",
]
