"""Processes for the Abstract Protocol notation engine.

A process bundles constants, inputs, variables and actions (Section 3):

* **constants** — fixed values shared by every process in the protocol;
* **inputs** — readable but never written by the process's own actions;
* **variables** — read/write local state;
* **parameters** — a declared parameter over a finite domain expands one
  parameterised action into one concrete action per domain value.

The engine does not try to parse the paper's concrete syntax; protocol
authors construct processes programmatically (see
:mod:`repro.apn.zmail_spec` for the paper's §4 spec built this way).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from ..errors import APNError
from .action import Action, BooleanGuard, ReceiveGuard, TimeoutGuard

__all__ = ["Process"]


class Process:
    """A named AP process with typed state sections and guarded actions."""

    def __init__(
        self,
        name: str,
        *,
        constants: Mapping[str, Any] | None = None,
        inputs: Mapping[str, Any] | None = None,
        variables: Mapping[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.constants: dict[str, Any] = dict(constants or {})
        self.inputs: dict[str, Any] = dict(inputs or {})
        self.variables: dict[str, Any] = dict(variables or {})
        self.actions: list[Action] = []
        self._frozen_inputs = set(self.inputs)

    # -- state access -----------------------------------------------------------

    def __getitem__(self, key: str) -> Any:
        """Read a constant, input or variable by name (variables win ties)."""
        if key in self.variables:
            return self.variables[key]
        if key in self.inputs:
            return self.inputs[key]
        if key in self.constants:
            return self.constants[key]
        raise KeyError(f"process {self.name!r} has no state item {key!r}")

    def __setitem__(self, key: str, value: Any) -> None:
        """Write a variable; constants and inputs are write-protected."""
        if key in self._frozen_inputs:
            raise APNError(f"process {self.name!r}: input {key!r} is read-only")
        if key in self.constants:
            raise APNError(f"process {self.name!r}: constant {key!r} is read-only")
        self.variables[key] = value

    def __contains__(self, key: str) -> bool:
        return (
            key in self.variables or key in self.inputs or key in self.constants
        )

    # -- action declaration --------------------------------------------------------

    def add_action(self, action: Action) -> Action:
        """Register a concrete action on this process."""
        self.actions.append(action)
        return action

    def add_local_action(
        self,
        name: str,
        predicate: Callable[["Process"], bool],
        statement: Callable[["Process"], None],
        *,
        weight: float = 1.0,
        description: str = "",
    ) -> Action:
        """Register a boolean-guarded action."""
        guard = BooleanGuard(predicate, description or name)
        return self.add_action(Action(name, guard, statement, weight))

    def add_receive_action(
        self,
        name: str,
        message_name: str,
        sender: str,
        statement: Callable[..., None],
        *,
        weight: float = 1.0,
    ) -> Action:
        """Register a receive-guarded action for messages from ``sender``."""
        guard = ReceiveGuard(message_name, sender)
        return self.add_action(Action(name, guard, statement, weight))

    def add_timeout_action(
        self,
        name: str,
        predicate: Callable[..., bool],
        statement: Callable[["Process"], None],
        *,
        weight: float = 1.0,
        description: str = "",
    ) -> Action:
        """Register a timeout-guarded action (global-state predicate)."""
        guard = TimeoutGuard(predicate, description or name)
        return self.add_action(Action(name, guard, statement, weight))

    def add_parameterised_action(
        self,
        name: str,
        domain: Iterable[Any],
        make_action: Callable[[Any], Action],
    ) -> list[Action]:
        """Expand a parameterised action over a finite ``domain``.

        This is the paper's ``par`` construct: "A parameter declared in a
        process is used to write a finite set of actions as one action,
        with one action for each possible value of the parameter."
        """
        expanded = []
        for value in domain:
            action = make_action(value)
            action.name = f"{name}[{value}]"
            expanded.append(self.add_action(action))
        return expanded

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Process({self.name!r}, actions={len(self.actions)})"
