"""The alternating-bit protocol on the AP engine (engine demo/validation).

Gouda's book develops AP notation with classic protocols; the
alternating-bit protocol (reliable transfer over a lossy channel with a
one-bit sequence number) is the canonical one. Having it here serves two
purposes: it demonstrates that :mod:`repro.apn` is a general AP engine
rather than Zmail-shaped scaffolding, and its invariants (no loss, no
duplication, no reordering of the delivered stream) exercise the engine's
receive guards and timeout guards independently of Zmail.

Loss is modelled AP-style: an explicit nondeterministic "lose the head
message" action on each channel direction, bounded so runs terminate.
Retransmission fires on a timeout guard over global state (sender has an
outstanding message and the channels hold nothing for it), exactly the
book's formulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .channel import Message
from .process import Process
from .scheduler import ProtocolState, Scheduler

__all__ = ["AlternatingBitResult", "build_alternating_bit", "run_alternating_bit"]


@dataclass
class AlternatingBitResult:
    """Outcome of one alternating-bit run."""

    sent_items: list[int]
    delivered_items: list[int]
    losses_injected: int
    retransmissions: int
    steps: int

    @property
    def correct(self) -> bool:
        """Delivered equals sent: no loss, duplication or reordering."""
        return self.delivered_items == self.sent_items


def build_alternating_bit(
    *, n_items: int, max_losses: int, seed: int = 0
) -> tuple[Scheduler, Process, Process]:
    """Construct sender/receiver processes plus the lossy-channel saboteur."""
    sender = Process(
        "s",
        constants={"n": n_items},
        variables={
            "bit": 0,
            "next_item": 0,
            "outstanding": False,
            "retransmissions": 0,
            "sent_items": [],
        },
    )
    receiver = Process(
        "r",
        variables={"expected_bit": 0, "delivered": []},
    )
    saboteur = Process(
        "loss",
        inputs={"_rng": random.Random(seed)},
        variables={"remaining": max_losses},
    )

    # -- sender ----------------------------------------------------------------

    def send_next(p: Process) -> None:
        item = p["next_item"]
        p["sent_items"].append(item)
        p["outstanding"] = True
        _send(p, "r", Message("data", (p["bit"], item)))

    sender.add_local_action(
        "send",
        lambda p: not p["outstanding"] and p["next_item"] < p["n"],
        send_next,
    )

    def on_ack(p: Process, msg: Message) -> None:
        (ack_bit,) = msg.fields
        if ack_bit == p["bit"] and p["outstanding"]:
            p["outstanding"] = False
            p["bit"] = 1 - p["bit"]
            p["next_item"] = p["next_item"] + 1
        # Stale ack: ignore.

    sender.add_receive_action("rcv-ack", "ack", "r", on_ack)

    def channels_empty(state: ProtocolState, p: Process) -> bool:
        if not p["outstanding"]:
            return False
        return len(state.channel("s", "r")) == 0 and len(
            state.channel("r", "s")
        ) == 0

    def retransmit(p: Process) -> None:
        p["retransmissions"] = p["retransmissions"] + 1
        item = p["sent_items"][-1]
        _send(p, "r", Message("data", (p["bit"], item)))

    sender.add_timeout_action(
        "retransmit", channels_empty, retransmit, weight=0.5
    )

    # -- receiver ----------------------------------------------------------------

    def on_data(p: Process, msg: Message) -> None:
        bit, item = msg.fields
        if bit == p["expected_bit"]:
            p["delivered"].append(item)
            p["expected_bit"] = 1 - p["expected_bit"]
        _send(p, "s", Message("ack", (bit,)))

    receiver.add_receive_action("rcv-data", "data", "s", on_data)

    # -- lossy channel (explicit AP saboteur) ---------------------------------------

    def lose_guard(state: ProtocolState, p: Process) -> bool:
        if p["remaining"] <= 0:
            return False
        return bool(state.channel("s", "r")) or bool(state.channel("r", "s"))

    def lose_one(p: Process) -> None:
        state = p._protocol_state  # type: ignore[attr-defined]
        rng = p["_rng"]
        candidates = [
            chan
            for chan in (state.channel("s", "r"), state.channel("r", "s"))
            if len(chan)
        ]
        chan = rng.choice(candidates)
        chan.receive()  # drop the head message
        p["remaining"] = p["remaining"] - 1

    saboteur.add_timeout_action("lose", lose_guard, lose_one, weight=0.3)

    scheduler = Scheduler([sender, receiver, saboteur], seed=seed)
    for proc in (sender, receiver, saboteur):
        proc._protocol_state = scheduler.state  # type: ignore[attr-defined]
    return scheduler, sender, receiver


def _send(proc: Process, dst: str, message: Message) -> None:
    proc._protocol_state.send(proc.name, dst, message)  # type: ignore[attr-defined]


def run_alternating_bit(
    *, n_items: int = 10, max_losses: int = 8, seed: int = 0,
    max_steps: int = 5000,
) -> AlternatingBitResult:
    """Run the protocol to quiescence and report its outcome."""
    scheduler, sender, receiver = build_alternating_bit(
        n_items=n_items, max_losses=max_losses, seed=seed
    )
    steps = scheduler.run(max_steps)
    saboteur = scheduler.state.process("loss")
    return AlternatingBitResult(
        sent_items=list(range(n_items))[: sender["next_item"]],
        delivered_items=list(receiver["delivered"]),
        losses_injected=max_losses - saboteur["remaining"],
        retransmissions=sender["retransmissions"],
        steps=steps,
    )
