"""Nondeterministic weakly-fair execution of AP protocols.

Section 3's execution rules:

1. an action is executed only when its guard is true;
2. actions execute one at a time;
3. an action whose guard is continuously true is eventually executed.

:class:`ProtocolState` wires processes together with one FIFO channel per
ordered process pair (created lazily). :class:`Scheduler` repeatedly picks
one enabled action — randomly, weighted, from a seeded stream — and runs
its statement. Randomized selection gives rule 3 probabilistically, which
is the standard way to explore AP protocols by simulation; invariant
callbacks run after every step, turning the scheduler into a lightweight
randomized model checker.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..errors import APNError, GuardError
from .action import Action, BooleanGuard, ReceiveGuard, TimeoutGuard
from .channel import Channel, Message
from .process import Process

__all__ = ["ProtocolState", "Scheduler", "InvariantViolation", "StepRecord"]


class InvariantViolation(APNError):
    """An invariant callback returned False after a step."""


@dataclass(frozen=True)
class StepRecord:
    """Trace entry: which process fired which action at which step."""

    step: int
    process: str
    action: str


class ProtocolState:
    """All processes and channels of one protocol instance."""

    def __init__(self, processes: Iterable[Process]) -> None:
        self.processes: dict[str, Process] = {}
        for proc in processes:
            if proc.name in self.processes:
                raise APNError(f"duplicate process name {proc.name!r}")
            self.processes[proc.name] = proc
        self._channels: dict[tuple[str, str], Channel] = {}

    def process(self, name: str) -> Process:
        """Look up a process by name."""
        try:
            return self.processes[name]
        except KeyError:
            raise APNError(f"unknown process {name!r}") from None

    def channel(self, src: str, dst: str) -> Channel:
        """The FIFO channel from ``src`` to ``dst`` (created on first use)."""
        key = (src, dst)
        chan = self._channels.get(key)
        if chan is None:
            if src not in self.processes or dst not in self.processes:
                raise APNError(f"channel endpoints unknown: {src!r}->{dst!r}")
            chan = Channel(src, dst)
            self._channels[key] = chan
        return chan

    def send(self, src: str, dst: str, message: Message) -> None:
        """Send ``message`` on the channel ``src -> dst``."""
        self.channel(src, dst).send(message)

    def channels(self) -> dict[tuple[str, str], Channel]:
        """All channels created so far."""
        return dict(self._channels)

    def in_flight(self) -> int:
        """Total messages currently residing in all channels."""
        return sum(len(c) for c in self._channels.values())

    def channels_from(self, src: str) -> list[Channel]:
        """All channels whose source is ``src``."""
        return [c for (s, _), c in self._channels.items() if s == src]


class Scheduler:
    """Randomized weakly-fair executor with invariant checking.

    Example:
        >>> # p increments x while x < 3
        >>> p = Process("p", variables={"x": 0})
        >>> _ = p.add_local_action(
        ...     "inc", lambda pr: pr["x"] < 3,
        ...     lambda pr: pr.__setitem__("x", pr["x"] + 1))
        >>> sched = Scheduler([p], seed=7)
        >>> sched.run(max_steps=10)
        3
        >>> p["x"]
        3
    """

    def __init__(
        self,
        processes: Iterable[Process],
        *,
        seed: int = 0,
        trace: bool = False,
    ) -> None:
        self.state = ProtocolState(processes)
        self._rng = random.Random(seed)
        self._invariants: list[tuple[str, Callable[[ProtocolState], bool]]] = []
        self.steps_executed = 0
        self.trace: list[StepRecord] = []
        self._tracing = trace

    # -- invariants ----------------------------------------------------------------

    def add_invariant(
        self, name: str, predicate: Callable[[ProtocolState], bool]
    ) -> None:
        """Check ``predicate`` after every step; raise on violation."""
        self._invariants.append((name, predicate))

    def check_invariants(self) -> None:
        """Run all invariant predicates once, raising on the first failure."""
        for name, predicate in self._invariants:
            if not predicate(self.state):
                raise InvariantViolation(
                    f"invariant {name!r} violated after step {self.steps_executed}"
                )

    # -- guard evaluation ----------------------------------------------------------

    def _is_enabled(self, proc: Process, action: Action) -> Message | bool:
        """Evaluate an action's guard.

        Returns the head message for an enabled receive guard (so the
        statement can consume it), ``True`` for other enabled guards, and
        ``False`` when disabled.
        """
        guard = action.guard
        if isinstance(guard, BooleanGuard):
            result = guard.predicate(proc)
            if not isinstance(result, bool):
                raise GuardError(
                    f"guard of {proc.name}.{action.name} returned {result!r}"
                )
            return result
        if isinstance(guard, ReceiveGuard):
            chan = self.state.channel(guard.sender, proc.name)
            head = chan.peek()
            if head is not None and head.name == guard.message_name:
                return head
            return False
        if isinstance(guard, TimeoutGuard):
            result = guard.predicate(self.state, proc)
            if not isinstance(result, bool):
                raise GuardError(
                    f"timeout guard of {proc.name}.{action.name} "
                    f"returned {result!r}"
                )
            return result
        raise GuardError(f"unknown guard type {type(guard).__name__}")

    def enabled_actions(self) -> list[tuple[Process, Action, Message | bool]]:
        """All currently enabled (process, action, guard-result) triples."""
        enabled = []
        for proc in self.state.processes.values():
            for action in proc.actions:
                result = self._is_enabled(proc, action)
                if result is not False:
                    enabled.append((proc, action, result))
        return enabled

    # -- execution -----------------------------------------------------------------

    def step(self) -> bool:
        """Execute one randomly chosen enabled action.

        Returns ``False`` when no action is enabled (protocol quiescent).
        """
        enabled = self.enabled_actions()
        if not enabled:
            return False
        weights = [action.weight for _, action, _ in enabled]
        proc, action, guard_result = self._rng.choices(enabled, weights)[0]
        if isinstance(action.guard, ReceiveGuard):
            chan = self.state.channel(action.guard.sender, proc.name)
            message = chan.receive()
            action.statement(proc, message)
        else:
            action.statement(proc)
        action.fired += 1
        self.steps_executed += 1
        if self._tracing:
            self.trace.append(
                StepRecord(self.steps_executed, proc.name, action.name)
            )
        self.check_invariants()
        return True

    def run(self, max_steps: int = 10_000) -> int:
        """Execute up to ``max_steps`` actions; stop early on quiescence.

        Returns:
            The number of steps actually executed.
        """
        executed = 0
        for _ in range(max_steps):
            if not self.step():
                break
            executed += 1
        return executed

    def fire_counts(self) -> dict[str, int]:
        """``{"proc.action": times_fired}`` over the whole run."""
        counts: dict[str, int] = {}
        for proc in self.state.processes.values():
            for action in proc.actions:
                counts[f"{proc.name}.{action.name}"] = action.fired
        return counts
