"""Common evaluation vocabulary for anti-spam baselines (§2).

Every approach the paper reviews — legal, filtering, economic — is
evaluated on the same axes the paper argues on:

* how much spam reaches the inbox;
* how much legitimate mail is lost (false positives);
* what the *sender* pays (money, CPU, human effort);
* what the *receiver* pays (effort to triage, actions per spam);
* whether the approach needs a definition of spam at all.

:class:`EvaluationResult` is the row type every baseline produces, so the
comparison harness (and experiment E10) can tabulate them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EvaluationResult", "ClassifierMetrics", "confusion_metrics"]


@dataclass(frozen=True)
class ClassifierMetrics:
    """Standard confusion-matrix metrics for filter-style baselines."""

    true_positives: int  # spam correctly blocked
    false_positives: int  # ham wrongly blocked -- the costly error
    true_negatives: int  # ham correctly delivered
    false_negatives: int  # spam delivered

    @property
    def spam_recall(self) -> float:
        """Fraction of spam blocked."""
        total = self.true_positives + self.false_negatives
        return self.true_positives / total if total else 0.0

    @property
    def false_positive_rate(self) -> float:
        """Fraction of legitimate mail wrongly blocked (Jupiter's 17%)."""
        total = self.false_positives + self.true_negatives
        return self.false_positives / total if total else 0.0

    @property
    def accuracy(self) -> float:
        """Overall fraction classified correctly."""
        total = (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )
        correct = self.true_positives + self.true_negatives
        return correct / total if total else 0.0


def confusion_metrics(
    predictions: list[bool], labels: list[bool]
) -> ClassifierMetrics:
    """Build metrics from parallel predicted/actual spam flags."""
    if len(predictions) != len(labels):
        raise ValueError("predictions and labels differ in length")
    tp = fp = tn = fn = 0
    for predicted, actual in zip(predictions, labels):
        if predicted and actual:
            tp += 1
        elif predicted and not actual:
            fp += 1
        elif not predicted and not actual:
            tn += 1
        else:
            fn += 1
    return ClassifierMetrics(tp, fp, tn, fn)


@dataclass
class EvaluationResult:
    """One baseline's scorecard on a common scenario."""

    approach: str
    spam_blocked_fraction: float
    ham_lost_fraction: float
    sender_dollar_cost_per_msg: float = 0.0
    sender_cpu_seconds_per_msg: float = 0.0
    sender_human_actions_per_msg: float = 0.0
    receiver_actions_per_spam: float = 0.0
    needs_spam_definition: bool = False
    resists_evasion: bool = False
    notes: dict[str, float] = field(default_factory=dict)
