"""Every anti-spam comparator the paper reviews in Section 2.

Filtering (naive Bayes, blacklists, whitelists), human challenge–response,
hashcash proof-of-work, and the SHRED/Vanquish receiver-triggered payment
scheme — plus a harness that scores them all, and Zmail, on one common
scenario.
"""

from .base import ClassifierMetrics, EvaluationResult, confusion_metrics
from .bayes_filter import NaiveBayesFilter, evaluate_filter, roc_points
from .blacklist import Blacklist, RotatingSpammer
from .challenge_response import (
    ChallengeOutcome,
    ChallengeResponseSystem,
    HeldMessage,
)
from .comparison import ComparisonScenario, run_comparison
from .hashcash import HashcashStamp, expected_attempts, mint, verify
from .legal import SOPHOS_OFFSHORE_SHARE_2004, JurisdictionModel, RegistryModel
from .letter_filter import ContentProvider, make_letter_predicate, train_default_filter
from .shred import ShredConfig, ShredOutcome, ShredSystem
from .whitelist import Whitelist, WhitelistDecision

__all__ = [
    "ClassifierMetrics",
    "EvaluationResult",
    "confusion_metrics",
    "NaiveBayesFilter",
    "evaluate_filter",
    "roc_points",
    "Blacklist",
    "RotatingSpammer",
    "ChallengeOutcome",
    "ChallengeResponseSystem",
    "HeldMessage",
    "ComparisonScenario",
    "run_comparison",
    "HashcashStamp",
    "JurisdictionModel",
    "RegistryModel",
    "ContentProvider",
    "make_letter_predicate",
    "train_default_filter",
    "SOPHOS_OFFSHORE_SHARE_2004",
    "mint",
    "verify",
    "expected_attempts",
    "ShredConfig",
    "ShredOutcome",
    "ShredSystem",
    "Whitelist",
    "WhitelistDecision",
]
