"""Header-based blacklist filtering (§2.2, the MAPS-RBL style baseline).

A blacklist discards mail from "known" spam sources. Its §2.2 failure
mode: "spammers can use well-known ISPs or some hacked computers to send
spam" — source rotation keeps them ahead of the list. The model gives
the list a reaction lag: a source lands on the list only after it has
been observed sending at least ``report_threshold`` spam messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Blacklist", "RotatingSpammer"]


@dataclass
class Blacklist:
    """A reactive source blacklist.

    Args:
        report_threshold: Spam observations from a source before the
            community lists it (reporting + propagation lag).
    """

    report_threshold: int = 100
    _listed: set[str] = field(default_factory=set)
    _observations: dict[str, int] = field(default_factory=dict)
    blocked: int = 0
    passed: int = 0

    def is_listed(self, source: str) -> bool:
        """Whether ``source`` is currently on the list."""
        return source in self._listed

    def check(self, source: str) -> bool:
        """Filter one arriving message; returns ``True`` if it passes."""
        if source in self._listed:
            self.blocked += 1
            return False
        self.passed += 1
        return True

    def report_spam(self, source: str) -> None:
        """The community observed spam from ``source``; maybe list it."""
        count = self._observations.get(source, 0) + 1
        self._observations[source] = count
        if count >= self.report_threshold:
            self._listed.add(source)

    @property
    def listed_count(self) -> int:
        """How many sources are on the list."""
        return len(self._listed)


@dataclass
class RotatingSpammer:
    """A spammer that abandons each source once it gets listed.

    Models the §2.2 evasion: with a fresh pool of hacked hosts the
    spammer sends ``report_threshold`` messages from each before the list
    catches up, so the *delivered* fraction stays near 1 while sources
    last.
    """

    source_pool: int
    _next_source: int = 0
    current: str = ""

    def __post_init__(self) -> None:
        if self.source_pool <= 0:
            raise ValueError("source_pool must be positive")
        self.current = self._name(0)

    def _name(self, index: int) -> str:
        return f"zombie-{index}"

    def send_source(self, blacklist: Blacklist) -> str | None:
        """Pick the source for the next message, rotating off listed ones.

        Returns ``None`` when the pool is exhausted (every host listed).
        """
        while blacklist.is_listed(self.current):
            self._next_source += 1
            if self._next_source >= self.source_pool:
                return None
            self.current = self._name(self._next_source)
        return self.current
