"""SHRED / Vanquish: receiver-triggered sender payment (§2.3).

The closest prior art to Zmail, and the comparison the paper argues in
detail. In SHRED [16] and Vanquish [31], the *receiver* of an unwanted
email triggers a payment from the sender **to the sender's ISP** — not to
the receiver. The paper lists four weaknesses, each of which this model
makes measurable:

1. receiver effort *increases* (an extra action per spam to trigger);
2. receivers are unmotivated (the payment is not theirs), so many never
   trigger — modelled by ``trigger_probability``;
3. a spammer colluding with its own ISP pays effectively nothing
   (the ISP refunds it) and **cannot be detected** — there is no
   cross-ISP consistency check like Zmail's credit arrays;
4. every payment is an individual transaction whose processing cost can
   exceed the penny collected.

Experiments E5 and E6 run this model against Zmail on identical traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ShredConfig", "ShredOutcome", "ShredSystem"]


@dataclass(frozen=True)
class ShredConfig:
    """Parameters of the SHRED-style deployment.

    Attributes:
        payment_cents: Charge per triggered message (a penny or less).
        trigger_probability: Chance a receiver bothers to trigger —
            weakness 2 (they gain nothing personally).
        processing_cost_cents: ISP's cost to clear one individual
            micro-payment — weakness 4.
        colluding_refund: Fraction of a colluding spammer's charges its
            ISP quietly refunds — weakness 3 (1.0 = full collusion).
    """

    payment_cents: float = 1.0
    trigger_probability: float = 0.3
    processing_cost_cents: float = 2.0
    colluding_refund: float = 1.0

    def __post_init__(self) -> None:
        if self.payment_cents < 0 or self.processing_cost_cents < 0:
            raise ValueError("costs must be non-negative")
        if not 0.0 <= self.trigger_probability <= 1.0:
            raise ValueError("trigger_probability outside [0, 1]")
        if not 0.0 <= self.colluding_refund <= 1.0:
            raise ValueError("colluding_refund outside [0, 1]")


@dataclass
class ShredOutcome:
    """Aggregate result of running SHRED over a traffic batch."""

    spam_received: int = 0
    triggers: int = 0
    receiver_actions: int = 0
    spammer_paid_cents: float = 0.0
    spammer_refunded_cents: float = 0.0
    isp_processing_cost_cents: float = 0.0
    payment_transactions: int = 0

    @property
    def effective_spammer_cost_cents(self) -> float:
        """What spam actually cost the spammer after collusion refunds."""
        return self.spammer_paid_cents - self.spammer_refunded_cents

    @property
    def processing_exceeds_collections(self) -> bool:
        """Weakness 4: clearing costs more than it collects."""
        return self.isp_processing_cost_cents > self.spammer_paid_cents


class ShredSystem:
    """Drives the SHRED model over spam deliveries.

    Example:
        >>> import random
        >>> system = ShredSystem(ShredConfig(trigger_probability=1.0))
        >>> outcome = system.run_campaign(
        ...     spam_messages=100, colluding=False, rng=random.Random(0))
        >>> outcome.triggers
        100
    """

    def __init__(self, config: ShredConfig | None = None) -> None:
        self.config = config or ShredConfig()

    def run_campaign(
        self, *, spam_messages: int, colluding: bool, rng
    ) -> ShredOutcome:
        """Deliver a spam campaign and let receivers trigger payments."""
        if spam_messages < 0:
            raise ValueError("spam_messages must be non-negative")
        cfg = self.config
        outcome = ShredOutcome(spam_received=spam_messages)
        for _ in range(spam_messages):
            if rng.random() >= cfg.trigger_probability:
                continue
            outcome.triggers += 1
            outcome.receiver_actions += 1  # weakness 1: extra work per spam
            outcome.payment_transactions += 1
            outcome.spammer_paid_cents += cfg.payment_cents
            outcome.isp_processing_cost_cents += cfg.processing_cost_cents
            if colluding:
                outcome.spammer_refunded_cents += (
                    cfg.payment_cents * cfg.colluding_refund
                )
        return outcome

    @staticmethod
    def collusion_detectable() -> bool:
        """Weakness 3: SHRED has no cross-ISP audit, so never detects it.

        The payment loop is entirely inside the sender's ISP; no other
        party holds a record to check it against (contrast Zmail's
        credit-array anti-symmetry, which any honest counterparty breaks).
        """
        return False
