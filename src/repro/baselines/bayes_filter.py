"""Naive-Bayes content filter (the §2.2 filtering baseline).

A from-scratch implementation of the Sahami-style Bayesian spam filter
the paper cites [26]: multinomial naive Bayes over message tokens with
Laplace smoothing, computed in log space. Experiment E10 measures its
false-positive rate and its collapse under misspelling evasion —
the two §2.2 failure modes.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..spamcorpus.generator import LabeledMessage
from .base import ClassifierMetrics, confusion_metrics

__all__ = ["NaiveBayesFilter", "evaluate_filter", "roc_points"]


class NaiveBayesFilter:
    """Multinomial naive Bayes over tokens, with Laplace smoothing.

    Args:
        threshold: Posterior spam probability above which a message is
            classified as spam. The conventional 0.9 biases against false
            positives, as production filters did.

    Example:
        >>> from repro.spamcorpus import CorpusGenerator
        >>> gen = CorpusGenerator(seed=1)
        >>> filt = NaiveBayesFilter()
        >>> filt.train(gen.corpus(n_ham=200, n_spam=200))
        >>> filt.classify(gen.spam().tokens)
        True
    """

    def __init__(self, *, threshold: float = 0.9, smoothing: float = 1.0) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.threshold = threshold
        self.smoothing = smoothing
        self._spam_counts: dict[str, int] = {}
        self._ham_counts: dict[str, int] = {}
        self._spam_total = 0
        self._ham_total = 0
        self._spam_docs = 0
        self._ham_docs = 0

    # -- training -----------------------------------------------------------------

    def train(self, corpus: Iterable[LabeledMessage]) -> None:
        """Accumulate token statistics from labelled messages (incremental)."""
        for message in corpus:
            counts = self._spam_counts if message.is_spam else self._ham_counts
            for token in message.tokens:
                counts[token] = counts.get(token, 0) + 1
            if message.is_spam:
                self._spam_total += len(message.tokens)
                self._spam_docs += 1
            else:
                self._ham_total += len(message.tokens)
                self._ham_docs += 1

    @property
    def vocabulary_size(self) -> int:
        """Distinct tokens seen in training."""
        return len(self._spam_counts.keys() | self._ham_counts.keys())

    @property
    def trained(self) -> bool:
        """Whether both classes have at least one training document."""
        return self._spam_docs > 0 and self._ham_docs > 0

    # -- inference ------------------------------------------------------------------

    def spam_probability(self, tokens: Iterable[str]) -> float:
        """Posterior P(spam | tokens) under the naive-Bayes model."""
        if not self.trained:
            raise ValueError("filter has not been trained on both classes")
        vocab = self.vocabulary_size
        log_spam = math.log(self._spam_docs / (self._spam_docs + self._ham_docs))
        log_ham = math.log(self._ham_docs / (self._spam_docs + self._ham_docs))
        alpha = self.smoothing
        for token in tokens:
            spam_count = self._spam_counts.get(token, 0)
            ham_count = self._ham_counts.get(token, 0)
            log_spam += math.log(
                (spam_count + alpha) / (self._spam_total + alpha * vocab)
            )
            log_ham += math.log(
                (ham_count + alpha) / (self._ham_total + alpha * vocab)
            )
        # Normalise in log space to avoid under/overflow.
        peak = max(log_spam, log_ham)
        spam_odds = math.exp(log_spam - peak)
        ham_odds = math.exp(log_ham - peak)
        return spam_odds / (spam_odds + ham_odds)

    def classify(self, tokens: Iterable[str]) -> bool:
        """``True`` when the message is classified as spam."""
        return self.spam_probability(tokens) >= self.threshold


def evaluate_filter(
    filt: NaiveBayesFilter, test: Iterable[LabeledMessage]
) -> ClassifierMetrics:
    """Confusion metrics of a trained filter on a labelled test set."""
    messages = list(test)
    predictions = [filt.classify(m.tokens) for m in messages]
    labels = [m.is_spam for m in messages]
    return confusion_metrics(predictions, labels)


def roc_points(
    filt: NaiveBayesFilter,
    test: Iterable[LabeledMessage],
    thresholds: Iterable[float] = (0.5, 0.7, 0.9, 0.99, 0.999),
) -> list[tuple[float, ClassifierMetrics]]:
    """Recall/false-positive trade-off across classification thresholds.

    The §2.2 dilemma made visible: pushing the threshold up to protect
    legitimate mail lets more spam through, and no threshold gives both —
    which is the paper's argument that the false-positive regime is
    inherent to filtering, not a tuning failure.
    """
    messages = list(test)
    labels = [m.is_spam for m in messages]
    probabilities = [filt.spam_probability(m.tokens) for m in messages]
    points = []
    for threshold in thresholds:
        predictions = [p >= threshold for p in probabilities]
        points.append((threshold, confusion_metrics(predictions, labels)))
    return points
