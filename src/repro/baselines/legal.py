"""Legal approaches to spam (§2.1): jurisdiction and registry models.

The paper's two §2.1 criticisms, made measurable:

1. **Jurisdictional escape** — "spammers can simply move their operations
   to a country that has no anti-spam laws. In fact, a lot of spammers
   have already done so" (Sophos, Aug 2004: 57.47% of spam originated
   outside the U.S.). :class:`JurisdictionModel` evolves the offshore
   share under enforcement pressure: onshore spammers exit or move, but
   offshore volume grows to soak up the vacated demand, so total spam
   barely moves.

2. **The do-not-email registry** — the FTC's 2004 report concluded a
   registry "would fail to reduce the amount of spam consumers receive,
   might increase it, and could not be enforced effectively."
   :class:`RegistryModel` shows why: compliant (onshore, law-abiding)
   senders suppress listed addresses, but the registry is a verified
   target list to every rogue spammer who obtains it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SOPHOS_OFFSHORE_SHARE_2004", "JurisdictionModel", "RegistryModel"]

# The paper's citation: 57.47% of spam originated outside the U.S.
SOPHOS_OFFSHORE_SHARE_2004 = 0.5747


@dataclass
class JurisdictionModel:
    """Spam volume under national anti-spam law enforcement.

    Attributes:
        onshore_volume / offshore_volume: Messages per period by origin.
        enforcement_pressure: Per-period probability-mass of onshore
            operations shut down or fined into exit.
        relocation_fraction: Of the pressured onshore volume, how much
            relocates offshore rather than exiting the business.
        demand_refill: Fraction of genuinely exited volume that offshore
            entrants replace next period (spam demand is market-driven).
    """

    onshore_volume: float = 42.53
    offshore_volume: float = 57.47
    enforcement_pressure: float = 0.3
    relocation_fraction: float = 0.8
    demand_refill: float = 0.9
    history: list[tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name in ("enforcement_pressure", "relocation_fraction", "demand_refill"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} outside [0, 1]")
        self.history.append((self.onshore_volume, self.offshore_volume))

    def step(self) -> tuple[float, float]:
        """Advance one enforcement period."""
        pressured = self.onshore_volume * self.enforcement_pressure
        relocated = pressured * self.relocation_fraction
        exited = pressured - relocated
        self.onshore_volume -= pressured
        self.offshore_volume += relocated + exited * self.demand_refill
        self.history.append((self.onshore_volume, self.offshore_volume))
        return self.history[-1]

    def run(self, periods: int) -> None:
        """Run several enforcement periods."""
        for _ in range(periods):
            self.step()

    @property
    def total_volume(self) -> float:
        """Current total spam per period."""
        return self.onshore_volume + self.offshore_volume

    @property
    def offshore_share(self) -> float:
        """Fraction of spam now originating offshore."""
        total = self.total_volume
        return self.offshore_volume / total if total else 0.0

    def volume_reduction(self) -> float:
        """Fractional drop in total spam since period 0."""
        initial = sum(self.history[0])
        return 1.0 - self.total_volume / initial if initial else 0.0


@dataclass
class RegistryModel:
    """The national do-not-email registry, as the FTC feared it.

    Attributes:
        registered_fraction: Share of all addresses on the registry.
        lawful_sender_share: Fraction of bulk mail sent by senders who
            actually honour the registry (onshore, identifiable).
        leak_probability: Chance the registry (or a scrape of it) reaches
            rogue spammers, who then *prefer* registered addresses —
            they are verified-live.
        rogue_target_boost: Multiplier on rogue volume aimed at leaked
            registered addresses (verified addresses are worth more).
    """

    registered_fraction: float = 0.3
    lawful_sender_share: float = 0.2
    leak_probability: float = 0.75
    rogue_target_boost: float = 1.5

    def spam_to_registered_user(self, *, baseline: float = 100.0, leaked: bool) -> float:
        """Spam per period reaching one registered address.

        Args:
            baseline: Spam a non-registered user receives per period.
            leaked: Whether the registry fell into rogue hands.
        """
        lawful = baseline * self.lawful_sender_share
        rogue = baseline * (1.0 - self.lawful_sender_share)
        if leaked:
            rogue *= self.rogue_target_boost
        return rogue  # lawful senders suppress; rogue senders do not

    def expected_change(self, *, baseline: float = 100.0) -> float:
        """Expected spam change for a registered user vs not registering.

        Positive means the registry *increased* their spam — the FTC's
        "might increase it".
        """
        leaked = self.spam_to_registered_user(baseline=baseline, leaked=True)
        safe = self.spam_to_registered_user(baseline=baseline, leaked=False)
        expected = (
            self.leak_probability * leaked
            + (1.0 - self.leak_probability) * safe
        )
        return expected - baseline
