"""Hashcash proof-of-work (the §2.3 computational-cost baseline).

A real, interoperable-in-spirit implementation of Adam Back's hashcash
[4]: the sender mints a stamp whose SHA-1 hash has ``bits`` leading zero
bits; verification is one hash. The paper's criticism is that the
sender-side cost hits *everyone* — "email systems become significantly
inefficient in sending and receiving email" and ISPs sending legitimate
bulk mail (newsletters, receipts) pay it too. Experiment E12 measures
minting cost versus Zmail's ledger update.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["HashcashStamp", "mint", "verify", "expected_attempts"]

_VERSION = "1"


@dataclass(frozen=True)
class HashcashStamp:
    """A minted stamp: ``ver:bits:resource:counter``."""

    bits: int
    resource: str
    counter: int
    attempts: int  # how many hashes minting took (for cost accounting)

    def encode(self) -> str:
        """The stamp string whose hash satisfies the target."""
        return f"{_VERSION}:{self.bits}:{self.resource}:{self.counter:x}"


def _leading_zero_bits(digest: bytes) -> int:
    bits = 0
    for byte in digest:
        if byte == 0:
            bits += 8
            continue
        for shift in range(7, -1, -1):
            if byte >> shift:
                return bits + (7 - shift)
        return bits
    return bits


def mint(resource: str, bits: int, *, start_counter: int = 0) -> HashcashStamp:
    """Mint a stamp for ``resource`` with ``bits`` bits of work.

    Expected cost is ``2**bits`` SHA-1 evaluations; with the 20 bits
    hashcash proposed, about a million hashes per message.

    Raises:
        ValueError: for a bits value outside the sane 0..40 range.
    """
    if not 0 <= bits <= 40:
        raise ValueError(f"bits must be in [0, 40], got {bits}")
    counter = start_counter
    attempts = 0
    prefix = f"{_VERSION}:{bits}:{resource}:".encode("ascii")
    while True:
        attempts += 1
        candidate = prefix + format(counter, "x").encode("ascii")
        digest = hashlib.sha1(candidate).digest()
        if _leading_zero_bits(digest) >= bits:
            return HashcashStamp(bits, resource, counter, attempts)
        counter += 1


def verify(stamp: HashcashStamp | str, *, resource: str, bits: int) -> bool:
    """Check a stamp: right resource, right difficulty, hash satisfies it.

    Verification is one hash — the receiver-side asymmetry hashcash
    relies on.
    """
    if isinstance(stamp, HashcashStamp):
        encoded = stamp.encode()
    else:
        encoded = stamp
    parts = encoded.split(":")
    if len(parts) != 4 or parts[0] != _VERSION:
        return False
    try:
        stamp_bits = int(parts[1])
    except ValueError:
        return False
    if stamp_bits < bits or parts[2] != resource:
        return False
    digest = hashlib.sha1(encoded.encode("ascii")).digest()
    return _leading_zero_bits(digest) >= stamp_bits


def expected_attempts(bits: int) -> int:
    """Expected SHA-1 evaluations to mint at ``bits`` difficulty."""
    return 2**bits
