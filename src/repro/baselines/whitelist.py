"""Whitelist filtering (§2.2).

A whitelist accepts mail from "known" senders and routes the rest to a
stricter check. Its §2.2 failure mode: "To take advantage of whitelists,
spammers usually forge their domain names" — sender identity in classic
SMTP is unauthenticated, so forgery passes the list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["WhitelistDecision", "Whitelist"]


class WhitelistDecision(Enum):
    """Outcome of a whitelist check."""

    ACCEPT = "accept"  # listed sender: deliver directly
    FALLTHROUGH = "fallthrough"  # unlisted: send to further filtering


@dataclass
class Whitelist:
    """An accept-list over (claimed) sender addresses.

    ``check`` works on the *claimed* sender; with ``forgeable=True``
    (the realistic 2004 setting) a spammer who knows or guesses a listed
    address simply presents it.
    """

    forgeable: bool = True
    _listed: set[str] = field(default_factory=set)
    accepted: int = 0
    fell_through: int = 0
    forged_accepts: int = 0

    def add(self, sender: str) -> None:
        """Add a trusted correspondent."""
        self._listed.add(sender.lower())

    def remove(self, sender: str) -> None:
        """Remove a correspondent if present."""
        self._listed.discard(sender.lower())

    def __contains__(self, sender: str) -> bool:
        return sender.lower() in self._listed

    def __len__(self) -> int:
        return len(self._listed)

    def check(
        self, claimed_sender: str, *, actually_spam: bool = False
    ) -> WhitelistDecision:
        """Check one message by its claimed sender.

        Args:
            actually_spam: Ground truth, used only to count how many
                forged spam messages the list waved through.
        """
        if claimed_sender.lower() in self._listed:
            self.accepted += 1
            if actually_spam and self.forgeable:
                self.forged_accepts += 1
            return WhitelistDecision.ACCEPT
        self.fell_through += 1
        return WhitelistDecision.FALLTHROUGH

    def forge_target(self) -> str | None:
        """A listed address a forging spammer would claim (if any)."""
        if not self.forgeable or not self._listed:
            return None
        return min(self._listed)  # deterministic pick
