"""Content filtering wired into the Zmail deployment (hybrid mode).

§5: during incremental deployment a compliant ISP may "require any email
from a non-compliant ISP to pass a spam filter". This adapter connects
the :class:`~repro.baselines.bayes_filter.NaiveBayesFilter` to the
network's FILTER policy: letters carry token content
(:attr:`~repro.core.transfer.Letter.content`), and the predicate keeps a
letter when the filter judges it ham.

The crucial asymmetry the hybrid experiment (E17) measures: the filter
only ever touches *non-compliant* mail — compliant (paid) mail bypasses
it entirely, so Zmail-side traffic has a structural false-positive rate
of zero even in a deployment that still runs filters at the boundary.
"""

from __future__ import annotations

from typing import Callable

from ..core.transfer import Letter
from ..spamcorpus.generator import CorpusGenerator
from ..spamcorpus.vocabulary import Vocabulary
from .bayes_filter import NaiveBayesFilter

__all__ = ["train_default_filter", "make_letter_predicate", "ContentProvider"]


def train_default_filter(
    *,
    n_train: int = 1200,
    spam_fraction: float = 0.6,
    extra_overlap: float = 0.0,
    seed: int = 0,
    threshold: float = 0.9,
) -> NaiveBayesFilter:
    """Train a Bayes filter on a synthetic corpus (one call, sane defaults)."""
    vocabulary = Vocabulary(extra_overlap=extra_overlap, seed=seed)
    generator = CorpusGenerator(vocabulary=vocabulary, seed=seed + 1)
    filt = NaiveBayesFilter(threshold=threshold)
    n_spam = round(n_train * spam_fraction)
    filt.train(generator.corpus(n_ham=n_train - n_spam, n_spam=n_spam))
    return filt


def make_letter_predicate(
    filt: NaiveBayesFilter,
) -> Callable[[Letter], bool]:
    """Build the FILTER-policy predicate: ``True`` keeps the letter.

    Letters without content cannot be judged and are kept — filtering
    blind would guarantee false positives.
    """

    def keep(letter: Letter) -> bool:
        if letter.content is None:
            return True
        return not filt.classify(letter.content)

    return keep


class ContentProvider:
    """Attach realistic token content to workload messages.

    Draws ham content for normal traffic and (optionally evasive) spam
    content for spam traffic from a shared vocabulary, so a filter
    trained on the same distribution behaves as it would on real mail.
    """

    def __init__(
        self,
        *,
        extra_overlap: float = 0.0,
        evasion_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        vocabulary = Vocabulary(extra_overlap=extra_overlap, seed=seed)
        self._generator = CorpusGenerator(vocabulary=vocabulary, seed=seed + 2)
        self.evasion_rate = evasion_rate

    def ham(self) -> tuple[str, ...]:
        """Token content for one legitimate message."""
        return self._generator.ham().tokens

    def spam(self) -> tuple[str, ...]:
        """Token content for one spam message."""
        return self._generator.spam(evasion_rate=self.evasion_rate).tokens
