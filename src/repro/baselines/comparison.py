"""Cross-approach comparison harness (the paper's §2 as one table).

Runs every reviewed approach — do-nothing, blacklist, whitelist, naive
Bayes, challenge–response, hashcash, SHRED — plus Zmail itself over a
common synthetic scenario and produces one
:class:`~repro.baselines.base.EvaluationResult` per approach. This is the
engine behind experiment E10's summary table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.epenny import EPENNY_PRICE_DOLLARS
from ..spamcorpus.datasets import Dataset, make_dataset
from .base import EvaluationResult
from .bayes_filter import NaiveBayesFilter, evaluate_filter
from .blacklist import Blacklist, RotatingSpammer
from .challenge_response import ChallengeResponseSystem
from .hashcash import expected_attempts
from .shred import ShredConfig, ShredSystem

__all__ = ["ComparisonScenario", "run_comparison"]

# A mid-2000s desktop hashed SHA-1 at very roughly 10^6-10^7/s; use the
# conservative end so the CPU-seconds figure is not overstated.
_SHA1_PER_SECOND = 5e6


@dataclass(frozen=True)
class ComparisonScenario:
    """Shared workload parameters for the §2 comparison."""

    n_train: int = 2000
    n_test: int = 2000
    spam_fraction: float = 0.6
    evasion_rate: float = 0.5
    hashcash_bits: int = 20
    seed: int = 0

    def dataset(self, *, evasive: bool) -> Dataset:
        """The train/test corpus, optionally with test-time evasion."""
        return make_dataset(
            n_train=self.n_train,
            n_test=self.n_test,
            spam_fraction=self.spam_fraction,
            evasion_rate=0.0,
            test_evasion_rate=self.evasion_rate if evasive else 0.0,
            seed=self.seed,
        )


def _nothing(scenario: ComparisonScenario) -> EvaluationResult:
    return EvaluationResult(
        approach="status-quo",
        spam_blocked_fraction=0.0,
        ham_lost_fraction=0.0,
        receiver_actions_per_spam=1.0,  # delete by hand
    )


def _bayes(scenario: ComparisonScenario, *, evasive: bool) -> EvaluationResult:
    dataset = scenario.dataset(evasive=evasive)
    filt = NaiveBayesFilter()
    filt.train(dataset.train)
    metrics = evaluate_filter(filt, dataset.test)
    name = "bayes-filter+evasion" if evasive else "bayes-filter"
    return EvaluationResult(
        approach=name,
        spam_blocked_fraction=metrics.spam_recall,
        ham_lost_fraction=metrics.false_positive_rate,
        needs_spam_definition=True,
        notes={"accuracy": metrics.accuracy},
    )


def _blacklist(scenario: ComparisonScenario) -> EvaluationResult:
    rng = random.Random(scenario.seed)
    blacklist = Blacklist(report_threshold=100)
    spammer = RotatingSpammer(source_pool=50)
    n_spam = round(scenario.n_test * scenario.spam_fraction)
    delivered = 0
    for _ in range(n_spam):
        source = spammer.send_source(blacklist)
        if source is None:
            break
        if blacklist.check(source):
            delivered += 1
            if rng.random() < 0.5:  # half of recipients report
                blacklist.report_spam(source)
    blocked_fraction = 1.0 - delivered / n_spam if n_spam else 0.0
    return EvaluationResult(
        approach="blacklist",
        spam_blocked_fraction=blocked_fraction,
        ham_lost_fraction=0.0,  # optimistic: no shared-host collateral
        needs_spam_definition=True,
        notes={"sources_listed": float(blacklist.listed_count)},
    )


def _challenge(scenario: ComparisonScenario) -> EvaluationResult:
    rng = random.Random(scenario.seed + 1)
    system = ChallengeResponseSystem()
    n_spam = round(scenario.n_test * scenario.spam_fraction)
    n_ham = scenario.n_test - n_spam
    ham_lost = 0
    spam_through = 0
    for i in range(n_ham):
        outcome = system.submit(
            f"friend{i % 50}", "victim", now=0.0, is_spam=False, rng=rng
        )
        if outcome.value == "abandoned":
            ham_lost += 1
    for i in range(n_spam):
        outcome = system.submit(
            f"spammer{i}", "victim", now=0.0, is_spam=True, rng=rng
        )
        if outcome.value in ("delivered", "auto_accepted"):
            spam_through += 1
    return EvaluationResult(
        approach="challenge-response",
        spam_blocked_fraction=1.0 - spam_through / n_spam if n_spam else 0.0,
        ham_lost_fraction=ham_lost / n_ham if n_ham else 0.0,
        sender_human_actions_per_msg=system.human_actions
        / max(1, system.challenges_sent),
        notes={"mean_delay_s": system.mean_delivery_delay},
    )


def _hashcash(scenario: ComparisonScenario) -> EvaluationResult:
    cpu_seconds = expected_attempts(scenario.hashcash_bits) / _SHA1_PER_SECOND
    return EvaluationResult(
        approach=f"hashcash-{scenario.hashcash_bits}bit",
        # Assumes spammers cannot afford the CPU at scale; botnets later
        # broke this, which is outside the paper's 2004 frame.
        spam_blocked_fraction=1.0,
        ham_lost_fraction=0.0,
        sender_cpu_seconds_per_msg=cpu_seconds,
        resists_evasion=True,
    )


def _shred(scenario: ComparisonScenario) -> EvaluationResult:
    rng = random.Random(scenario.seed + 2)
    system = ShredSystem(ShredConfig())
    n_spam = round(scenario.n_test * scenario.spam_fraction)
    outcome = system.run_campaign(spam_messages=n_spam, colluding=True, rng=rng)
    return EvaluationResult(
        approach="shred/vanquish",
        spam_blocked_fraction=0.0,  # spam is delivered; payment is ex post
        ham_lost_fraction=0.0,
        sender_dollar_cost_per_msg=outcome.effective_spammer_cost_cents
        / 100.0
        / max(1, n_spam),
        receiver_actions_per_spam=1.0 + outcome.receiver_actions / max(1, n_spam),
        resists_evasion=True,
        notes={
            "processing_cost_cents": outcome.isp_processing_cost_cents,
            "collected_cents": outcome.spammer_paid_cents,
        },
    )


def _zmail(scenario: ComparisonScenario) -> EvaluationResult:
    return EvaluationResult(
        approach="zmail",
        # Spam priced out ex ante (E2 quantifies the volume collapse);
        # whatever is still sent is paid for, and the receiver keeps the
        # e-penny: zero triage actions chargeable to the system.
        spam_blocked_fraction=1.0,
        ham_lost_fraction=0.0,
        sender_dollar_cost_per_msg=EPENNY_PRICE_DOLLARS,
        receiver_actions_per_spam=0.0,
        resists_evasion=True,
    )


def run_comparison(
    scenario: ComparisonScenario | None = None,
) -> list[EvaluationResult]:
    """Evaluate every §2 approach plus Zmail on one scenario."""
    scenario = scenario or ComparisonScenario()
    return [
        _nothing(scenario),
        _blacklist(scenario),
        _bayes(scenario, evasive=False),
        _bayes(scenario, evasive=True),
        _challenge(scenario),
        _hashcash(scenario),
        _shred(scenario),
        _zmail(scenario),
    ]
