"""Human challenge–response (the §2.3 human-effort baseline).

Mailblocks/Active-Spam-Killer style: first contact from an unknown sender
is held; a CAPTCHA-like challenge goes back; the mail is delivered only
when a human answers. The paper's criticisms, all measurable here:
"inconvenient, inefficient and sometimes a challenge can be perceived as
rude" — human actions per message, delivery delay, and abandonment of
legitimate mail when senders ignore challenges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["ChallengeOutcome", "HeldMessage", "ChallengeResponseSystem"]


class ChallengeOutcome(Enum):
    """Final state of a challenged message."""

    DELIVERED = "delivered"  # challenge answered, mail released
    ABANDONED = "abandoned"  # sender never answered; mail lost
    AUTO_ACCEPTED = "auto_accepted"  # sender already verified


@dataclass
class HeldMessage:
    """A message waiting for its sender's challenge answer."""

    sender: str
    recipient: str
    held_at: float
    is_spam: bool


@dataclass
class ChallengeResponseSystem:
    """A per-recipient challenge–response gate.

    Args:
        human_answer_probability: Chance a legitimate human sender
            actually answers the challenge (some find it rude or never
            see it — the paper's point).
        answer_delay_seconds: Typical time for a human to answer.
        bot_solver_rate: Chance a spammer solves a challenge (cheap-labour
            CAPTCHA farms existed even then).
    """

    human_answer_probability: float = 0.85
    answer_delay_seconds: float = 3600.0
    bot_solver_rate: float = 0.0
    _verified: set[str] = field(default_factory=set)
    held: list[HeldMessage] = field(default_factory=list)
    challenges_sent: int = 0
    human_actions: int = 0
    delivered: int = 0
    abandoned: int = 0
    spam_delivered: int = 0
    total_delay_seconds: float = 0.0

    def submit(
        self,
        sender: str,
        recipient: str,
        *,
        now: float,
        is_spam: bool,
        rng,
    ) -> ChallengeOutcome:
        """Process one incoming message end to end.

        The challenge round-trip is resolved immediately using the
        configured probabilities (the delay is accounted, not simulated).
        """
        if sender in self._verified:
            self.delivered += 1
            if is_spam:
                self.spam_delivered += 1
            return ChallengeOutcome.AUTO_ACCEPTED

        self.challenges_sent += 1
        self.held.append(HeldMessage(sender, recipient, now, is_spam))
        answer_probability = (
            self.bot_solver_rate if is_spam else self.human_answer_probability
        )
        if rng.random() < answer_probability:
            self.human_actions += 1  # someone solved a puzzle
            self.total_delay_seconds += self.answer_delay_seconds
            self._verified.add(sender)
            self.delivered += 1
            if is_spam:
                self.spam_delivered += 1
            self.held.pop()
            return ChallengeOutcome.DELIVERED
        self.abandoned += 1
        self.held.pop()
        return ChallengeOutcome.ABANDONED

    # -- reporting -----------------------------------------------------------------

    @property
    def legitimate_loss_rate(self) -> float:
        """Fraction of all processed messages that were abandoned.

        Callers separating ham/spam should track outcomes themselves;
        this aggregate matches how the paper criticises the approach.
        """
        total = self.delivered + self.abandoned
        return self.abandoned / total if total else 0.0

    @property
    def mean_delivery_delay(self) -> float:
        """Average extra latency on challenged-and-answered messages."""
        answered = self.human_actions
        return self.total_delay_seconds / answered if answered else 0.0
