"""Reproduction of *Zmail: Zero-Sum Free Market Control of Spam* (ICDCS 2005).

The library provides:

* :mod:`repro.core` — the deployable Zmail system: compliant ISPs, the
  central bank (or a federation), zero-sum e-penny transfer, bulk
  reconciliation, misbehaviour detection, the solvency audit, mailing
  lists, zombie containment, incremental-deployment policies and a
  declarative scenario runner.
* :mod:`repro.apn` — Gouda's Abstract Protocol notation engine and the
  paper's formal §4 specification, executable as a randomized model
  checker.
* :mod:`repro.smtp` — an RFC 821/822-subset SMTP substrate showing Zmail
  needs no change to SMTP (payment metadata rides in ``X-Zmail-*``
  headers), plus the full ISP gateway.
* :mod:`repro.sim` — the deterministic discrete-event simulator, FIFO
  latency/loss network, reliable-delivery layer and email workload
  generators behind every experiment.
* :mod:`repro.economics` — the market models (spammer break-even, the
  adaptive spammer, user neutrality, ISP costs, adoption dynamics,
  sensitivity statistics).
* :mod:`repro.baselines` — every comparator from the paper's Section 2:
  filtering (naive Bayes, blacklists, whitelists), challenge–response,
  hashcash proof-of-work, SHRED/Vanquish receiver-triggered payments and
  the legal-approach models.
* :mod:`repro.crypto` — the toy NCR/DCR/NNC substrate the spec needs.
* :mod:`repro.spamcorpus` — synthetic spam/ham corpora for the filtering
  baseline.

The most-used entry points are re-exported here::

    from repro import ZmailNetwork, Address, Scenario
"""

__version__ = "1.0.0"

from . import errors
from .core import Scenario, ZmailConfig, ZmailNetwork
from .sim import Address, TrafficKind

__all__ = [
    "errors",
    "__version__",
    "ZmailNetwork",
    "ZmailConfig",
    "Scenario",
    "Address",
    "TrafficKind",
]
