"""Exception hierarchy for the Zmail reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing subsystem-specific conditions.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "LedgerError",
    "InsufficientBalance",
    "InsufficientFunds",
    "UnknownUser",
    "UnknownISP",
    "DailyLimitExceeded",
    "ProtocolError",
    "ReplayDetected",
    "SnapshotInProgress",
    "NotCompliant",
    "CryptoError",
    "DecryptionError",
    "KeyError_",
    "SMTPError",
    "SMTPProtocolError",
    "SMTPTemporaryError",
    "SMTPPermanentError",
    "SimulationError",
    "APNError",
    "GuardError",
    "ChannelClosed",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


# --------------------------------------------------------------------------
# Ledger / accounting errors
# --------------------------------------------------------------------------


class LedgerError(ReproError):
    """Base class for accounting failures in the e-penny ledger."""


class InsufficientBalance(LedgerError):
    """A user tried to spend more e-pennies than their balance holds."""


class InsufficientFunds(LedgerError):
    """A user or ISP tried to spend more real pennies than their account holds."""


class UnknownUser(LedgerError):
    """An operation referenced a user id that the ISP does not manage."""


class UnknownISP(LedgerError):
    """An operation referenced an ISP id outside the configured universe."""


class DailyLimitExceeded(LedgerError):
    """A user hit their daily outgoing-mail limit (zombie containment)."""


# --------------------------------------------------------------------------
# Protocol errors
# --------------------------------------------------------------------------


class ProtocolError(ReproError):
    """Base class for Zmail protocol violations."""


class ReplayDetected(ProtocolError):
    """A nonce or sequence number was reused; the message is a replay."""


class SnapshotInProgress(ProtocolError):
    """Sending is paused while a credit-array snapshot is being taken."""


class NotCompliant(ProtocolError):
    """A compliant-only operation was attempted by a non-compliant ISP."""


# --------------------------------------------------------------------------
# Crypto errors
# --------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for failures in the toy crypto substrate."""


class DecryptionError(CryptoError):
    """Ciphertext failed to decrypt (wrong key or corrupted payload)."""


class KeyError_(CryptoError):
    """A key is malformed or of the wrong type for the operation."""


# --------------------------------------------------------------------------
# SMTP errors
# --------------------------------------------------------------------------


class SMTPError(ReproError):
    """Base class for the SMTP substrate."""


class SMTPProtocolError(SMTPError):
    """The peer violated the SMTP command/reply grammar."""


class SMTPTemporaryError(SMTPError):
    """A 4xx reply: the operation failed but may be retried."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"{code} {message}")
        self.code = code
        self.message = message


class SMTPPermanentError(SMTPError):
    """A 5xx reply: the operation failed permanently."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"{code} {message}")
        self.code = code
        self.message = message


# --------------------------------------------------------------------------
# Simulation / APN errors
# --------------------------------------------------------------------------


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class APNError(ReproError):
    """Base class for the Abstract Protocol notation engine."""


class GuardError(APNError):
    """An action guard raised or returned a non-boolean value."""


class ChannelClosed(APNError):
    """A send or receive was attempted on a closed channel."""
