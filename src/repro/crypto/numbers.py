"""Number-theoretic primitives for the toy RSA implementation.

Everything is written from scratch on Python integers: deterministic
Miller–Rabin primality testing, prime generation, extended Euclid and
modular inverse. Key sizes in this library are simulation-grade (512-bit
default); see the package docstring for the security caveat.
"""

from __future__ import annotations

import random

__all__ = [
    "egcd",
    "modinv",
    "is_probable_prime",
    "generate_prime",
    "MILLER_RABIN_ROUNDS",
]

MILLER_RABIN_ROUNDS = 40

# Small primes used for cheap trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


def modinv(a: int, m: int) -> int:
    """The inverse of ``a`` modulo ``m``.

    Raises:
        ValueError: if ``a`` and ``m`` are not coprime.
    """
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m} (gcd={g})")
    return x % m


def is_probable_prime(n: int, *, rng: random.Random | None = None) -> bool:
    """Miller–Rabin primality test with :data:`MILLER_RABIN_ROUNDS` rounds.

    For the sizes used here the error probability is below 2**-80, far
    beyond what a simulation needs.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random.Random(0xC0FFEE ^ n)

    # Write n - 1 = 2^s * d with d odd.
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1

    for _ in range(MILLER_RABIN_ROUNDS):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random probable prime with exactly ``bits`` bits.

    The top two bits are forced to 1 so the product of two such primes has
    exactly ``2 * bits`` bits (standard RSA keygen trick).
    """
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate
