"""Toy public-key crypto substrate for the Zmail spec.

Implements the paper's three operators:

* ``NCR(k, d)`` — encryption (:func:`ncr` / :func:`ncr_object`)
* ``DCR(k, d)`` — decryption (:func:`dcr` / :func:`dcr_object`)
* ``NNC`` — nonce generation (:class:`NonceSource`)

Everything is built from scratch (Miller–Rabin, modular arithmetic,
schoolbook RSA with light padding). It is **simulation-grade**: adequate to
exercise the protocol's confidentiality and replay-protection logic, and
explicitly not suitable for protecting real data.
"""

from .keys import KeyPair, PrivateKey, PublicKey
from .nonce import NONCE_BITS, NonceRegistry, NonceSource
from .numbers import egcd, generate_prime, is_probable_prime, modinv
from .rsa import dcr, dcr_object, generate_keypair, ncr, ncr_object

__all__ = [
    "PublicKey",
    "PrivateKey",
    "KeyPair",
    "NonceSource",
    "NonceRegistry",
    "NONCE_BITS",
    "egcd",
    "modinv",
    "is_probable_prime",
    "generate_prime",
    "generate_keypair",
    "ncr",
    "dcr",
    "ncr_object",
    "dcr_object",
]
