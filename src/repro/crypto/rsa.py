"""Schoolbook RSA implementing the paper's ``NCR``/``DCR`` operators.

The Zmail specification (Section 4.3) encrypts buy/sell requests and
replies under the bank's key pair: ``NCR(B_b, d)`` for requests the bank
decrypts with ``R_b``, and ``NCR(R_b, d)`` for replies anyone can check
with ``B_b`` (a signature-flavoured use). Because textbook RSA is symmetric
in ``(e, d)``, one primitive serves both directions here.

Payloads larger than one block are split into fixed-size chunks, each
padded with a random prefix byte and a length byte ("OAEP-lite") so equal
plaintexts do not produce equal ciphertexts. **This is simulation-grade
crypto**: it demonstrates the protocol's message flow and replay defence,
and must never be used to protect real data.
"""

from __future__ import annotations

import json
import random

from ..errors import DecryptionError
from .keys import KeyPair, PrivateKey, PublicKey
from .numbers import generate_prime, modinv

__all__ = ["generate_keypair", "ncr", "dcr", "ncr_object", "dcr_object"]

_DEFAULT_E = 65537
_PAD_OVERHEAD = 2  # one random byte + one length byte per block


def generate_keypair(bits: int = 512, *, seed: int | None = None) -> KeyPair:
    """Generate an RSA key pair with a ``bits``-bit modulus.

    Args:
        bits: Modulus size; must be at least 64 and even.
        seed: Optional seed for deterministic key generation in tests.
    """
    if bits < 64 or bits % 2:
        raise ValueError(f"modulus size must be even and >= 64, got {bits}")
    rng = random.Random(seed)
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % _DEFAULT_E == 0:
            continue
        d = modinv(_DEFAULT_E, phi)
        return KeyPair(PublicKey(n, _DEFAULT_E), PrivateKey(n, d))


def _key_parts(key: PublicKey | PrivateKey) -> tuple[int, int]:
    exponent = key.e if isinstance(key, PublicKey) else key.d
    return key.n, exponent


def ncr(key: PublicKey | PrivateKey, data: bytes, *, seed: int | None = None) -> bytes:
    """Encrypt ``data`` under ``key`` (the paper's ``NCR(k, d)``).

    The output is a sequence of fixed-size ciphertext blocks. A random
    prefix byte per block provides (weak) semantic masking; ``seed`` makes
    it deterministic for tests.
    """
    n, exponent = _key_parts(key)
    block_bytes = (n.bit_length() + 7) // 8
    chunk = block_bytes - 1 - _PAD_OVERHEAD  # keep the int below the modulus
    if chunk < 1:
        raise ValueError("modulus too small to carry any payload")
    rng = random.Random(seed)
    out = bytearray()
    pieces = [data[i : i + chunk] for i in range(0, len(data), chunk)] or [b""]
    for piece in pieces:
        padded = (
            bytes([rng.randrange(1, 256), len(piece)])
            + piece
            + b"\x00" * (chunk - len(piece))
        )
        m = int.from_bytes(padded, "big")
        c = pow(m, exponent, n)
        out += c.to_bytes(block_bytes, "big")
    return bytes(out)


def dcr(key: PublicKey | PrivateKey, data: bytes) -> bytes:
    """Decrypt ``data`` with ``key`` (the paper's ``DCR(k, d)``).

    Raises:
        DecryptionError: if the ciphertext length or padding is malformed,
            which is what a wrong key produces in practice.
    """
    n, exponent = _key_parts(key)
    block_bytes = (n.bit_length() + 7) // 8
    chunk = block_bytes - 1 - _PAD_OVERHEAD
    if len(data) == 0 or len(data) % block_bytes:
        raise DecryptionError(
            f"ciphertext length {len(data)} is not a multiple of {block_bytes}"
        )
    out = bytearray()
    for i in range(0, len(data), block_bytes):
        c = int.from_bytes(data[i : i + block_bytes], "big")
        if c >= n:
            raise DecryptionError("ciphertext block exceeds modulus")
        m = pow(c, exponent, n)
        if m >= 1 << (8 * (block_bytes - 1)):
            # A correct decryption always fits in block_bytes - 1 bytes; a
            # wrong key produces a near-uniform residue that usually won't.
            raise DecryptionError("bad padding (wrong key or corrupted data)")
        padded = m.to_bytes(block_bytes - 1, "big")
        prefix, length = padded[0], padded[1]
        if prefix == 0 or length > chunk:
            raise DecryptionError("bad padding (wrong key or corrupted data)")
        out += padded[2 : 2 + length]
    return bytes(out)


def ncr_object(
    key: PublicKey | PrivateKey, obj: object, *, seed: int | None = None
) -> bytes:
    """Encrypt any JSON-serialisable object (the spec encrypts tuples)."""
    return ncr(key, json.dumps(obj, separators=(",", ":")).encode("utf-8"), seed=seed)


def dcr_object(key: PublicKey | PrivateKey, data: bytes) -> object:
    """Decrypt and JSON-decode an object encrypted by :func:`ncr_object`."""
    plaintext = dcr(key, data)
    try:
        return json.loads(plaintext.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DecryptionError(f"decrypted payload is not valid JSON: {exc}") from exc
