"""Key objects for the toy public-key scheme.

The paper's notation uses ``B_b`` (the bank's public key) and ``R_b`` (its
private key); ``NCR(k, d)`` encrypts data ``d`` under key ``k`` and
``DCR(k, d)`` decrypts. These dataclasses carry the RSA parameters that
implement those operators.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PublicKey", "PrivateKey", "KeyPair"]


@dataclass(frozen=True)
class PublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def modulus_bytes(self) -> int:
        """Size of the modulus in whole bytes."""
        return (self.n.bit_length() + 7) // 8


@dataclass(frozen=True)
class PrivateKey:
    """An RSA private key ``(n, d)`` (CRT parameters omitted for clarity)."""

    n: int
    d: int

    @property
    def modulus_bytes(self) -> int:
        """Size of the modulus in whole bytes."""
        return (self.n.bit_length() + 7) // 8


@dataclass(frozen=True)
class KeyPair:
    """A matched public/private key pair."""

    public: PublicKey
    private: PrivateKey

    def __post_init__(self) -> None:
        if self.public.n != self.private.n:
            raise ValueError("public and private moduli differ")
