"""Lowering scenario documents onto every executor the library has.

:func:`compile_scenario` turns a validated document into a
:class:`ScenarioPlan` — a frozen view of the world that can emit, on
demand, each executor's native spec: a :class:`~repro.core.scenario
.Scenario` for the direct loop, the columnar batch executor and the
event engine; a :class:`~repro.cluster.runtime.ClusterConfig` for the
sharded runtime; and a one-cell chaos campaign for the fault-injecting
drive. One document, five drives, zero hand-rolled spec objects.

:func:`run_plan` executes a plan on a chosen drive and distils the run
into the **cross-executor invariant manifest**: the additive multiset of
ledger facts (``send``/``deliver``/``topup``/``bank.trade``, timestamps
and sequence numbers stripped — ``reconcile`` rows are excluded because
the cluster takes its cuts through snapshots and never emits them), the
``zmail`` metrics digest, and the accounting digest over every balance
in the cluster's shard-mergeable shape. For the same document these
bytes must be identical on ``direct``, ``columnar``, ``engine`` and
``cluster`` — that equality is the fuzzing oracle of
:mod:`repro.scenario.fuzz`. The chaos drive is the exception by design:
it injects faults and runs its own drained workload, so it reports a
campaign row instead of an invariant manifest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from ..core.config import NonCompliantMailPolicy, ZmailConfig
from ..core.scenario import Scenario, SpammerSpec, ZombieSpec
from ..errors import SimulationError
from ..obs.manifest import RunManifest, config_digest
from ..obs.metrics_export import MetricsExporter
from ..obs.trace import AdditiveMultisetDigest, DigestSink, TraceRecorder
from ..sim.network import LinkSpec
from ..sim.workload import Address, FloodSpec
from .schema import load, scenario_digest, validate

__all__ = [
    "PLAN_MODES",
    "INVARIANT_EVENT_TYPES",
    "ScenarioPlan",
    "compile_scenario",
    "run_plan",
]

#: Drives a plan can run on. The first four must agree byte-for-byte on
#: the invariant manifest; ``chaos`` reports a campaign row instead.
PLAN_MODES = ("direct", "columnar", "engine", "cluster", "chaos")

#: Ledger facts every executor must agree on. ``reconcile`` is absent on
#: purpose: cluster workers take §4.4 cuts via snapshot control messages
#: and never emit reconcile trace events, so including it would make the
#: oracle trivially red on every clustered run.
INVARIANT_EVENT_TYPES = frozenset({"send", "deliver", "topup", "bank.trade"})


@dataclass(frozen=True)
class ScenarioPlan:
    """A compiled scenario: canonical document + executor lowerings."""

    doc: dict[str, Any] = field(repr=False)
    digest: str
    # Lowering cache (strategies-docs only): the arena pilot match that
    # resolves a strategy pair into a concrete traffic schedule runs
    # once per plan, not once per executor. Excluded from equality so
    # two plans over the same document still compare equal.
    _cache: dict[str, Any] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def name(self) -> str:
        return self.doc["name"]

    @property
    def seed(self) -> int:
        return self.doc["seed"]

    @property
    def all_compliant(self) -> bool:
        return not self.doc["topology"]["noncompliant"]

    def config(self) -> ZmailConfig:
        economics = dict(self.doc["economics"])
        economics["noncompliant_policy"] = NonCompliantMailPolicy(
            economics["noncompliant_policy"]
        )
        return ZmailConfig(**economics)

    def compliant_flags(self) -> list[bool] | None:
        topo = self.doc["topology"]
        if not topo["noncompliant"]:
            return None
        bad = set(topo["noncompliant"])
        return [isp not in bad for isp in range(topo["n_isps"])]

    def lowered(self) -> "ScenarioPlan":
        """This plan with any ``strategies`` term resolved into traffic.

        Plain documents return ``self``. For strategies-docs (schema v2,
        ``strategies`` present) a pilot match on the direct reference
        path resolves the attacker/defender pair into its deterministic
        per-period send schedule, which is lowered to plain
        spammer/zombie traffic terms — so strategy worlds run on every
        executor through the ordinary plan machinery. The pilot runs at
        most once per plan (cached).
        """
        if self.doc.get("strategies") is None:
            return self
        cached = self._cache.get("lowered")
        if cached is None:
            from ..arena.lower import lower_plan

            cached = self._cache["lowered"] = lower_plan(self)
        return cached

    def scenario(self, mode: str = "direct") -> Scenario:
        """The document as a :class:`~repro.core.scenario.Scenario`.

        ``mode`` points the scenario at an executor: ``direct`` (also
        the base for the cluster's shard workers), ``columnar``, or
        ``engine`` (streaming engine over a zero-latency link, keeping
        every delivery inside the sender's epoch so invariant facts line
        up with the synchronous drives). Strategy worlds lower first
        (see :meth:`lowered`).
        """
        if self.doc.get("strategies") is not None:
            return self.lowered().scenario(mode)
        doc = self.doc
        topo, traffic = doc["topology"], doc["traffic"]
        scenario = Scenario(
            n_isps=topo["n_isps"],
            users_per_isp=topo["users_per_isp"],
            compliant=self.compliant_flags(),
            config=self.config(),
            seed=doc["seed"],
            duration=traffic["duration"],
            normal_rate_per_day=traffic["normal_rate_per_day"],
            spammers=[
                SpammerSpec(
                    address=Address(s["isp"], s["user"]),
                    volume=s["volume"],
                    war_chest=s["war_chest"],
                    start=s["start"],
                    duration=s["duration"],
                )
                for s in traffic["spammers"]
            ],
            zombies=[
                ZombieSpec(
                    address=Address(z["isp"], z["user"]),
                    rate_per_hour=z["rate_per_hour"],
                    start=z["start"],
                    end=z["end"],
                )
                for z in traffic["zombies"]
            ],
            floods=[
                FloodSpec(
                    attacker_isp=f["attacker_isp"],
                    target_isp=f["target_isp"],
                    rate_per_sec=f["rate_per_sec"],
                    start=f["start"],
                    duration=f["duration"],
                    attackers=f["attackers"],
                    kind=f["kind"],
                )
                for f in traffic["floods"]
            ],
            reconcile_every=doc["reconcile"]["every"],
        )
        if mode == "columnar":
            scenario.columnar = True
        elif mode == "engine":
            scenario.engine_mode = True
            scenario.link = LinkSpec(base_latency=0.0)
        elif mode != "direct":
            raise SimulationError(
                f"unknown scenario executor mode {mode!r}; expected "
                "'direct', 'columnar' or 'engine'"
            )
        return scenario

    def cluster_config(
        self,
        *,
        shards: int | None = None,
        lag: int | None = None,
        mode: str = "inline",
    ):
        """The document as a :class:`~repro.cluster.runtime.ClusterConfig`."""
        from ..cluster.runtime import ClusterConfig

        cluster = self.doc["cluster"]
        return ClusterConfig(
            scenario=self.scenario("direct"),
            n_shards=cluster["shards"] if shards is None else shards,
            epoch_len=cluster["epoch"],
            mode=mode,
            lag=cluster["lag"] if lag is None else lag,
        )

    def campaign(self) -> tuple[dict[str, Any], dict[str, Any]]:
        """The document as a one-cell chaos campaign ``(spec, cell)``.

        The cell's name defaults to the document name (override with
        ``chaos.cell``) and its seed derives exactly as
        :func:`repro.chaos.campaign.run_cell` derives it, so a document
        migrated from a hand-rolled campaign cell — same campaign seed,
        same cell name — reproduces that cell's report row byte for
        byte.
        """
        doc = self.doc
        deployment: dict[str, Any] = {
            "n_isps": doc["topology"]["n_isps"],
            "users_per_isp": doc["topology"]["users_per_isp"],
            "monitor_interval": doc["chaos"]["monitor_interval"],
            "reconcile_every": doc["reconcile"]["every"],
        }
        flags = self.compliant_flags()
        if flags is not None:
            deployment["compliant"] = flags
        deployment["config"] = self.config()
        overload = dict(doc["overload"])
        if overload.pop("enabled"):
            deployment["overload"] = overload
        spec = {
            "name": doc["name"],
            "seed": doc["seed"],
            "deployment": deployment,
            "workload": {
                "rate_per_day": doc["traffic"]["normal_rate_per_day"],
                "duration": doc["traffic"]["duration"],
            },
            "drain_window": doc["chaos"]["drain_window"],
        }
        cell = {
            "name": doc["chaos"]["cell"] or doc["name"],
            "faults": dict(doc["faults"]),
            "crashes": [dict(c) for c in doc["crashes"]],
            "floods": [dict(f) for f in doc["traffic"]["floods"]],
        }
        spec["cells"] = [cell]
        return spec, cell


def compile_scenario(source: dict[str, Any] | str) -> ScenarioPlan:
    """Compile a document (or a path to one) into a :class:`ScenarioPlan`."""
    doc = load(source) if isinstance(source, str) else validate(source)
    return ScenarioPlan(doc=doc, digest=scenario_digest(doc))


# -- invariant manifest ------------------------------------------------------


def _invariant_accounting(network) -> dict[str, Any]:
    """Every balance in the system, in the cluster's mergeable shape.

    Key-for-key the dict :meth:`repro.cluster.worker.ShardWorker
    ._final_outputs` builds and :func:`repro.cluster.runtime._merge`
    sums, so a single-process run digests identically to a merged
    cluster run. (``accounting_digest`` in :mod:`repro.obs.manifest`
    tracks in-flight letters too; quiesced cross-executor comparison
    needs the shard-mergeable subset.)
    """
    accounting: dict[str, Any] = {
        "isps": {},
        "bank_deposits": network.bank.total_deposits(),
        "external_deposit": network._external_deposit,
        "total_value": network.total_value(),
        "expected_total_value": network.expected_total_value(),
    }
    for isp_id, isp in sorted(network.compliant_isps().items()):
        accounting["isps"][str(isp_id)] = {
            "users": [
                [user.user_id, user.account, user.balance]
                for user in isp.ledger.users()
            ],
            "pool": isp.ledger.pool,
            "cash": isp.ledger.cash,
            "bank_account": network.bank.account_balance(isp_id),
        }
    return accounting


def _accounting_digest(accounting: dict[str, Any]) -> str:
    blob = json.dumps(accounting, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _manifest(
    plan: ScenarioPlan,
    *,
    ledger_count: int,
    ledger_digest: str,
    metrics_digest: str,
    accounting: dict[str, Any],
    sends_attempted: int,
    zombies_detected: int,
) -> RunManifest:
    doc = plan.doc
    conserved = accounting["total_value"] == accounting["expected_total_value"]
    return RunManifest(
        seed=plan.seed,
        config_digest=config_digest(plan.config()),
        event_count=ledger_count,
        event_digest=ledger_digest,
        metrics_digest=metrics_digest,
        extra={
            # Executor-invariant facts only: nothing here may depend on
            # which drive ran the world — these bytes are the fuzzing
            # oracle compared across direct/columnar/engine/cluster.
            "runtime": "scenario",
            "scenario": plan.name,
            "scenario_digest": plan.digest,
            "schema_version": doc["schema_version"],
            "n_isps": doc["topology"]["n_isps"],
            "users_per_isp": doc["topology"]["users_per_isp"],
            "duration": doc["traffic"]["duration"],
            "reconcile_every": doc["reconcile"]["every"],
            "sends_attempted": sends_attempted,
            "accounting_digest": _accounting_digest(accounting),
            "total_value": accounting["total_value"],
            "expected_total_value": accounting["expected_total_value"],
            "conserved": conserved,
            "zombies_detected": zombies_detected,
        },
    )


def _run_single(plan: ScenarioPlan, mode: str) -> dict[str, Any]:
    ledger_acc = AdditiveMultisetDigest(include_types=INVARIANT_EVENT_TYPES)
    recorder = TraceRecorder(sink=DigestSink(ledger_acc))
    scenario = plan.scenario(mode)
    scenario.tracer = recorder
    result = scenario.run()
    network = result.network
    exporter = MetricsExporter()
    exporter.add_static("zmail", network.metrics.snapshot()["counters"])
    accounting = _invariant_accounting(network)
    manifest = _manifest(
        plan,
        ledger_count=ledger_acc.count,
        ledger_digest=ledger_acc.digest(),
        metrics_digest=exporter.digest(),
        accounting=accounting,
        sends_attempted=result.sends_attempted,
        zombies_detected=len(result.zombie_detections),
    )
    return {
        "mode": mode,
        "manifest": manifest,
        "report": {
            **result.summary(),
            "cut_digests": list(result.cut_digests),
        },
    }


def _run_cluster(
    plan: ScenarioPlan,
    *,
    shards: int | None,
    lag: int | None,
    cluster_mode: str,
) -> dict[str, Any]:
    from ..cluster.runtime import run_cluster

    config = plan.cluster_config(shards=shards, lag=lag, mode=cluster_mode)
    result = run_cluster(config)
    extra = result.manifest.extra
    manifest = _manifest(
        plan,
        ledger_count=extra["ledger_event_count"],
        ledger_digest=extra["ledger_digest"],
        metrics_digest=result.manifest.metrics_digest,
        accounting=dict(result.accounting),
        sends_attempted=extra["sends_attempted"],
        zombies_detected=len(result.detections),
    )
    return {"mode": "cluster", "manifest": manifest, "report": result.report}


def _run_chaos(plan: ScenarioPlan) -> dict[str, Any]:
    from ..chaos.campaign import run_cell

    spec, cell = plan.campaign()
    row = run_cell(spec, cell, seed=plan.seed)
    return {"mode": "chaos", "manifest": None, "report": row}


def run_plan(
    plan: ScenarioPlan,
    mode: str = "direct",
    *,
    shards: int | None = None,
    lag: int | None = None,
    cluster_mode: str = "inline",
) -> dict[str, Any]:
    """Execute ``plan`` on one drive.

    Returns ``{"mode", "manifest", "report"}`` where ``manifest`` is the
    cross-executor invariant :class:`RunManifest` (``None`` for the
    chaos drive, which reports its campaign row instead).
    """
    if mode in ("direct", "columnar", "engine"):
        return _run_single(plan, mode)
    if mode == "cluster":
        return _run_cluster(
            plan, shards=shards, lag=lag, cluster_mode=cluster_mode
        )
    if mode == "chaos":
        return _run_chaos(plan)
    raise SimulationError(
        f"unknown plan mode {mode!r}; expected one of {PLAN_MODES}"
    )
