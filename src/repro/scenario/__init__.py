"""The scenario compiler: declarative worlds, one document per world.

A scenario document (JSON/YAML, ``schema_version``-pinned) composes
topology, economics, traffic (spam, zombies, floods), reconciliation
cadence, fault/crash schedules, overload profile and cluster layout into
one artifact. :func:`compile_scenario` lowers it to every executor the
library has; :func:`run_plan` executes it and emits the cross-executor
invariant manifest; :func:`generate_doc` samples random valid worlds
from a seed; :func:`run_fuzz` turns that into a differential fuzzing
campaign with shrinking. See DESIGN.md §14.
"""

from .compiler import (
    INVARIANT_EVENT_TYPES,
    PLAN_MODES,
    ScenarioPlan,
    compile_scenario,
    run_plan,
)
from .fuzz import (
    check_world,
    cluster_comparable,
    format_report,
    parse_replay,
    replay_world,
    run_fuzz,
    world_seed,
)
from .generate import generate_doc
from .schema import (
    SCHEMA_VERSION,
    canonical_dump,
    load,
    parse,
    scenario_digest,
    validate,
)
from .shrink import shrink, shrink_candidates

__all__ = [
    "SCHEMA_VERSION",
    "PLAN_MODES",
    "INVARIANT_EVENT_TYPES",
    "ScenarioPlan",
    "compile_scenario",
    "run_plan",
    "validate",
    "parse",
    "load",
    "canonical_dump",
    "scenario_digest",
    "generate_doc",
    "shrink",
    "shrink_candidates",
    "world_seed",
    "cluster_comparable",
    "check_world",
    "run_fuzz",
    "replay_world",
    "parse_replay",
    "format_report",
]
