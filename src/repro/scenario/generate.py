"""Seeded random-world sampling over the scenario schema.

:func:`generate_doc` maps one integer to one valid canonical scenario
document — same seed, same world, forever. The sampler is biased toward
worlds that finish in well under a second (small topologies, light
rates) while still crossing every interesting boundary: spam campaigns,
zombie outbreaks, cross-ISP floods, non-compliant ISPs, reconciliation
cadences and multi-shard cluster layouts. Durations are sampled in
multiples of six hours and epochs from divisors of six hours, so every
generated world tiles cleanly under any shard count (the schema's
cluster cross-check can never fire on a generated world — tested).

Draw discipline: one ``random.Random`` per world, seeded from the world
seed alone. Samplers draw in a fixed order, so adding a new dimension at
the end changes no existing world's prefix draws gratuitously; changing
anything earlier is a schema-visible event (pinned by test).
"""

from __future__ import annotations

import random
from typing import Any

from ..sim.clock import HOUR
from .schema import validate

__all__ = ["generate_doc"]

#: Durations (in hours) every generated world draws from. All multiples
#: of 6h, so any epoch drawn from _EPOCH_HOURS tiles them and the day.
_DURATION_HOURS = (6, 12, 18, 24, 36, 48)
_EPOCH_HOURS = (1, 2, 3, 6)
_RECONCILE_HOURS = (6, 12, 24)


def generate_doc(seed: int) -> dict[str, Any]:
    """One valid canonical scenario document per seed, deterministically."""
    rng = random.Random(seed)
    n_isps = rng.randint(2, 5)
    users_per_isp = rng.randint(2, 8)
    duration_hours = rng.choice(_DURATION_HOURS)
    duration = duration_hours * HOUR

    doc: dict[str, Any] = {
        "schema_version": 1,
        "name": f"fuzz-{seed}",
        "seed": rng.randrange(1 << 16),
        "topology": {"n_isps": n_isps, "users_per_isp": users_per_isp},
        "traffic": {
            "duration": duration,
            "normal_rate_per_day": round(rng.uniform(2.0, 30.0), 1),
        },
    }

    # One ISP in five runs non-compliant (only when a compliant majority
    # remains): exercises the §5 incremental-deployment boundary. The
    # columnar executor refuses these worlds by design, so the fuzzer
    # drops it from the executor matrix for them.
    if n_isps >= 3 and rng.random() < 0.2:
        doc["topology"]["noncompliant"] = [rng.randrange(n_isps)]

    # Most worlds carry *credit slack*: every user starts with enough
    # e-pennies to pay for a full run of limit-capped sending, so no
    # balance ever binds and the ledger multiset is independent of
    # delivery timing — the precondition for byte-equality against the
    # epoch-barriered cluster (see fuzz.cluster_comparable). The rest
    # are tight-balance worlds that exercise the paper's exhaustion
    # economics on the instant-delivery executors only.
    daily_limit = rng.randint(30, 300) if rng.random() < 0.4 else 200
    slack_days = duration_hours // 24 + 2
    if rng.random() < 0.7:
        balance = daily_limit * slack_days
    else:
        balance = rng.randint(20, 150)
    doc["economics"] = {
        "default_daily_limit": daily_limit,
        "default_user_balance": balance,
        "auto_topup_amount": rng.choice((0, 50)),
    }

    spammers = []
    for _ in range(rng.randint(0, 2)):
        start_h = rng.randrange(duration_hours // 2 + 1)
        spammers.append({
            "isp": rng.randrange(n_isps),
            "user": rng.randrange(users_per_isp),
            "volume": rng.randint(50, 400),
            "war_chest": rng.choice((0, 20, 60)),
            "start": start_h * HOUR,
            "duration": rng.randint(1, duration_hours - start_h) * HOUR,
        })
    if spammers:
        doc["traffic"]["spammers"] = spammers

    zombies = []
    for _ in range(rng.randint(0, 2)):
        start_h = rng.randrange(duration_hours - 1)
        zombies.append({
            "isp": rng.randrange(n_isps),
            "user": rng.randrange(users_per_isp),
            "rate_per_hour": round(rng.uniform(30.0, 240.0), 1),
            "start": start_h * HOUR,
            "end": rng.randint(start_h + 1, duration_hours) * HOUR,
        })
    if zombies:
        doc["traffic"]["zombies"] = zombies

    floods = []
    for _ in range(rng.randint(0, 2)):
        attacker = rng.randrange(n_isps)
        target = rng.randrange(n_isps - 1)
        if target >= attacker:
            target += 1
        start_h = rng.randrange(duration_hours - 1)
        floods.append({
            "attacker_isp": attacker,
            "target_isp": target,
            "rate_per_sec": round(rng.uniform(0.5, 6.0), 2),
            "start": start_h * HOUR,
            "duration": rng.randint(1, min(4, duration_hours - start_h)) * HOUR,
            "attackers": rng.randint(1, 6),
            "kind": rng.choice(("zombie", "zombie", "spam", "normal")),
        })
    if floods:
        doc["traffic"]["floods"] = floods

    if rng.random() < 0.8:
        choices = [h for h in _RECONCILE_HOURS if h <= duration_hours]
        doc["reconcile"] = {"every": rng.choice(choices) * HOUR}

    doc["cluster"] = {
        "shards": rng.randint(1, min(3, n_isps)),
        "epoch": rng.choice(_EPOCH_HOURS) * HOUR,
        "lag": 0,
    }
    return validate(doc)
