"""The versioned scenario schema: one document describing a whole world.

A scenario document is plain data (JSON, or YAML when available) with a
``schema_version`` pin and a fixed set of sections — topology, economics,
traffic (spammers, zombies, floods), reconciliation cadence, fault
schedule, overload profile, chaos-drive parameters and cluster layout.
:func:`validate` normalizes a document into its canonical fully-defaulted
form and rejects everything else **loudly**: unknown keys at any level,
a missing or unsupported ``schema_version``, out-of-range addresses,
type mismatches and cluster layouts whose epochs cannot tile the run are
all :class:`~repro.errors.SimulationError`\\ s naming the offending path.
Silence is the one failure mode a fuzzing surface cannot afford.

Canonical form is the schema's fixed point: :func:`canonical_dump`
serializes a validated document with sorted keys and every default
materialized, and parsing that dump validates back to the identical
document (property-tested). :func:`scenario_digest` hashes those
canonical bytes, giving every world a stable identity that run manifests
pin, so a manifest names exactly which world produced it.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..core.config import NonCompliantMailPolicy
from ..errors import SimulationError
from ..sim.clock import DAY, HOUR

__all__ = [
    "SCHEMA_VERSION",
    "validate",
    "parse",
    "load",
    "canonical_dump",
    "scenario_digest",
]

#: Bumped when sections, keys, or their meaning change.
SCHEMA_VERSION = 1

_POLICIES = tuple(p.value for p in NonCompliantMailPolicy)
_TRAFFIC_KINDS = ("normal", "spam", "zombie")

# Every known key with (default, validator). A validator returns the
# normalized value or raises ValueError with a human reason; the walker
# wraps that into a SimulationError naming the full document path.


def _int(minimum=None, maximum=None):
    def check(value):
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"expected an integer, got {value!r}")
        if minimum is not None and value < minimum:
            raise ValueError(f"must be >= {minimum}, got {value}")
        if maximum is not None and value > maximum:
            raise ValueError(f"must be <= {maximum}, got {value}")
        return value

    return check


def _number(minimum=None, *, exclusive=False):
    def check(value):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"expected a number, got {value!r}")
        value = float(value)
        if minimum is not None:
            if exclusive and value <= minimum:
                raise ValueError(f"must be > {minimum}, got {value}")
            if not exclusive and value < minimum:
                raise ValueError(f"must be >= {minimum}, got {value}")
        return value

    return check


def _rate():
    def check(value):
        value = _number(0.0)(value)
        if value > 1.0:
            raise ValueError(f"must be a probability in [0, 1], got {value}")
        return value

    return check


def _string(choices=None):
    def check(value):
        if not isinstance(value, str):
            raise ValueError(f"expected a string, got {value!r}")
        if choices is not None and value not in choices:
            raise ValueError(f"must be one of {sorted(choices)}, got {value!r}")
        return value

    return check


def _bool(value):
    if not isinstance(value, bool):
        raise ValueError(f"expected a boolean, got {value!r}")
    return value


def _int_list(value):
    if not isinstance(value, list) or any(
        isinstance(item, bool) or not isinstance(item, int) for item in value
    ):
        raise ValueError(f"expected a list of integers, got {value!r}")
    return list(value)


#: section -> key -> (default, validator). Defaults mirror the library's
#: own (core Scenario / ZmailConfig / OverloadConfig / campaign) defaults
#: so an empty section means "what the code would have done anyway".
_SECTIONS: dict[str, dict[str, tuple[Any, Any]]] = {
    "topology": {
        "n_isps": (3, _int(1)),
        "users_per_isp": (10, _int(1)),
        "noncompliant": ([], _int_list),
    },
    "economics": {
        "default_daily_limit": (200, _int(0)),
        "default_user_balance": (100, _int(0)),
        "default_user_account": (500, _int(0)),
        "initial_pool": (10_000, _int(0)),
        "minavail": (2_000, _int(0)),
        "maxavail": (50_000, _int(0)),
        "initial_bank_account": (1_000_000, _int(0)),
        "snapshot_quiesce_seconds": (600.0, _number(0.0)),
        "reconciliation_period": (30 * DAY, _number(0.0, exclusive=True)),
        "noncompliant_policy": ("deliver", _string(_POLICIES)),
        "auto_topup_amount": (50, _int(0)),
        "use_crypto": (False, _bool),
    },
    "traffic": {
        "duration": (5 * DAY, _number(0.0, exclusive=True)),
        "normal_rate_per_day": (8.0, _number(0.0)),
        "spammers": ([], None),  # validated per-item below
        "zombies": ([], None),
        "floods": ([], None),
    },
    "reconcile": {
        "every": (0.0, _number(0.0)),
    },
    "faults": {
        "drop_rate": (0.0, _rate()),
        "duplicate_rate": (0.0, _rate()),
        "reorder_rate": (0.0, _rate()),
        "reorder_delay": (2.0, _number(0.0)),
        "extra_delay": (0.0, _number(0.0)),
    },
    "overload": {
        # Off by default: ``enabled: false`` means the deployment runs
        # with no admission layer at all, which is NOT the same as an
        # admission layer with default knobs.
        "enabled": (False, _bool),
        "admit_rate": (50.0, _number(0.0, exclusive=True)),
        "admit_burst": (100, _int(1)),
        "queue_capacity": (512, _int(0)),
        "retry_base": (2.0, _number(0.0, exclusive=True)),
        "retry_backoff": (2.0, _number(1.0)),
        "retry_max_interval": (120.0, _number(0.0, exclusive=True)),
        "max_retries": (4, _int(0)),
        "shed_audit_cap": (256, _int(1)),
        "breaker_failure_threshold": (3, _int(1)),
        "breaker_reset_timeout": (30.0, _number(0.0, exclusive=True)),
        "breaker_backlog_limit": (256, _int(1)),
    },
    "chaos": {
        "cell": (None, None),  # defaults to the document name
        "drain_window": (900.0, _number(0.0, exclusive=True)),
        "monitor_interval": (5.0, _number(0.0, exclusive=True)),
    },
    "cluster": {
        "shards": (1, _int(1)),
        "epoch": (HOUR, _number(0.0, exclusive=True)),
        "lag": (0, _int(0)),
    },
}

#: Item schema for the top-level ``crashes`` list (chaos drive only).
_CRASH_SCHEMA: dict[str, tuple[Any, Any]] = {
    "node": (None, _string()),
    "at": (None, _number(0.0)),
    "down_for": (None, _number(0.0, exclusive=True)),
}

_ITEM_SCHEMAS: dict[str, dict[str, tuple[Any, Any]]] = {
    "spammers": {
        "isp": (None, _int(0)),
        "user": (0, _int(0)),
        "volume": (None, _int(1)),
        "war_chest": (0, _int(0)),
        "start": (0.0, _number(0.0)),
        "duration": (DAY, _number(0.0, exclusive=True)),
    },
    "zombies": {
        "isp": (None, _int(0)),
        "user": (0, _int(0)),
        "rate_per_hour": (None, _number(0.0, exclusive=True)),
        "start": (None, _number(0.0)),
        "end": (None, _number(0.0, exclusive=True)),
    },
    "floods": {
        "attacker_isp": (None, _int(0)),
        "target_isp": (None, _int(0)),
        "rate_per_sec": (None, _number(0.0, exclusive=True)),
        "start": (0.0, _number(0.0)),
        "duration": (60.0, _number(0.0, exclusive=True)),
        "attackers": (4, _int(1)),
        "kind": ("zombie", _string(_TRAFFIC_KINDS)),
    },
}


def _check(path: str, value, validator):
    try:
        return validator(value)
    except ValueError as exc:
        raise SimulationError(f"scenario {path}: {exc}") from None


def _walk_section(name: str, section, schema) -> dict[str, Any]:
    if not isinstance(section, dict):
        raise SimulationError(f"scenario {name}: expected a mapping")
    unknown = sorted(set(section) - set(schema))
    if unknown:
        raise SimulationError(
            f"scenario {name}: unknown keys {unknown}; "
            f"known keys are {sorted(schema)}"
        )
    out: dict[str, Any] = {}
    for key, (default, validator) in schema.items():
        if key in section:
            value = section[key]
            out[key] = (
                _check(f"{name}.{key}", value, validator) if validator else value
            )
        else:
            if default is None and validator is not None:
                raise SimulationError(f"scenario {name}.{key}: required")
            out[key] = default
    return out


def _walk_items(name: str, items) -> list[dict[str, Any]]:
    if not isinstance(items, list):
        raise SimulationError(f"scenario traffic.{name}: expected a list")
    return [
        _walk_section(f"traffic.{name}[{i}]", item, _ITEM_SCHEMAS[name])
        for i, item in enumerate(items)
    ]


def validate(doc: dict[str, Any]) -> dict[str, Any]:
    """Normalize ``doc`` to canonical form, or raise loudly.

    Returns a new document with every section present, every default
    materialized, and every value type-normalized. Never mutates ``doc``.
    """
    if not isinstance(doc, dict):
        raise SimulationError("scenario document must be a mapping")
    version = doc.get("schema_version")
    if version is None:
        raise SimulationError(
            "scenario document has no schema_version; "
            f"this library speaks version {SCHEMA_VERSION}"
        )
    if version != SCHEMA_VERSION:
        raise SimulationError(
            f"scenario schema_version {version!r} is not supported; "
            f"this library speaks version {SCHEMA_VERSION}"
        )
    known_top = {"schema_version", "name", "seed", "crashes", *_SECTIONS}
    unknown = sorted(set(doc) - known_top)
    if unknown:
        raise SimulationError(
            f"scenario document: unknown keys {unknown}; "
            f"known keys are {sorted(known_top)}"
        )
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        raise SimulationError("scenario name: required non-empty string")
    out: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "seed": _check("seed", doc.get("seed", 0), _int()),
    }
    for section, schema in _SECTIONS.items():
        out[section] = _walk_section(section, doc.get(section, {}), schema)
    for kind in _ITEM_SCHEMAS:
        out["traffic"][kind] = _walk_items(kind, out["traffic"][kind])
    crashes = doc.get("crashes", [])
    if not isinstance(crashes, list):
        raise SimulationError("scenario crashes: expected a list")
    out["crashes"] = [
        _walk_section(f"crashes[{i}]", crash, _CRASH_SCHEMA)
        for i, crash in enumerate(crashes)
    ]
    if out["chaos"]["cell"] is not None and (
        not isinstance(out["chaos"]["cell"], str) or not out["chaos"]["cell"]
    ):
        raise SimulationError("scenario chaos.cell: expected a non-empty string")
    _cross_validate(out)
    return out


def _cross_validate(doc: dict[str, Any]) -> None:
    """Rules that span sections: address ranges, flood shape, epochs."""
    topo = doc["topology"]
    n_isps, users = topo["n_isps"], topo["users_per_isp"]
    for isp in topo["noncompliant"]:
        if not 0 <= isp < n_isps:
            raise SimulationError(
                f"scenario topology.noncompliant: ISP {isp} outside "
                f"[0, {n_isps})"
            )
    if len(set(topo["noncompliant"])) != len(topo["noncompliant"]):
        raise SimulationError(
            "scenario topology.noncompliant: duplicate ISP ids"
        )
    economics = doc["economics"]
    if economics["minavail"] > economics["maxavail"]:
        raise SimulationError(
            "scenario economics: minavail exceeds maxavail"
        )
    traffic = doc["traffic"]
    duration = traffic["duration"]
    for i, spec in enumerate(traffic["spammers"]):
        _check_address(f"traffic.spammers[{i}]", spec["isp"], spec["user"],
                       n_isps, users)
    for i, spec in enumerate(traffic["zombies"]):
        _check_address(f"traffic.zombies[{i}]", spec["isp"], spec["user"],
                       n_isps, users)
        if spec["end"] <= spec["start"]:
            raise SimulationError(
                f"scenario traffic.zombies[{i}]: end must exceed start"
            )
    for i, spec in enumerate(traffic["floods"]):
        for side in ("attacker_isp", "target_isp"):
            if not 0 <= spec[side] < n_isps:
                raise SimulationError(
                    f"scenario traffic.floods[{i}].{side}: ISP "
                    f"{spec[side]} outside [0, {n_isps})"
                )
        if spec["attacker_isp"] == spec["target_isp"]:
            raise SimulationError(
                f"scenario traffic.floods[{i}]: attacker and target "
                "must be different ISPs"
            )
    for i, crash in enumerate(doc["crashes"]):
        node = crash["node"]
        valid = node == "bank" or (
            node.startswith("isp")
            and node[3:].isdigit()
            and int(node[3:]) < n_isps
        )
        if not valid:
            raise SimulationError(
                f"scenario crashes[{i}].node: {node!r} is neither 'bank' "
                f"nor 'isp0'..'isp{n_isps - 1}'"
            )
    cluster = doc["cluster"]
    if cluster["shards"] > n_isps:
        raise SimulationError(
            f"scenario cluster.shards: {cluster['shards']} shards cannot "
            f"partition {n_isps} ISPs"
        )
    if cluster["shards"] > 1:
        epoch = cluster["epoch"]
        for label, period in (
            ("traffic.duration", duration),
            ("one day (midnight processing)", DAY),
            ("reconcile.every", doc["reconcile"]["every"]),
        ):
            if period > 0 and round(period / epoch) * epoch != period:
                raise SimulationError(
                    f"scenario cluster.epoch {epoch} does not tile "
                    f"{label} ({period}); shards would cut mid-boundary"
                )


def _check_address(path, isp, user, n_isps, users_per_isp):
    if not 0 <= isp < n_isps:
        raise SimulationError(
            f"scenario {path}.isp: ISP {isp} outside [0, {n_isps})"
        )
    if not 0 <= user < users_per_isp:
        raise SimulationError(
            f"scenario {path}.user: user {user} outside [0, {users_per_isp})"
        )


def parse(text: str, *, source: str = "<string>") -> dict[str, Any]:
    """Parse JSON (preferred) or YAML text into a canonical document."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as json_err:
        try:
            import yaml
        except ImportError:  # pragma: no cover - yaml is normally present
            raise SimulationError(
                f"{source}: not valid JSON ({json_err}) and PyYAML is "
                "unavailable"
            ) from json_err
        try:
            doc = yaml.safe_load(text)
        except yaml.YAMLError as yaml_err:
            raise SimulationError(
                f"{source}: parses as neither JSON ({json_err}) nor YAML "
                f"({yaml_err})"
            ) from yaml_err
    if not isinstance(doc, dict):
        raise SimulationError(f"{source}: scenario document must be a mapping")
    return validate(doc)


def load(path: str) -> dict[str, Any]:
    """Load and validate a scenario file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse(handle.read(), source=path)


def canonical_dump(doc: dict[str, Any]) -> str:
    """The canonical bytes of a validated document (ends with a newline).

    Sorted keys, two-space indent, every default materialized — the form
    committed under ``examples/scenarios/`` and hashed by
    :func:`scenario_digest`. ``parse(canonical_dump(d))`` is ``d`` for
    any validated ``d`` (property-tested round-trip identity).
    """
    return json.dumps(validate(doc), sort_keys=True, indent=2) + "\n"


def scenario_digest(doc: dict[str, Any]) -> str:
    """SHA-256 over the canonical document bytes — the world's identity."""
    canonical = json.dumps(
        validate(doc), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
