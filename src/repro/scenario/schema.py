"""The versioned scenario schema: one document describing a whole world.

A scenario document is plain data (JSON, or YAML when available) with a
``schema_version`` pin and a fixed set of sections — topology, economics,
traffic (spammers, zombies, floods), reconciliation cadence, fault
schedule, overload profile, chaos-drive parameters and cluster layout.
:func:`validate` normalizes a document into its canonical fully-defaulted
form and rejects everything else **loudly**: unknown keys at any level,
a missing or unsupported ``schema_version``, out-of-range addresses,
type mismatches and cluster layouts whose epochs cannot tile the run are
all :class:`~repro.errors.SimulationError`\\ s naming the offending path.
Silence is the one failure mode a fuzzing surface cannot afford.

Canonical form is the schema's fixed point: :func:`canonical_dump`
serializes a validated document with sorted keys and every default
materialized, and parsing that dump validates back to the identical
document (property-tested). :func:`scenario_digest` hashes those
canonical bytes, giving every world a stable identity that run manifests
pin, so a manifest names exactly which world produced it.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..core.config import NonCompliantMailPolicy
from ..errors import SimulationError
from ..sim.clock import DAY, HOUR

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_VERSIONS",
    "ATTACKER_STRATEGIES",
    "DEFENDER_STRATEGIES",
    "validate",
    "parse",
    "load",
    "canonical_dump",
    "scenario_digest",
]

#: Bumped when sections, keys, or their meaning change. Version 2 adds
#: the optional ``strategies`` term (the arena's attacker/defender/market
#: triple); everything a version-1 document can say means the same thing
#: in version 2, and a version-1 document's canonical form is unchanged
#: (no ``strategies`` key is materialized into it).
SCHEMA_VERSION = 2

#: Every version this library still validates and runs.
SUPPORTED_VERSIONS = (1, 2)

_POLICIES = tuple(p.value for p in NonCompliantMailPolicy)
_TRAFFIC_KINDS = ("normal", "spam", "zombie")

# Every known key with (default, validator). A validator returns the
# normalized value or raises ValueError with a human reason; the walker
# wraps that into a SimulationError naming the full document path.


def _int(minimum=None, maximum=None):
    def check(value):
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"expected an integer, got {value!r}")
        if minimum is not None and value < minimum:
            raise ValueError(f"must be >= {minimum}, got {value}")
        if maximum is not None and value > maximum:
            raise ValueError(f"must be <= {maximum}, got {value}")
        return value

    return check


def _number(minimum=None, *, exclusive=False):
    def check(value):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"expected a number, got {value!r}")
        value = float(value)
        if minimum is not None:
            if exclusive and value <= minimum:
                raise ValueError(f"must be > {minimum}, got {value}")
            if not exclusive and value < minimum:
                raise ValueError(f"must be >= {minimum}, got {value}")
        return value

    return check


def _rate():
    def check(value):
        value = _number(0.0)(value)
        if value > 1.0:
            raise ValueError(f"must be a probability in [0, 1], got {value}")
        return value

    return check


def _string(choices=None):
    def check(value):
        if not isinstance(value, str):
            raise ValueError(f"expected a string, got {value!r}")
        if choices is not None and value not in choices:
            raise ValueError(f"must be one of {sorted(choices)}, got {value!r}")
        return value

    return check


def _bool(value):
    if not isinstance(value, bool):
        raise ValueError(f"expected a boolean, got {value!r}")
    return value


def _int_list(value):
    if not isinstance(value, list) or any(
        isinstance(item, bool) or not isinstance(item, int) for item in value
    ):
        raise ValueError(f"expected a list of integers, got {value!r}")
    return list(value)


#: section -> key -> (default, validator). Defaults mirror the library's
#: own (core Scenario / ZmailConfig / OverloadConfig / campaign) defaults
#: so an empty section means "what the code would have done anyway".
_SECTIONS: dict[str, dict[str, tuple[Any, Any]]] = {
    "topology": {
        "n_isps": (3, _int(1)),
        "users_per_isp": (10, _int(1)),
        "noncompliant": ([], _int_list),
    },
    "economics": {
        "default_daily_limit": (200, _int(0)),
        "default_user_balance": (100, _int(0)),
        "default_user_account": (500, _int(0)),
        "initial_pool": (10_000, _int(0)),
        "minavail": (2_000, _int(0)),
        "maxavail": (50_000, _int(0)),
        "initial_bank_account": (1_000_000, _int(0)),
        "snapshot_quiesce_seconds": (600.0, _number(0.0)),
        "reconciliation_period": (30 * DAY, _number(0.0, exclusive=True)),
        "noncompliant_policy": ("deliver", _string(_POLICIES)),
        "auto_topup_amount": (50, _int(0)),
        "use_crypto": (False, _bool),
    },
    "traffic": {
        "duration": (5 * DAY, _number(0.0, exclusive=True)),
        "normal_rate_per_day": (8.0, _number(0.0)),
        "spammers": ([], None),  # validated per-item below
        "zombies": ([], None),
        "floods": ([], None),
    },
    "reconcile": {
        "every": (0.0, _number(0.0)),
    },
    "faults": {
        "drop_rate": (0.0, _rate()),
        "duplicate_rate": (0.0, _rate()),
        "reorder_rate": (0.0, _rate()),
        "reorder_delay": (2.0, _number(0.0)),
        "extra_delay": (0.0, _number(0.0)),
    },
    "overload": {
        # Off by default: ``enabled: false`` means the deployment runs
        # with no admission layer at all, which is NOT the same as an
        # admission layer with default knobs.
        "enabled": (False, _bool),
        "admit_rate": (50.0, _number(0.0, exclusive=True)),
        "admit_burst": (100, _int(1)),
        "queue_capacity": (512, _int(0)),
        "retry_base": (2.0, _number(0.0, exclusive=True)),
        "retry_backoff": (2.0, _number(1.0)),
        "retry_max_interval": (120.0, _number(0.0, exclusive=True)),
        "max_retries": (4, _int(0)),
        "shed_audit_cap": (256, _int(1)),
        "breaker_failure_threshold": (3, _int(1)),
        "breaker_reset_timeout": (30.0, _number(0.0, exclusive=True)),
        "breaker_backlog_limit": (256, _int(1)),
    },
    "chaos": {
        "cell": (None, None),  # defaults to the document name
        "drain_window": (900.0, _number(0.0, exclusive=True)),
        "monitor_interval": (5.0, _number(0.0, exclusive=True)),
    },
    "cluster": {
        "shards": (1, _int(1)),
        "epoch": (HOUR, _number(0.0, exclusive=True)),
        "lag": (0, _int(0)),
    },
}

#: Item schema for the top-level ``crashes`` list (chaos drive only).
_CRASH_SCHEMA: dict[str, tuple[Any, Any]] = {
    "node": (None, _string()),
    "at": (None, _number(0.0)),
    "down_for": (None, _number(0.0, exclusive=True)),
}

_ITEM_SCHEMAS: dict[str, dict[str, tuple[Any, Any]]] = {
    "spammers": {
        "isp": (None, _int(0)),
        "user": (0, _int(0)),
        "volume": (None, _int(1)),
        "war_chest": (0, _int(0)),
        "start": (0.0, _number(0.0)),
        "duration": (DAY, _number(0.0, exclusive=True)),
    },
    "zombies": {
        "isp": (None, _int(0)),
        "user": (0, _int(0)),
        "rate_per_hour": (None, _number(0.0, exclusive=True)),
        "start": (None, _number(0.0)),
        "end": (None, _number(0.0, exclusive=True)),
    },
    "floods": {
        "attacker_isp": (None, _int(0)),
        "target_isp": (None, _int(0)),
        "rate_per_sec": (None, _number(0.0, exclusive=True)),
        "start": (0.0, _number(0.0)),
        "duration": (60.0, _number(0.0, exclusive=True)),
        "attackers": (4, _int(1)),
        "kind": ("zombie", _string(_TRAFFIC_KINDS)),
    },
}


# -- the v2 ``strategies`` term ---------------------------------------------
#
# The schema owns the strategy vocabulary: every attacker/defender name
# the arena implements, with its tunable parameters. ``repro.arena``
# registers an implementation for exactly these names (tested for
# parity), so a document naming a strategy is always runnable.

#: attacker name -> parameter schema (key -> (default, validator)).
ATTACKER_STRATEGIES: dict[str, dict[str, tuple[Any, Any]]] = {
    # Fixed-volume blaster: the PR-9-era static spammer as a strategy.
    "static": {
        "volume": (200, _int(1)),
    },
    # Multiplicative response-rate learner (AdaptiveSpammer's loop).
    "response_rate": {
        "volume": (200, _int(1)),
        "growth": (1.5, _number(1.0, exclusive=True)),
        "decay": (0.5, _number(0.0, exclusive=True)),
        "max_volume": (100_000, _int(1)),
    },
    # Rents compromised machines and drives them at full throttle; the
    # §4.1 limit + zombie monitor detect and disinfect the fleet.
    "zombie_fleet": {
        "fleet": (8, _int(1)),
        "per_machine": (0, _int(0)),  # 0 = push to the daily limit
    },
    # Sends below the detection threshold in bursts, idling between, to
    # starve the limit-warning signal the zombie monitor keys on.
    "burst_idle": {
        "fleet": (8, _int(1)),
        "burst_every": (2, _int(1)),
        "headroom": (16, _int(0)),
    },
    # Harvests the e-penny endowments of accounts at a colluding ISP by
    # washing their balances (paid sends) to a hub, then spams on the
    # harvested pennies instead of bought ones.
    "epenny_wash": {
        "colluding_isp": (-1, _int(-1)),  # -1 = highest-numbered ISP
        "volume": (200, _int(1)),
        "growth": (1.5, _number(1.0, exclusive=True)),
        "decay": (0.5, _number(0.0, exclusive=True)),
        "max_volume": (100_000, _int(1)),
        "headroom": (16, _int(0)),  # §4.1 stealth margin per account
    },
}

#: defender name -> parameter schema (key -> (default, validator)).
DEFENDER_STRATEGIES: dict[str, dict[str, tuple[Any, Any]]] = {
    # The paper's protocol exactly as configured; no reactive tuning.
    "zmail_static": {},
    # Tunes e-penny price and daily limits against observed spam share,
    # trading goodput (tight limits block legitimate mail) for control.
    "price_tuner": {
        "target_spam_share": (0.05, _number(0.0, exclusive=True)),
        "price_step": (2.0, _number(1.0, exclusive=True)),
        "max_price_multiplier": (16.0, _number(1.0)),
        "min_limit": (20, _int(1)),
        "limit_step": (2, _int(2)),
    },
    # Gardner-Stephen POW exchange: offers a proof-of-work route priced
    # in CPU-seconds, doubling difficulty while spam persists.
    "pow_exchange": {
        "base_seconds": (1.0, _number(0.0, exclusive=True)),
        "max_seconds": (64.0, _number(0.0, exclusive=True)),
        "target_spam_share": (0.05, _number(0.0, exclusive=True)),
    },
    # GridEmail-style priced priority classes: a capped bulk class at a
    # dollar price, delivered to the bulk folder (discounted responses).
    "priority_classes": {
        "bulk_price_dollars": (0.002, _number(0.0)),
        "bulk_cap": (2_000, _int(0)),
        "min_cap": (100, _int(0)),
    },
}

#: The ``strategies.market`` knobs: the dollar economy around the ledger.
_MARKET_SCHEMA: dict[str, tuple[Any, Any]] = {
    "conversion_rate": (0.0005, _rate()),
    "revenue_per_response": (25.0, _number(0.0)),
    "infra_cost_per_message": (0.0001, _number(0.0)),
    "epenny_dollars": (0.01, _number(0.0)),
    "cpu_second_dollars": (2e-05, _number(0.0)),
    "bulk_conversion_factor": (0.2, _rate()),
    # The underground economy the zombie strategies shop in: compromised
    # machines rent by the day, compromised *accounts* (with their
    # e-penny endowments) sell outright — zero-sum means washed pennies
    # were still bought by someone, and this is that price.
    "rent_per_machine_day": (0.05, _number(0.0)),
    "compromised_account_dollars": (1.0, _number(0.0)),
}


def _walk_strategy(path: str, spec, registry, extra_schema):
    """Validate one ``attacker``/``defender`` clause against the registry."""
    if not isinstance(spec, dict):
        raise SimulationError(f"scenario {path}: expected a mapping")
    name = spec.get("name")
    if name not in registry:
        raise SimulationError(
            f"scenario {path}.name: {name!r} is not a known strategy; "
            f"known strategies are {sorted(registry)}"
        )
    unknown = sorted(set(spec) - {"name", "params", *extra_schema})
    if unknown:
        raise SimulationError(
            f"scenario {path}: unknown keys {unknown}; known keys are "
            f"{sorted({'name', 'params', *extra_schema})}"
        )
    out: dict[str, Any] = {"name": name}
    for key, (default, validator) in extra_schema.items():
        value = spec.get(key, default)
        out[key] = _check(f"{path}.{key}", value, validator)
    out["params"] = _walk_section(
        f"{path}.params", spec.get("params", {}), registry[name]
    )
    return out


def _walk_strategies(section) -> dict[str, Any]:
    if not isinstance(section, dict):
        raise SimulationError("scenario strategies: expected a mapping")
    known = {"periods", "attacker", "defender", "market"}
    unknown = sorted(set(section) - known)
    if unknown:
        raise SimulationError(
            f"scenario strategies: unknown keys {unknown}; "
            f"known keys are {sorted(known)}"
        )
    for side in ("attacker", "defender"):
        if side not in section:
            raise SimulationError(f"scenario strategies.{side}: required")
    return {
        "periods": _check(
            "strategies.periods", section.get("periods", 10), _int(1)
        ),
        "attacker": _walk_strategy(
            "strategies.attacker",
            section["attacker"],
            ATTACKER_STRATEGIES,
            {"isp": (0, _int(0)), "user": (0, _int(0))},
        ),
        "defender": _walk_strategy(
            "strategies.defender", section["defender"], DEFENDER_STRATEGIES, {}
        ),
        "market": _walk_section(
            "strategies.market", section.get("market", {}), _MARKET_SCHEMA
        ),
    }


def _check(path: str, value, validator):
    try:
        return validator(value)
    except ValueError as exc:
        raise SimulationError(f"scenario {path}: {exc}") from None


def _walk_section(name: str, section, schema) -> dict[str, Any]:
    if not isinstance(section, dict):
        raise SimulationError(f"scenario {name}: expected a mapping")
    unknown = sorted(set(section) - set(schema))
    if unknown:
        raise SimulationError(
            f"scenario {name}: unknown keys {unknown}; "
            f"known keys are {sorted(schema)}"
        )
    out: dict[str, Any] = {}
    for key, (default, validator) in schema.items():
        if key in section:
            value = section[key]
            out[key] = (
                _check(f"{name}.{key}", value, validator) if validator else value
            )
        else:
            if default is None and validator is not None:
                raise SimulationError(f"scenario {name}.{key}: required")
            out[key] = default
    return out


def _walk_items(name: str, items) -> list[dict[str, Any]]:
    if not isinstance(items, list):
        raise SimulationError(f"scenario traffic.{name}: expected a list")
    return [
        _walk_section(f"traffic.{name}[{i}]", item, _ITEM_SCHEMAS[name])
        for i, item in enumerate(items)
    ]


def validate(doc: dict[str, Any]) -> dict[str, Any]:
    """Normalize ``doc`` to canonical form, or raise loudly.

    Returns a new document with every section present, every default
    materialized, and every value type-normalized. Never mutates ``doc``.
    """
    if not isinstance(doc, dict):
        raise SimulationError("scenario document must be a mapping")
    version = doc.get("schema_version")
    if version is None:
        raise SimulationError(
            "scenario document has no schema_version; "
            f"this library speaks versions {SUPPORTED_VERSIONS}"
        )
    if version not in SUPPORTED_VERSIONS:
        raise SimulationError(
            f"scenario schema_version {version!r} is not supported; "
            f"this library speaks versions {SUPPORTED_VERSIONS}"
        )
    known_top = {"schema_version", "name", "seed", "crashes", *_SECTIONS}
    if version >= 2:
        known_top.add("strategies")
    elif "strategies" in doc:
        raise SimulationError(
            "scenario strategies: requires schema_version 2 "
            f"(document declares {version})"
        )
    unknown = sorted(set(doc) - known_top)
    if unknown:
        raise SimulationError(
            f"scenario document: unknown keys {unknown}; "
            f"known keys are {sorted(known_top)}"
        )
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        raise SimulationError("scenario name: required non-empty string")
    # Canonical form preserves the declared version: a v1 document's
    # canonical bytes (and digest) are exactly what they were before the
    # ``strategies`` term existed.
    out: dict[str, Any] = {
        "schema_version": version,
        "name": name,
        "seed": _check("seed", doc.get("seed", 0), _int()),
    }
    if version >= 2:
        strategies = doc.get("strategies")
        out["strategies"] = (
            None if strategies is None else _walk_strategies(strategies)
        )
    for section, schema in _SECTIONS.items():
        out[section] = _walk_section(section, doc.get(section, {}), schema)
    for kind in _ITEM_SCHEMAS:
        out["traffic"][kind] = _walk_items(kind, out["traffic"][kind])
    crashes = doc.get("crashes", [])
    if not isinstance(crashes, list):
        raise SimulationError("scenario crashes: expected a list")
    out["crashes"] = [
        _walk_section(f"crashes[{i}]", crash, _CRASH_SCHEMA)
        for i, crash in enumerate(crashes)
    ]
    if out["chaos"]["cell"] is not None and (
        not isinstance(out["chaos"]["cell"], str) or not out["chaos"]["cell"]
    ):
        raise SimulationError("scenario chaos.cell: expected a non-empty string")
    _cross_validate(out)
    return out


def _cross_validate(doc: dict[str, Any]) -> None:
    """Rules that span sections: address ranges, flood shape, epochs."""
    topo = doc["topology"]
    n_isps, users = topo["n_isps"], topo["users_per_isp"]
    for isp in topo["noncompliant"]:
        if not 0 <= isp < n_isps:
            raise SimulationError(
                f"scenario topology.noncompliant: ISP {isp} outside "
                f"[0, {n_isps})"
            )
    if len(set(topo["noncompliant"])) != len(topo["noncompliant"]):
        raise SimulationError(
            "scenario topology.noncompliant: duplicate ISP ids"
        )
    economics = doc["economics"]
    if economics["minavail"] > economics["maxavail"]:
        raise SimulationError(
            "scenario economics: minavail exceeds maxavail"
        )
    traffic = doc["traffic"]
    duration = traffic["duration"]
    for i, spec in enumerate(traffic["spammers"]):
        _check_address(f"traffic.spammers[{i}]", spec["isp"], spec["user"],
                       n_isps, users)
    for i, spec in enumerate(traffic["zombies"]):
        _check_address(f"traffic.zombies[{i}]", spec["isp"], spec["user"],
                       n_isps, users)
        if spec["end"] <= spec["start"]:
            raise SimulationError(
                f"scenario traffic.zombies[{i}]: end must exceed start"
            )
    for i, spec in enumerate(traffic["floods"]):
        for side in ("attacker_isp", "target_isp"):
            if not 0 <= spec[side] < n_isps:
                raise SimulationError(
                    f"scenario traffic.floods[{i}].{side}: ISP "
                    f"{spec[side]} outside [0, {n_isps})"
                )
        if spec["attacker_isp"] == spec["target_isp"]:
            raise SimulationError(
                f"scenario traffic.floods[{i}]: attacker and target "
                "must be different ISPs"
            )
    for i, crash in enumerate(doc["crashes"]):
        node = crash["node"]
        valid = node == "bank" or (
            node.startswith("isp")
            and node[3:].isdigit()
            and int(node[3:]) < n_isps
        )
        if not valid:
            raise SimulationError(
                f"scenario crashes[{i}].node: {node!r} is neither 'bank' "
                f"nor 'isp0'..'isp{n_isps - 1}'"
            )
    strategies = doc.get("strategies")
    if strategies is not None:
        attacker = strategies["attacker"]
        _check_address("strategies.attacker", attacker["isp"],
                       attacker["user"], n_isps, users)
        if strategies["periods"] * DAY > duration:
            raise SimulationError(
                f"scenario strategies.periods: {strategies['periods']} "
                f"day-long periods do not fit traffic.duration ({duration})"
            )
        if attacker["name"] == "epenny_wash":
            colluding = attacker["params"]["colluding_isp"]
            resolved = n_isps - 1 if colluding == -1 else colluding
            if not 0 <= resolved < n_isps:
                raise SimulationError(
                    f"scenario strategies.attacker.params.colluding_isp: "
                    f"ISP {colluding} outside [0, {n_isps})"
                )
            if resolved in doc["topology"]["noncompliant"]:
                raise SimulationError(
                    "scenario strategies.attacker.params.colluding_isp: "
                    f"ISP {resolved} is non-compliant — washing needs a "
                    "compliant ledger to harvest"
                )
    cluster = doc["cluster"]
    if cluster["shards"] > n_isps:
        raise SimulationError(
            f"scenario cluster.shards: {cluster['shards']} shards cannot "
            f"partition {n_isps} ISPs"
        )
    if cluster["shards"] > 1:
        epoch = cluster["epoch"]
        for label, period in (
            ("traffic.duration", duration),
            ("one day (midnight processing)", DAY),
            ("reconcile.every", doc["reconcile"]["every"]),
        ):
            if period > 0 and round(period / epoch) * epoch != period:
                raise SimulationError(
                    f"scenario cluster.epoch {epoch} does not tile "
                    f"{label} ({period}); shards would cut mid-boundary"
                )


def _check_address(path, isp, user, n_isps, users_per_isp):
    if not 0 <= isp < n_isps:
        raise SimulationError(
            f"scenario {path}.isp: ISP {isp} outside [0, {n_isps})"
        )
    if not 0 <= user < users_per_isp:
        raise SimulationError(
            f"scenario {path}.user: user {user} outside [0, {users_per_isp})"
        )


def parse(text: str, *, source: str = "<string>") -> dict[str, Any]:
    """Parse JSON (preferred) or YAML text into a canonical document."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as json_err:
        try:
            import yaml
        except ImportError:  # pragma: no cover - yaml is normally present
            raise SimulationError(
                f"{source}: not valid JSON ({json_err}) and PyYAML is "
                "unavailable"
            ) from json_err
        try:
            doc = yaml.safe_load(text)
        except yaml.YAMLError as yaml_err:
            raise SimulationError(
                f"{source}: parses as neither JSON ({json_err}) nor YAML "
                f"({yaml_err})"
            ) from yaml_err
    if not isinstance(doc, dict):
        raise SimulationError(f"{source}: scenario document must be a mapping")
    return validate(doc)


def load(path: str) -> dict[str, Any]:
    """Load and validate a scenario file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse(handle.read(), source=path)


def canonical_dump(doc: dict[str, Any]) -> str:
    """The canonical bytes of a validated document (ends with a newline).

    Sorted keys, two-space indent, every default materialized — the form
    committed under ``examples/scenarios/`` and hashed by
    :func:`scenario_digest`. ``parse(canonical_dump(d))`` is ``d`` for
    any validated ``d`` (property-tested round-trip identity).
    """
    return json.dumps(validate(doc), sort_keys=True, indent=2) + "\n"


def scenario_digest(doc: dict[str, Any]) -> str:
    """SHA-256 over the canonical document bytes — the world's identity."""
    canonical = json.dumps(
        validate(doc), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
