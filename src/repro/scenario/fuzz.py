"""Whole-world fuzzing: N generated scenarios through every executor.

:func:`run_fuzz` drives a seeded campaign: world ``i`` is generated from
``derive_seed(campaign_seed, "world:i")``, compiled once, and executed
on the full executor matrix — direct, columnar (when the world is
all-compliant and numpy is present) and the inline cluster at a fixed
shard count. The worlds' invariant manifests must be byte-identical
across executors and must report conservation; any violation is a
failure. A failing world is immediately shrunk
(:mod:`repro.scenario.shrink`) to a minimal still-failing document, and
both the original and the minimal world are written out as artifacts, so
a nightly red run hands the next engineer a two-line reproduction:
``repro fuzz --replay SEED:INDEX``.

Reports contain no wall-clock timestamps: the same campaign seed yields
byte-identical report text on every machine, red or green.
"""

from __future__ import annotations

import os
from typing import Any, Callable

from ..errors import SimulationError
from ..sim.clock import DAY
from ..sim.rng import derive_seed
from ..sim.workload import HAVE_NUMPY
from .compiler import compile_scenario, run_plan
from .generate import generate_doc
from .schema import canonical_dump
from .shrink import shrink

__all__ = [
    "world_seed",
    "cluster_comparable",
    "check_world",
    "run_fuzz",
    "replay_world",
    "parse_replay",
    "format_report",
]


def world_seed(campaign_seed: int, index: int) -> int:
    """The generator seed of world ``index`` in a campaign."""
    return derive_seed(campaign_seed, f"world:{index}")


def cluster_comparable(doc: dict[str, Any]) -> bool:
    """Whether the epoch-barriered cluster must byte-match direct mode.

    The cluster delivers cross-ISP mail at the next epoch barrier, so a
    received credit lands later there than on the instant-delivery
    executors. That timing is observable exactly when a user's e-penny
    balance can bind mid-run — a credit arriving before vs. after their
    next send decides whether it clears. With *credit slack* — every
    user funded for a full run of limit-capped sending, with a one-day
    margin — no balance ever binds, delivery timing is unobservable in
    the ledger multiset, and byte-equality against the cluster is a
    theorem. Tight-balance worlds stay in the fuzz population but are
    compared on the instant-delivery executors only (the pinned corpus
    world in tests/test_scenario_fuzz.py documents the boundary).
    """
    economics = doc["economics"]
    duration = doc["traffic"]["duration"]
    windows = int(duration // DAY) + (1 if duration % DAY else 0)
    slack = economics["default_daily_limit"] * (windows + 1)
    return economics["default_user_balance"] >= slack


def check_world(doc: dict[str, Any], *, shards: int = 2) -> str | None:
    """Run one world across the executor matrix; None means healthy.

    The oracle: every executor's invariant manifest is byte-identical
    and every run conserves total value. Non-compliant worlds drop the
    columnar executor (it refuses them by design); tight-balance worlds
    drop the cluster (see :func:`cluster_comparable`); worlds with
    fewer ISPs than ``shards`` clamp the shard count.
    """
    plan = compile_scenario(doc)
    modes = ["direct"]
    if plan.all_compliant and HAVE_NUMPY:
        modes.append("columnar")
    runs = {mode: run_plan(plan, mode) for mode in modes}
    if cluster_comparable(doc):
        runs["cluster"] = run_plan(
            plan, "cluster", shards=min(shards, plan.doc["topology"]["n_isps"])
        )
    texts = {mode: run["manifest"].to_json() for mode, run in runs.items()}
    baseline = texts["direct"]
    diverged = sorted(mode for mode, text in texts.items() if text != baseline)
    if diverged:
        detail = []
        base_doc = runs["direct"]["manifest"].to_dict()
        for mode in diverged:
            other = runs[mode]["manifest"].to_dict()
            keys = sorted(
                key for key in base_doc if other.get(key) != base_doc[key]
            )
            detail.append(f"{mode} differs from direct on {keys}")
        return "invariant manifest divergence: " + "; ".join(detail)
    for mode, run in runs.items():
        if not run["manifest"].extra["conserved"]:
            return f"{mode}: total value not conserved"
    return None


def _fail_row(
    campaign_seed: int,
    index: int,
    doc: dict[str, Any],
    reason: str,
    minimal: dict[str, Any],
) -> dict[str, Any]:
    return {
        "index": index,
        "world_seed": world_seed(campaign_seed, index),
        "replay": f"{campaign_seed}:{index}",
        "reason": reason,
        "doc": doc,
        "minimal": minimal,
    }


def _write_artifacts(out: str, row: dict[str, Any]) -> list[str]:
    os.makedirs(out, exist_ok=True)
    stem = os.path.join(out, f"world-{row['world_seed']}")
    paths = []
    for suffix, doc in (("", row["doc"]), ("-shrunk", row["minimal"])):
        path = f"{stem}{suffix}.json"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(canonical_dump(doc))
        paths.append(path)
    return paths


def run_fuzz(
    *,
    count: int,
    seed: int,
    shards: int = 2,
    out: str | None = None,
    check: Callable[[dict[str, Any]], str | None] | None = None,
    max_shrink_steps: int = 200,
) -> dict[str, Any]:
    """Fuzz ``count`` generated worlds; returns the campaign report dict.

    Args:
        out: Directory for failing-world artifacts (created on demand;
            nothing is written on a green campaign).
        check: Oracle override for tests; defaults to
            :func:`check_world` at ``shards``.
    """
    if count < 1:
        raise SimulationError("fuzz campaign needs count >= 1")
    oracle = check or (lambda doc: check_world(doc, shards=shards))
    failures = []
    for index in range(count):
        doc = generate_doc(world_seed(seed, index))
        reason = oracle(doc)
        if reason is None:
            continue
        minimal = shrink(
            doc,
            lambda candidate: oracle(candidate) is not None,
            max_steps=max_shrink_steps,
        )
        row = _fail_row(seed, index, doc, reason, minimal)
        if out:
            row["artifacts"] = _write_artifacts(out, row)
        failures.append(row)
    return {
        "seed": seed,
        "count": count,
        "shards": shards,
        "failures": failures,
        "passed": not failures,
    }


def parse_replay(token: str) -> tuple[int, int]:
    """Parse a ``SEED:INDEX`` replay token from a failure report."""
    try:
        seed_text, index_text = token.split(":", 1)
        return int(seed_text), int(index_text)
    except ValueError:
        raise SimulationError(
            f"replay token {token!r} is not of the form SEED:INDEX"
        ) from None


def replay_world(
    token: str,
    *,
    shards: int = 2,
    out: str | None = None,
    check: Callable[[dict[str, Any]], str | None] | None = None,
    max_shrink_steps: int = 200,
) -> dict[str, Any]:
    """Re-run (and re-shrink) one world from its failure-report token."""
    seed, index = parse_replay(token)
    oracle = check or (lambda doc: check_world(doc, shards=shards))
    doc = generate_doc(world_seed(seed, index))
    reason = oracle(doc)
    report: dict[str, Any] = {
        "seed": seed,
        "count": 1,
        "shards": shards,
        "failures": [],
        "passed": reason is None,
    }
    if reason is not None:
        minimal = shrink(
            doc,
            lambda candidate: oracle(candidate) is not None,
            max_steps=max_shrink_steps,
        )
        row = _fail_row(seed, index, doc, reason, minimal)
        if out:
            row["artifacts"] = _write_artifacts(out, row)
        report["failures"].append(row)
    return report


def format_report(report: dict[str, Any]) -> str:
    """Deterministic text rendering of a fuzz campaign report."""
    lines = [
        f"fuzz seed={report['seed']} worlds={report['count']} "
        f"shards={report['shards']} "
        f"verdict={'PASS' if report['passed'] else 'FAIL'}"
    ]
    for row in report["failures"]:
        lines.append(
            f"world {row['index']} (generator seed {row['world_seed']}): "
            f"{row['reason']}"
        )
        minimal = row["minimal"]
        topo = minimal["topology"]
        lines.append(
            f"  shrunk to {topo['n_isps']} ISPs x "
            f"{topo['users_per_isp']} users, "
            f"{minimal['traffic']['duration'] / 3600:.0f}h"
        )
        for path in row.get("artifacts", []):
            lines.append(f"  artifact {path}")
        lines.append(f"  replay with: repro fuzz --replay {row['replay']}")
    return "\n".join(lines)
