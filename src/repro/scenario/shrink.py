"""Greedy, deterministic shrinking of failing scenario documents.

Given a world that fails a predicate, :func:`shrink` walks toward the
smallest world that still fails, hypothesis-style but with no RNG: each
pass proposes a fixed, ordered list of simplifications (drop an actor,
clear the fault schedule, zero the background rate, halve the duration,
halve volumes, drop an ISP…), adopts the first one that still fails,
and repeats until none does. Determinism matters more than cleverness
here — the same failing seed must shrink to the same minimal world on
every machine, so the shrunken document committed to a regression corpus
is reproducible from the seed alone.

Every candidate is re-validated against the schema before the predicate
runs; a simplification that produces an invalid document (a flood whose
attacker ISP was dropped, an epoch that no longer tiles the halved
duration) is simply skipped.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Iterator

from ..errors import SimulationError
from ..sim.clock import HOUR
from .schema import validate

__all__ = ["shrink", "shrink_candidates"]


def _snap_hours(value: float) -> float:
    """Round a duration down to a whole multiple of 6 hours (min 6h)."""
    return max(1, int(value // (6 * HOUR))) * 6 * HOUR


def shrink_candidates(doc: dict[str, Any]) -> Iterator[dict[str, Any]]:
    """Ordered simplifications of ``doc``, strictly smaller worlds first.

    Yields raw candidate documents; callers must validate (``shrink``
    does). Order encodes shrink priority: removing whole actors beats
    shrinking numbers, and structural shrinks (topology, duration) come
    last because they invalidate the most other sections.
    """
    traffic = doc["traffic"]

    # 1. Drop one adversarial actor at a time.
    for kind in ("floods", "zombies", "spammers"):
        for index in range(len(traffic[kind])):
            out = copy.deepcopy(doc)
            del out["traffic"][kind][index]
            yield out

    # 2. Clear the chaos-only schedule (faults, crashes, overload).
    #    Only the injection knobs count as "faults present": reorder_delay
    #    carries a nonzero default that survives clearing, so testing it
    #    would re-propose the identical document forever.
    if any(
        doc["faults"][key]
        for key in ("drop_rate", "duplicate_rate", "reorder_rate",
                    "extra_delay")
    ):
        out = copy.deepcopy(doc)
        out["faults"] = {}
        yield out
    if doc["crashes"]:
        out = copy.deepcopy(doc)
        out["crashes"] = []
        yield out
    if doc["overload"]["enabled"]:
        out = copy.deepcopy(doc)
        out["overload"]["enabled"] = False
        yield out

    # 3. Silence the background correspondence entirely.
    if traffic["normal_rate_per_day"] > 0:
        out = copy.deepcopy(doc)
        out["traffic"]["normal_rate_per_day"] = 0.0
        yield out

    # 4. Turn off reconciliation cadence (a final round still runs).
    if doc["reconcile"]["every"] > 0:
        out = copy.deepcopy(doc)
        out["reconcile"]["every"] = 0.0
        yield out

    # 5. Make every ISP compliant.
    if doc["topology"]["noncompliant"]:
        out = copy.deepcopy(doc)
        out["topology"]["noncompliant"] = []
        yield out

    # 6. Halve volumes and rates (with floors so progress terminates).
    for index, spec in enumerate(traffic["spammers"]):
        if spec["volume"] > 10:
            out = copy.deepcopy(doc)
            out["traffic"]["spammers"][index]["volume"] = spec["volume"] // 2
            yield out
    for index, spec in enumerate(traffic["zombies"]):
        if spec["rate_per_hour"] > 10:
            out = copy.deepcopy(doc)
            out["traffic"]["zombies"][index]["rate_per_hour"] = round(
                spec["rate_per_hour"] / 2, 3
            )
            yield out
    for index, spec in enumerate(traffic["floods"]):
        if spec["rate_per_sec"] > 0.5:
            out = copy.deepcopy(doc)
            out["traffic"]["floods"][index]["rate_per_sec"] = round(
                spec["rate_per_sec"] / 2, 3
            )
            yield out
        if spec["attackers"] > 1:
            out = copy.deepcopy(doc)
            out["traffic"]["floods"][index]["attackers"] = 1
            yield out
    if traffic["normal_rate_per_day"] > 2:
        out = copy.deepcopy(doc)
        out["traffic"]["normal_rate_per_day"] = round(
            traffic["normal_rate_per_day"] / 2, 3
        )
        yield out

    # 7. Halve the run (snapped so cluster epochs keep tiling).
    if traffic["duration"] > 6 * HOUR:
        out = copy.deepcopy(doc)
        out["traffic"]["duration"] = _snap_hours(traffic["duration"] / 2)
        yield out

    # 8. Shrink the topology: drop the highest ISP (with every actor
    #    that references it), then shrink ISP size.
    topo = doc["topology"]
    if topo["n_isps"] > 2:
        out = copy.deepcopy(doc)
        last = topo["n_isps"] - 1
        out["topology"]["n_isps"] = last
        out["topology"]["noncompliant"] = [
            isp for isp in topo["noncompliant"] if isp < last
        ]
        out["traffic"]["spammers"] = [
            s for s in traffic["spammers"] if s["isp"] < last
        ]
        out["traffic"]["zombies"] = [
            z for z in traffic["zombies"] if z["isp"] < last
        ]
        out["traffic"]["floods"] = [
            f for f in traffic["floods"]
            if f["attacker_isp"] < last and f["target_isp"] < last
        ]
        out["crashes"] = [
            c for c in doc["crashes"]
            if c["node"] == "bank" or int(c["node"][3:]) < last
        ]
        yield out
    if topo["users_per_isp"] > 2:
        out = copy.deepcopy(doc)
        smaller = topo["users_per_isp"] - 1
        out["topology"]["users_per_isp"] = smaller
        out["traffic"]["spammers"] = [
            s for s in traffic["spammers"] if s["user"] < smaller
        ]
        out["traffic"]["zombies"] = [
            z for z in traffic["zombies"] if z["user"] < smaller
        ]
        yield out


def shrink(
    doc: dict[str, Any],
    failing: Callable[[dict[str, Any]], bool],
    *,
    max_steps: int = 200,
) -> dict[str, Any]:
    """The smallest reachable document for which ``failing`` stays true.

    ``doc`` itself must fail. Greedy first-improvement descent over
    :func:`shrink_candidates`, capped at ``max_steps`` predicate calls
    per pass round (runaway protection; the cap returns the best world
    found so far rather than raising).
    """
    current = validate(doc)
    if not failing(current):
        raise SimulationError(
            "shrink() needs a failing document to start from"
        )
    steps = 0
    progress = True
    while progress and steps < max_steps:
        progress = False
        for candidate in shrink_candidates(current):
            try:
                candidate = validate(candidate)
            except SimulationError:
                continue
            if candidate == current:
                # A simplification that normalizes back to the current
                # document is no progress; adopting it would loop.
                continue
            steps += 1
            if failing(candidate):
                current = candidate
                progress = True
                break
            if steps >= max_steps:
                break
    return current
