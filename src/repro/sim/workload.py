"""Email traffic workload generators.

Workloads produce streams of :class:`SendRequest` records — who wants to
send to whom, when, and why (normal correspondence, spam campaign, mailing
list post, or zombie burst). They are deliberately independent of the Zmail
core: the same traffic can be replayed through Zmail, through plain SMTP,
or through any baseline, which is what makes the comparisons in the
benchmark harness apples-to-apples.

Addresses are ``(isp_id, user_id)`` pairs matching the paper's model of
``n`` ISPs with ``m`` users each.

Performance: when numpy is available (see :data:`repro.sim.rng.HAVE_NUMPY`)
the generators draw inter-arrival times and targets in vectorized chunks —
one RNG call per few thousand messages instead of two per message — while
staying lazy (constant memory per stream) and deterministic per seed. The
numpy and pure-python paths are *both* deterministic, but they draw from
differently named streams and therefore produce different (equally valid)
traffic for the same seed; a given host always takes the same path.

Each generator also exposes ``generate_columns()`` — the same traffic as
column chunks ``(times, sender_gids, recipient_gids)`` of parallel numpy
arrays, where a *gid* is the flat user index ``isp * users_per_isp +
user``. The object path (``_generate_numpy``) is a thin wrapper that
expands those columns into :class:`SendRequest` records, so the columnar
batch executor (:mod:`repro.columnar`) and the object executors consume
byte-identical traffic from identical RNG draws by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from ..errors import SimulationError
from .clock import DAY
from .rng import HAVE_NUMPY, SeededStreams

__all__ = [
    "TrafficKind",
    "Address",
    "SendRequest",
    "NormalUserWorkload",
    "SpamCampaignWorkload",
    "ZombieBurstWorkload",
    "FloodSpec",
    "FloodWorkload",
    "merge_workloads",
]

# Vectorized generators draw this many arrivals per RNG call: large enough
# to amortize numpy call overhead, small enough to keep streams lazy.
_CHUNK = 8192


class TrafficKind(Enum):
    """Why a message is being sent; used for per-class accounting."""

    NORMAL = "normal"
    SPAM = "spam"
    MAILING_LIST = "mailing_list"
    ACK = "ack"
    ZOMBIE = "zombie"


@dataclass(frozen=True, order=True, slots=True)
class Address:
    """A user's location: ISP index and user index within that ISP."""

    isp: int
    user: int

    def __str__(self) -> str:
        return f"user{self.user}@isp{self.isp}"


@dataclass(frozen=True, slots=True)
class SendRequest:
    """One message a workload wants sent at a given virtual time."""

    time: float
    sender: Address
    recipient: Address
    kind: TrafficKind

    def __lt__(self, other: "SendRequest") -> bool:
        return self.time < other.time


class NormalUserWorkload:
    """Poisson correspondence among normal users.

    Each user sends at ``rate_per_day`` on average; recipients are drawn
    from the sender's contact list (a fixed random subset of the
    population), modelling the paper's observation that normal users
    roughly balance sends and receives over time.
    """

    def __init__(
        self,
        *,
        n_isps: int,
        users_per_isp: int,
        rate_per_day: float,
        streams: SeededStreams,
        contacts_per_user: int = 8,
        name: str = "normal",
    ) -> None:
        if n_isps <= 0 or users_per_isp <= 0:
            raise ValueError("need at least one ISP and one user per ISP")
        if rate_per_day < 0:
            raise ValueError("rate_per_day must be non-negative")
        self.n_isps = n_isps
        self.users_per_isp = users_per_isp
        self.rate_per_day = rate_per_day
        self.contacts_per_user = contacts_per_user
        self._streams = streams
        self.name = name
        self._population = [
            Address(i, u) for i in range(n_isps) for u in range(users_per_isp)
        ]
        self._contacts: dict[Address, list[Address]] = {}

    def _contacts_of(self, sender: Address) -> list[Address]:
        contacts = self._contacts.get(sender)
        if contacts is None:
            stream = self._streams.get(f"{self.name}:contacts:{sender}")
            others = [a for a in self._population if a != sender]
            k = min(self.contacts_per_user, len(others))
            contacts = stream.sample(others, k) if k else []
            self._contacts[sender] = contacts
        return contacts

    def generate(self, duration: float) -> Iterator[SendRequest]:
        """Yield requests over ``[0, duration)`` in time order."""
        if self.rate_per_day == 0:
            return iter(())
        if HAVE_NUMPY:
            return self._generate_numpy(duration)
        return self._generate_python(duration)

    def _generate_python(self, duration: float) -> Iterator[SendRequest]:
        arrival_stream = self._streams.get(f"{self.name}:arrivals")
        pick_stream = self._streams.get(f"{self.name}:pick")
        total_rate = self.rate_per_day * len(self._population) / DAY
        t = 0.0
        while True:
            t += arrival_stream.expovariate(total_rate)
            if t >= duration:
                return
            sender = pick_stream.choice(self._population)
            contacts = self._contacts_of(sender)
            if not contacts:
                continue
            recipient = pick_stream.choice(contacts)
            yield SendRequest(t, sender, recipient, TrafficKind.NORMAL)

    def _contact_table(self):
        """Contact lists as a gid matrix + per-sender counts (column path).

        The per-sender contact streams are independently named, so
        materializing them eagerly here draws exactly the same values as
        the lazy per-sender lookups on the object path.
        """
        import numpy as np

        n = len(self._population)
        counts = np.zeros(n, dtype=np.int64)
        table = np.zeros((n, max(1, self.contacts_per_user)), dtype=np.int64)
        users_per_isp = self.users_per_isp
        for index, sender in enumerate(self._population):
            contacts = self._contacts_of(sender)
            counts[index] = len(contacts)
            for slot, contact in enumerate(contacts):
                table[index, slot] = contact.isp * users_per_isp + contact.user
        return table, counts

    def generate_columns(self, duration: float):
        """Yield ``(times, sender_gids, recipient_gids)`` column chunks.

        Same RNG streams, same draw order and same cutoff semantics as
        :meth:`_generate_numpy`; requires numpy.
        """
        import numpy as np

        if self.rate_per_day == 0:
            return
        rng = self._streams.get_numpy(f"{self.name}:arrivals")
        n_population = len(self._population)
        total_rate = self.rate_per_day * n_population / DAY
        table, counts = self._contact_table()
        t = 0.0
        while True:
            gaps = rng.exponential(1.0 / total_rate, size=_CHUNK)
            times = gaps.cumsum()
            times += t
            t = float(times[-1])
            senders = rng.integers(0, n_population, size=_CHUNK)
            picks = rng.random(size=_CHUNK)
            # Stop at the first arrival past the horizon, like the object
            # path's early return (times are monotone within a chunk).
            limit = int(np.searchsorted(times, duration, side="left"))
            times = times[:limit]
            senders = senders[:limit]
            picks = picks[:limit]
            n_contacts = counts[senders]
            keep = n_contacts > 0
            if not keep.all():
                # Senders without contacts consume their draws but emit
                # nothing — identical to the object path's ``continue``.
                times = times[keep]
                senders = senders[keep]
                picks = picks[keep]
                n_contacts = n_contacts[keep]
            recipients = table[senders, (picks * n_contacts).astype(np.int64)]
            if len(times):
                yield times, senders.astype(np.int64), recipients
            if limit < _CHUNK:
                return

    def _generate_numpy(self, duration: float) -> Iterator[SendRequest]:
        # The columns carry the RNG logic; the per-message work left in
        # python is the list lookups and the SendRequest allocation.
        population = self._population
        normal = TrafficKind.NORMAL
        for times, senders, recipients in self.generate_columns(duration):
            for when, sender, recipient in zip(
                times.tolist(), senders.tolist(), recipients.tolist()
            ):
                yield SendRequest(
                    when, population[sender], population[recipient], normal
                )


class SpamCampaignWorkload:
    """A bulk-mail campaign blasting the whole population.

    The spammer lives at ``spammer`` and sends ``volume`` messages spread
    uniformly over ``[start, start + duration)`` to recipients sampled
    uniformly from the population (with replacement — real campaigns
    re-hit addresses).
    """

    def __init__(
        self,
        *,
        spammer: Address,
        n_isps: int,
        users_per_isp: int,
        volume: int,
        start: float,
        duration: float,
        streams: SeededStreams,
        name: str = "spam",
    ) -> None:
        if volume < 0:
            raise ValueError("volume must be non-negative")
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.spammer = spammer
        self.volume = volume
        self.start = start
        self.duration = duration
        self.users_per_isp = users_per_isp
        self._streams = streams
        self.name = name
        self._population = [
            Address(i, u)
            for i in range(n_isps)
            for u in range(users_per_isp)
            if Address(i, u) != spammer
        ]

    def generate(self) -> Iterator[SendRequest]:
        """Yield the campaign's requests in time order."""
        if not self._population:
            return iter(())
        if HAVE_NUMPY:
            return self._generate_numpy()
        return self._generate_python()

    def _generate_python(self) -> Iterator[SendRequest]:
        stream = self._streams.get(f"{self.name}:times")
        pick = self._streams.get(f"{self.name}:targets")
        times = sorted(
            stream.uniform(self.start, self.start + self.duration)
            for _ in range(self.volume)
        )
        for t in times:
            recipient = pick.choice(self._population)
            yield SendRequest(t, self.spammer, recipient, TrafficKind.SPAM)

    def generate_columns(self):
        """Yield the campaign as one ``(times, senders, recipients)`` chunk."""
        import numpy as np

        if not self._population or self.volume == 0:
            return
        rng = self._streams.get_numpy(f"{self.name}:times")
        times = rng.uniform(
            self.start, self.start + self.duration, size=self.volume
        )
        times.sort()
        targets = rng.integers(0, len(self._population), size=self.volume)
        # The population excludes the spammer, so gids at or past the
        # spammer's slot shift up by one.
        spammer_gid = self.spammer.isp * self.users_per_isp + self.spammer.user
        recipients = targets + (targets >= spammer_gid)
        senders = np.full(self.volume, spammer_gid, dtype=np.int64)
        yield times, senders, recipients

    def _generate_numpy(self) -> Iterator[SendRequest]:
        users_per_isp = self.users_per_isp
        spammer = self.spammer
        spam = TrafficKind.SPAM
        for times, _senders, recipients in self.generate_columns():
            for when, recipient in zip(times.tolist(), recipients.tolist()):
                yield SendRequest(
                    when,
                    spammer,
                    Address(recipient // users_per_isp, recipient % users_per_isp),
                    spam,
                )


class ZombieBurstWorkload:
    """A compromised user machine blasting mail at machine speed.

    Models the paper's §5 scenario: a virus turns a user's PC into a zombie
    that sends ``rate_per_hour`` messages until ``end``. The Zmail daily
    ``limit`` should cut this off after ``limit`` messages per day.
    """

    def __init__(
        self,
        *,
        zombie: Address,
        n_isps: int,
        users_per_isp: int,
        rate_per_hour: float,
        start: float,
        end: float,
        streams: SeededStreams,
        name: str = "zombie",
    ) -> None:
        if rate_per_hour <= 0:
            raise ValueError("rate_per_hour must be positive")
        if end <= start:
            raise ValueError("end must be after start")
        self.zombie = zombie
        self.rate_per_hour = rate_per_hour
        self.start = start
        self.end = end
        self.users_per_isp = users_per_isp
        self._streams = streams
        self.name = name
        self._population = [
            Address(i, u)
            for i in range(n_isps)
            for u in range(users_per_isp)
            if Address(i, u) != zombie
        ]

    def generate(self) -> Iterator[SendRequest]:
        """Yield the burst's requests in time order."""
        if not self._population:
            return iter(())
        if HAVE_NUMPY:
            return self._generate_numpy()
        return self._generate_python()

    def _generate_python(self) -> Iterator[SendRequest]:
        arrivals = self._streams.get(f"{self.name}:arrivals")
        pick = self._streams.get(f"{self.name}:targets")
        rate_per_second = self.rate_per_hour / 3600.0
        t = self.start
        while True:
            t += arrivals.expovariate(rate_per_second)
            if t >= self.end:
                return
            recipient = pick.choice(self._population)
            yield SendRequest(t, self.zombie, recipient, TrafficKind.ZOMBIE)

    def generate_columns(self):
        """Yield ``(times, senders, recipients)`` chunks for the burst."""
        import numpy as np

        if not self._population:
            return
        rng = self._streams.get_numpy(f"{self.name}:arrivals")
        n_population = len(self._population)
        scale = 3600.0 / self.rate_per_hour
        zombie_gid = self.zombie.isp * self.users_per_isp + self.zombie.user
        end = self.end
        t = self.start
        while True:
            gaps = rng.exponential(scale, size=_CHUNK)
            times = gaps.cumsum()
            times += t
            t = float(times[-1])
            targets = rng.integers(0, n_population, size=_CHUNK)
            limit = int(np.searchsorted(times, end, side="left"))
            times = times[:limit]
            targets = targets[:limit]
            recipients = targets + (targets >= zombie_gid)
            senders = np.full(limit, zombie_gid, dtype=np.int64)
            if limit:
                yield times, senders, recipients
            if limit < _CHUNK:
                return

    def _generate_numpy(self) -> Iterator[SendRequest]:
        users_per_isp = self.users_per_isp
        zombie = self.zombie
        kind = TrafficKind.ZOMBIE
        for times, _senders, recipients in self.generate_columns():
            for when, recipient in zip(times.tolist(), recipients.tolist()):
                yield SendRequest(
                    when,
                    zombie,
                    Address(recipient // users_per_isp, recipient % users_per_isp),
                    kind,
                )


@dataclass(frozen=True)
class FloodSpec:
    """A burst/flood load-injection fault: overload as a first-class fault.

    A set of ``attackers`` user machines at ``attacker_isp`` blast
    Poisson traffic at ``rate_per_sec`` (aggregate) toward random users
    of ``target_isp`` over ``[start, start + duration)``. The attack
    traffic is ordinary :class:`SendRequest` workload — overload is an
    *admission-layer* fault, so it is injected where mail enters the
    system, not on the wire. Defined here (not in :mod:`repro.chaos`)
    because floods are plain traffic: the chaos harness injects them via
    :func:`repro.chaos.faults.flood_requests` and the scenario compiler
    runs them on every executor via :class:`FloodWorkload`.

    Attributes:
        attacker_isp: ISP hosting the flooding machines (the ISP whose
            admission controller absorbs the burst).
        target_isp: ISP whose users receive the flood.
        rate_per_sec: Aggregate offered load of the flood.
        start: Virtual time the burst begins.
        duration: Burst length in seconds.
        attackers: Number of distinct compromised sender machines.
        kind: Traffic classification of the flood (``"zombie"`` by
            default — sheds first under the priority policy).
    """

    attacker_isp: int = 0
    target_isp: int = 1
    rate_per_sec: float = 100.0
    start: float = 0.0
    duration: float = 60.0
    attackers: int = 4
    kind: str = "zombie"

    def __post_init__(self) -> None:
        if self.rate_per_sec <= 0:
            raise SimulationError("flood rate_per_sec must be positive")
        if self.duration <= 0:
            raise SimulationError("flood duration must be positive")
        if self.start < 0:
            raise SimulationError("flood start must be non-negative")
        if self.attackers < 1:
            raise SimulationError("flood needs at least one attacker")
        if self.kind not in TrafficKind._value2member_map_:
            raise SimulationError(f"unknown flood traffic kind {self.kind!r}")


class FloodWorkload:
    """A :class:`FloodSpec` as executor-neutral traffic.

    The scenario compiler's lowering of a flood: the same burst the chaos
    harness injects with :func:`repro.chaos.faults.flood_requests`, but
    following the workload-class contract above — ``generate()`` for the
    object executors and ``generate_columns()`` for the columnar batch
    executor, drawing from identical RNG streams so every executor sees
    identical traffic. (The chaos path keeps its own pure-python draw
    discipline for backward-compatible campaign reports; the two paths
    are deterministic per seed but not draw-compatible with each other.)
    """

    def __init__(
        self,
        *,
        spec: FloodSpec,
        n_isps: int,
        users_per_isp: int,
        streams: SeededStreams,
        name: str = "flood",
    ) -> None:
        if not 0 <= spec.attacker_isp < n_isps or not 0 <= spec.target_isp < n_isps:
            raise SimulationError(
                f"flood ISPs out of range: {spec.attacker_isp} -> "
                f"{spec.target_isp}"
            )
        self.spec = spec
        self.users_per_isp = users_per_isp
        self._streams = streams
        self.name = name
        self._attackers = [
            Address(spec.attacker_isp, user % users_per_isp)
            for user in range(spec.attackers)
        ]

    def generate(self) -> Iterator[SendRequest]:
        """Yield the flood's requests in time order."""
        if HAVE_NUMPY:
            return self._generate_numpy()
        return self._generate_python()

    def _generate_python(self) -> Iterator[SendRequest]:
        spec = self.spec
        arrivals = self._streams.get(f"{self.name}:arrivals")
        pick = self._streams.get(f"{self.name}:targets")
        kind = TrafficKind(spec.kind)
        attackers = self._attackers
        end = spec.start + spec.duration
        t = spec.start
        while True:
            t += arrivals.expovariate(spec.rate_per_sec)
            if t >= end:
                return
            sender = attackers[pick.randrange(len(attackers))]
            recipient = Address(
                spec.target_isp, pick.randrange(self.users_per_isp)
            )
            yield SendRequest(t, sender, recipient, kind)

    def generate_columns(self):
        """Yield ``(times, senders, recipients)`` chunks for the flood."""
        import numpy as np

        spec = self.spec
        rng = self._streams.get_numpy(f"{self.name}:arrivals")
        users_per_isp = self.users_per_isp
        attacker_gids = np.array(
            [a.isp * users_per_isp + a.user for a in self._attackers],
            dtype=np.int64,
        )
        target_base = spec.target_isp * users_per_isp
        end = spec.start + spec.duration
        t = spec.start
        while True:
            gaps = rng.exponential(1.0 / spec.rate_per_sec, size=_CHUNK)
            times = gaps.cumsum()
            times += t
            t = float(times[-1])
            which = rng.integers(0, len(attacker_gids), size=_CHUNK)
            targets = rng.integers(0, users_per_isp, size=_CHUNK)
            limit = int(np.searchsorted(times, end, side="left"))
            if limit:
                yield (
                    times[:limit],
                    attacker_gids[which[:limit]],
                    target_base + targets[:limit],
                )
            if limit < _CHUNK:
                return

    def _generate_numpy(self) -> Iterator[SendRequest]:
        users_per_isp = self.users_per_isp
        kind = TrafficKind(self.spec.kind)
        for times, senders, recipients in self.generate_columns():
            for when, sender, recipient in zip(
                times.tolist(), senders.tolist(), recipients.tolist()
            ):
                yield SendRequest(
                    when,
                    Address(sender // users_per_isp, sender % users_per_isp),
                    Address(
                        recipient // users_per_isp, recipient % users_per_isp
                    ),
                    kind,
                )


def merge_workloads(*iterators: Iterator[SendRequest]) -> Iterator[SendRequest]:
    """Merge independently time-ordered request streams into one ordering.

    Standard k-way merge; each input must itself be time-ordered. The key
    is extracted with :func:`operator.attrgetter` (C level) because the
    merge sits on the hot path of every streamed scenario.
    """
    import heapq
    import operator

    return iter(heapq.merge(*iterators, key=operator.attrgetter("time")))
