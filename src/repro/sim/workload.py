"""Email traffic workload generators.

Workloads produce streams of :class:`SendRequest` records — who wants to
send to whom, when, and why (normal correspondence, spam campaign, mailing
list post, or zombie burst). They are deliberately independent of the Zmail
core: the same traffic can be replayed through Zmail, through plain SMTP,
or through any baseline, which is what makes the comparisons in the
benchmark harness apples-to-apples.

Addresses are ``(isp_id, user_id)`` pairs matching the paper's model of
``n`` ISPs with ``m`` users each.

Performance: when numpy is available (see :data:`repro.sim.rng.HAVE_NUMPY`)
the generators draw inter-arrival times and targets in vectorized chunks —
one RNG call per few thousand messages instead of two per message — while
staying lazy (constant memory per stream) and deterministic per seed. The
numpy and pure-python paths are *both* deterministic, but they draw from
differently named streams and therefore produce different (equally valid)
traffic for the same seed; a given host always takes the same path.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from .clock import DAY
from .rng import HAVE_NUMPY, SeededStreams

__all__ = [
    "TrafficKind",
    "Address",
    "SendRequest",
    "NormalUserWorkload",
    "SpamCampaignWorkload",
    "ZombieBurstWorkload",
    "merge_workloads",
]

# Vectorized generators draw this many arrivals per RNG call: large enough
# to amortize numpy call overhead, small enough to keep streams lazy.
_CHUNK = 8192


class TrafficKind(Enum):
    """Why a message is being sent; used for per-class accounting."""

    NORMAL = "normal"
    SPAM = "spam"
    MAILING_LIST = "mailing_list"
    ACK = "ack"
    ZOMBIE = "zombie"


@dataclass(frozen=True, order=True, slots=True)
class Address:
    """A user's location: ISP index and user index within that ISP."""

    isp: int
    user: int

    def __str__(self) -> str:
        return f"user{self.user}@isp{self.isp}"


@dataclass(frozen=True, slots=True)
class SendRequest:
    """One message a workload wants sent at a given virtual time."""

    time: float
    sender: Address
    recipient: Address
    kind: TrafficKind

    def __lt__(self, other: "SendRequest") -> bool:
        return self.time < other.time


class NormalUserWorkload:
    """Poisson correspondence among normal users.

    Each user sends at ``rate_per_day`` on average; recipients are drawn
    from the sender's contact list (a fixed random subset of the
    population), modelling the paper's observation that normal users
    roughly balance sends and receives over time.
    """

    def __init__(
        self,
        *,
        n_isps: int,
        users_per_isp: int,
        rate_per_day: float,
        streams: SeededStreams,
        contacts_per_user: int = 8,
        name: str = "normal",
    ) -> None:
        if n_isps <= 0 or users_per_isp <= 0:
            raise ValueError("need at least one ISP and one user per ISP")
        if rate_per_day < 0:
            raise ValueError("rate_per_day must be non-negative")
        self.n_isps = n_isps
        self.users_per_isp = users_per_isp
        self.rate_per_day = rate_per_day
        self.contacts_per_user = contacts_per_user
        self._streams = streams
        self.name = name
        self._population = [
            Address(i, u) for i in range(n_isps) for u in range(users_per_isp)
        ]
        self._contacts: dict[Address, list[Address]] = {}

    def _contacts_of(self, sender: Address) -> list[Address]:
        contacts = self._contacts.get(sender)
        if contacts is None:
            stream = self._streams.get(f"{self.name}:contacts:{sender}")
            others = [a for a in self._population if a != sender]
            k = min(self.contacts_per_user, len(others))
            contacts = stream.sample(others, k) if k else []
            self._contacts[sender] = contacts
        return contacts

    def generate(self, duration: float) -> Iterator[SendRequest]:
        """Yield requests over ``[0, duration)`` in time order."""
        if self.rate_per_day == 0:
            return iter(())
        if HAVE_NUMPY:
            return self._generate_numpy(duration)
        return self._generate_python(duration)

    def _generate_python(self, duration: float) -> Iterator[SendRequest]:
        arrival_stream = self._streams.get(f"{self.name}:arrivals")
        pick_stream = self._streams.get(f"{self.name}:pick")
        total_rate = self.rate_per_day * len(self._population) / DAY
        t = 0.0
        while True:
            t += arrival_stream.expovariate(total_rate)
            if t >= duration:
                return
            sender = pick_stream.choice(self._population)
            contacts = self._contacts_of(sender)
            if not contacts:
                continue
            recipient = pick_stream.choice(contacts)
            yield SendRequest(t, sender, recipient, TrafficKind.NORMAL)

    def _generate_numpy(self, duration: float) -> Iterator[SendRequest]:
        # One exponential/integer/uniform array per _CHUNK arrivals; the
        # per-message work left in python is dict lookups and the
        # SendRequest allocation itself.
        rng = self._streams.get_numpy(f"{self.name}:arrivals")
        population = self._population
        n_population = len(population)
        total_rate = self.rate_per_day * n_population / DAY
        contacts_of = self._contacts_of
        normal = TrafficKind.NORMAL
        t = 0.0
        while True:
            gaps = rng.exponential(1.0 / total_rate, size=_CHUNK)
            times = gaps.cumsum()
            times += t
            t = float(times[-1])
            sender_indices = rng.integers(0, n_population, size=_CHUNK)
            picks = rng.random(size=_CHUNK)
            for when, sender_index, pick in zip(
                times.tolist(), sender_indices.tolist(), picks.tolist()
            ):
                if when >= duration:
                    return
                sender = population[sender_index]
                contacts = contacts_of(sender)
                if not contacts:
                    continue
                recipient = contacts[int(pick * len(contacts))]
                yield SendRequest(when, sender, recipient, normal)


class SpamCampaignWorkload:
    """A bulk-mail campaign blasting the whole population.

    The spammer lives at ``spammer`` and sends ``volume`` messages spread
    uniformly over ``[start, start + duration)`` to recipients sampled
    uniformly from the population (with replacement — real campaigns
    re-hit addresses).
    """

    def __init__(
        self,
        *,
        spammer: Address,
        n_isps: int,
        users_per_isp: int,
        volume: int,
        start: float,
        duration: float,
        streams: SeededStreams,
        name: str = "spam",
    ) -> None:
        if volume < 0:
            raise ValueError("volume must be non-negative")
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.spammer = spammer
        self.volume = volume
        self.start = start
        self.duration = duration
        self._streams = streams
        self.name = name
        self._population = [
            Address(i, u)
            for i in range(n_isps)
            for u in range(users_per_isp)
            if Address(i, u) != spammer
        ]

    def generate(self) -> Iterator[SendRequest]:
        """Yield the campaign's requests in time order."""
        if not self._population:
            return iter(())
        if HAVE_NUMPY:
            return self._generate_numpy()
        return self._generate_python()

    def _generate_python(self) -> Iterator[SendRequest]:
        stream = self._streams.get(f"{self.name}:times")
        pick = self._streams.get(f"{self.name}:targets")
        times = sorted(
            stream.uniform(self.start, self.start + self.duration)
            for _ in range(self.volume)
        )
        for t in times:
            recipient = pick.choice(self._population)
            yield SendRequest(t, self.spammer, recipient, TrafficKind.SPAM)

    def _generate_numpy(self) -> Iterator[SendRequest]:
        rng = self._streams.get_numpy(f"{self.name}:times")
        population = self._population
        times = rng.uniform(
            self.start, self.start + self.duration, size=self.volume
        )
        times.sort()
        targets = rng.integers(0, len(population), size=self.volume)
        spammer = self.spammer
        spam = TrafficKind.SPAM
        for when, target in zip(times.tolist(), targets.tolist()):
            yield SendRequest(when, spammer, population[target], spam)


class ZombieBurstWorkload:
    """A compromised user machine blasting mail at machine speed.

    Models the paper's §5 scenario: a virus turns a user's PC into a zombie
    that sends ``rate_per_hour`` messages until ``end``. The Zmail daily
    ``limit`` should cut this off after ``limit`` messages per day.
    """

    def __init__(
        self,
        *,
        zombie: Address,
        n_isps: int,
        users_per_isp: int,
        rate_per_hour: float,
        start: float,
        end: float,
        streams: SeededStreams,
        name: str = "zombie",
    ) -> None:
        if rate_per_hour <= 0:
            raise ValueError("rate_per_hour must be positive")
        if end <= start:
            raise ValueError("end must be after start")
        self.zombie = zombie
        self.rate_per_hour = rate_per_hour
        self.start = start
        self.end = end
        self._streams = streams
        self.name = name
        self._population = [
            Address(i, u)
            for i in range(n_isps)
            for u in range(users_per_isp)
            if Address(i, u) != zombie
        ]

    def generate(self) -> Iterator[SendRequest]:
        """Yield the burst's requests in time order."""
        if not self._population:
            return iter(())
        if HAVE_NUMPY:
            return self._generate_numpy()
        return self._generate_python()

    def _generate_python(self) -> Iterator[SendRequest]:
        arrivals = self._streams.get(f"{self.name}:arrivals")
        pick = self._streams.get(f"{self.name}:targets")
        rate_per_second = self.rate_per_hour / 3600.0
        t = self.start
        while True:
            t += arrivals.expovariate(rate_per_second)
            if t >= self.end:
                return
            recipient = pick.choice(self._population)
            yield SendRequest(t, self.zombie, recipient, TrafficKind.ZOMBIE)

    def _generate_numpy(self) -> Iterator[SendRequest]:
        rng = self._streams.get_numpy(f"{self.name}:arrivals")
        population = self._population
        n_population = len(population)
        scale = 3600.0 / self.rate_per_hour
        zombie = self.zombie
        kind = TrafficKind.ZOMBIE
        end = self.end
        t = self.start
        while True:
            gaps = rng.exponential(scale, size=_CHUNK)
            times = gaps.cumsum()
            times += t
            t = float(times[-1])
            targets = rng.integers(0, n_population, size=_CHUNK)
            for when, target in zip(times.tolist(), targets.tolist()):
                if when >= end:
                    return
                yield SendRequest(when, zombie, population[target], kind)


def merge_workloads(*iterators: Iterator[SendRequest]) -> Iterator[SendRequest]:
    """Merge independently time-ordered request streams into one ordering.

    Standard k-way merge; each input must itself be time-ordered. The key
    is extracted with :func:`operator.attrgetter` (C level) because the
    merge sits on the hot path of every streamed scenario.
    """
    import heapq
    import operator

    return iter(heapq.merge(*iterators, key=operator.attrgetter("time")))
