"""A simulated message network between named endpoints.

The network delivers opaque payloads between registered endpoints with
configurable per-link latency and loss. Delivery order per (src, dst) pair
is FIFO even under random latency — the Zmail paper's channel model
(Section 3) requires in-order delivery, so the network enforces it by never
scheduling a delivery earlier than the previous one on the same link.

Zero-latency links take an inline fast path: when nothing is in flight on
the link, the payload is handed to the destination endpoint synchronously
(same virtual time, same FIFO order) instead of through the event heap.
This keeps million-message macro scenarios cheap without changing any
observable ordering; if a scheduled message is pending on the link, the
zero-delay send falls back to the heap behind it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from ..errors import SimulationError
from ..obs.trace import NULL_TRACER, TraceRecorder
from .engine import Engine
from .rng import SeededStreams

__all__ = ["LinkSpec", "Network", "Endpoint"]


class Endpoint(Protocol):
    """Anything that can receive a payload from the network."""

    def on_message(self, src: str, payload: object) -> None:
        """Handle a delivered payload sent by endpoint ``src``."""
        ...  # pragma: no cover - protocol definition


@dataclass(frozen=True)
class LinkSpec:
    """Delivery characteristics of a directed link.

    Attributes:
        base_latency: Fixed propagation delay in seconds.
        jitter: Uniform extra delay in ``[0, jitter]`` seconds.
        loss_rate: Probability in ``[0, 1]`` that a message is dropped.
    """

    base_latency: float = 0.05
    jitter: float = 0.0
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.base_latency < 0 or self.jitter < 0:
            raise SimulationError("link latency and jitter must be non-negative")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise SimulationError(f"loss_rate {self.loss_rate} outside [0, 1]")


class Network:
    """FIFO message delivery between named endpoints on a shared engine.

    Example:
        >>> eng = Engine()
        >>> net = Network(eng, SeededStreams(1))
        >>> inbox = []
        >>> class Sink:
        ...     def on_message(self, src, payload):
        ...         inbox.append((src, payload))
        >>> net.register("a", Sink())
        >>> net.register("b", Sink())
        >>> net.send("a", "b", "hello")
        >>> eng.run()
        >>> inbox
        [('a', 'hello')]
    """

    def __init__(
        self,
        engine: Engine,
        streams: SeededStreams,
        *,
        default_link: LinkSpec | None = None,
        tracer: TraceRecorder | None = None,
    ) -> None:
        self.engine = engine
        self._streams = streams
        # Observability: loss-rate drops emit a ``net.drop`` event; the
        # guard keeps the per-message cost at one attribute check.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._default_link = default_link or LinkSpec()
        self._endpoints: dict[str, Endpoint] = {}
        self._links: dict[tuple[str, str], LinkSpec] = {}
        # Per-link hot-path cache: (spec, rng stream, delivery label,
        # endpoint). Built lazily on first send over a link so the
        # per-message path does no string formatting or spec resolution.
        self._link_cache: dict[
            tuple[str, str], tuple[LinkSpec, object, str, Endpoint]
        ] = {}
        # Last scheduled delivery time per directed link, for FIFO enforcement.
        self._last_delivery: dict[tuple[str, str], float] = {}
        # Scheduled-but-undelivered messages per directed link. A
        # zero-delay send may only take the inline fast path while this
        # is zero, otherwise it would overtake an in-flight message.
        self._pending: dict[tuple[str, str], int] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self._taps: list[Callable[[str, str, object], None]] = []

    # -- topology --------------------------------------------------------------

    def register(self, name: str, endpoint: Endpoint) -> None:
        """Attach ``endpoint`` under ``name``; names must be unique."""
        if name in self._endpoints:
            raise SimulationError(f"endpoint {name!r} already registered")
        self._endpoints[name] = endpoint

    def set_link(self, src: str, dst: str, spec: LinkSpec) -> None:
        """Override delivery characteristics for the directed link src→dst."""
        self._links[(src, dst)] = spec
        self._link_cache.pop((src, dst), None)

    def link(self, src: str, dst: str) -> LinkSpec:
        """The effective spec for the directed link src→dst."""
        return self._links.get((src, dst), self._default_link)

    def add_tap(self, tap: Callable[[str, str, object], None]) -> None:
        """Register an observer called as ``tap(src, dst, payload)`` per send."""
        self._taps.append(tap)

    # -- transmission ------------------------------------------------------------

    def _resolve(self, key: tuple[str, str]) -> tuple[LinkSpec, object, str, Endpoint]:
        """Build (and cache) the per-link hot-path tuple for ``key``."""
        src, dst = key
        if src not in self._endpoints:
            raise SimulationError(f"unknown source endpoint {src!r}")
        if dst not in self._endpoints:
            raise SimulationError(f"unknown destination endpoint {dst!r}")
        cached = (
            self.link(src, dst),
            self._streams.get(f"net:{src}->{dst}"),
            f"deliver {src}->{dst}",
            self._endpoints[dst],
        )
        self._link_cache[key] = cached
        return cached

    def send(self, src: str, dst: str, payload: object, *, size: int = 0) -> None:
        """Send ``payload`` from ``src`` to ``dst``.

        Args:
            size: Nominal wire size in bytes, counted in :attr:`bytes_sent`
                for bandwidth accounting; does not affect latency.

        Raises:
            SimulationError: if either endpoint is unknown.
        """
        key = (src, dst)
        cached = self._link_cache.get(key)
        if cached is None:
            cached = self._resolve(key)
        spec, stream, label, endpoint = cached
        self.messages_sent += 1
        self.bytes_sent += size
        for tap in self._taps:
            tap(src, dst, payload)

        if spec.loss_rate > 0 and stream.random() < spec.loss_rate:
            self.messages_dropped += 1
            tracer = self.tracer
            if tracer.enabled:
                tracer.emit("net.drop", src=src, dst=dst)
            return

        delay = spec.base_latency
        if spec.jitter > 0:
            delay += stream.uniform(0.0, spec.jitter)
        if delay == 0.0 and not self._pending.get(key):
            # Inline fast path: a zero-latency link with nothing in flight
            # delivers synchronously — same virtual time, same FIFO order,
            # but no Event/closure/heap traffic. This is what makes
            # zero-latency macro scenarios cheap at millions of messages.
            self.messages_delivered += 1
            endpoint.on_message(src, payload)
            return
        self._schedule_delivery(key, endpoint, src, payload, delay, label)

    def _schedule_delivery(
        self,
        key: tuple[str, str],
        endpoint: Endpoint,
        src: str,
        payload: object,
        delay: float,
        label: str,
        *,
        fifo: bool = True,
    ) -> None:
        """Schedule a heap delivery on the link ``key`` after ``delay``.

        With ``fifo=True`` (the normal path) the delivery is clamped to
        never overtake an earlier message on the same link. ``fifo=False``
        is the escape hatch for fault injection: a reordered message is
        scheduled at its raw time and may overtake in-flight traffic,
        without moving the link's FIFO floor for later messages.
        """
        deliver_at = self.engine.now + delay
        if fifo:
            # FIFO: never deliver before an earlier message on the same link.
            earliest = self._last_delivery.get(key, 0.0)
            if deliver_at < earliest:
                deliver_at = earliest
            self._last_delivery[key] = deliver_at
        self._pending[key] = self._pending.get(key, 0) + 1

        def deliver() -> None:
            self._pending[key] -= 1
            self._deliver(key, endpoint, src, payload)

        self.engine.schedule_at(deliver_at, deliver, label=label)

    def _deliver(
        self, key: tuple[str, str], endpoint: Endpoint, src: str, payload: object
    ) -> None:
        """Hand a scheduled message to its endpoint (fault-injection hook)."""
        self.messages_delivered += 1
        endpoint.on_message(src, payload)
