"""Measurement primitives for simulation experiments.

Three shapes cover everything the experiments need:

* :class:`Counter` — monotonically increasing named totals.
* :class:`TimeSeries` — (time, value) samples, with summary statistics.
* :class:`Histogram` — fixed-bin distribution of observed values.

A :class:`MetricsRegistry` namespaces them so workloads, protocol layers
and baselines can record without sharing global state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["Counter", "TimeSeries", "Histogram", "MetricsRegistry", "summary_stats"]


def summary_stats(values: Iterable[float]) -> dict[str, float]:
    """Compute count/mean/min/max/stddev for a sequence of values.

    ``stddev`` is the **population** standard deviation (divisor ``n``,
    like ``numpy.std`` with default ``ddof=0``), not the ``n - 1`` sample
    estimator: the inputs here are complete enumerations of what a
    deterministic run produced (every user's net flow, every latency),
    not samples from a larger population, so there is no estimator bias
    to correct. Callers doing inference across *seeds* should use
    :func:`repro.economics.sensitivity.mean_ci`, which deliberately uses
    the ``n - 1`` sample variance. This is the only stddev
    implementation in the repo — benchmarks must report spread through
    this function rather than reimplementing it.

    Returns zeros for an empty sequence rather than raising, so callers can
    report on experiments that produced no samples.
    """
    data = list(values)
    n = len(data)
    if n == 0:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "stddev": 0.0}
    mean = sum(data) / n
    var = sum((x - mean) ** 2 for x in data) / n
    return {
        "count": n,
        "mean": mean,
        "min": min(data),
        "max": max(data),
        "stddev": math.sqrt(var),
    }


@dataclass(slots=True)
class Counter:
    """A named monotonically increasing total.

    Incremented once or twice per simulated message, so it carries
    ``__slots__``; hot callers should also hold the counter (or its bound
    :meth:`increment`) rather than re-looking it up by name per message.
    """

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        self.value += amount


@dataclass(slots=True)
class TimeSeries:
    """A sequence of (time, value) observations."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        """Append one sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time series {self.name!r} times must be non-decreasing: "
                f"{time} < {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def last(self) -> float:
        """The most recent value (raises ``IndexError`` if empty)."""
        return self.values[-1]

    def stats(self) -> dict[str, float]:
        """Summary statistics over all recorded values."""
        return summary_stats(self.values)

    def time_weighted_mean(self) -> float:
        """Mean of the value weighted by how long it was held.

        Treats each sample as holding until the next sample time; the final
        sample contributes zero width. Returns 0.0 with fewer than 2 samples.
        """
        if len(self.times) < 2:
            return 0.0
        total = 0.0
        duration = self.times[-1] - self.times[0]
        if duration <= 0:
            return self.values[-1]
        for i in range(len(self.times) - 1):
            total += self.values[i] * (self.times[i + 1] - self.times[i])
        return total / duration


class Histogram:
    """Fixed-width binned distribution over ``[low, high)``.

    Out-of-range observations accumulate in underflow/overflow buckets so
    no sample is silently dropped.
    """

    __slots__ = (
        "name", "low", "high", "bins", "counts",
        "underflow", "overflow", "_samples", "_total",
    )

    def __init__(self, name: str, low: float, high: float, bins: int) -> None:
        if high <= low:
            raise ValueError(f"histogram {name!r}: high ({high}) <= low ({low})")
        if bins <= 0:
            raise ValueError(f"histogram {name!r}: bins must be positive")
        self.name = name
        self.low = low
        self.high = high
        self.bins = bins
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self._samples = 0
        self._total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._samples += 1
        self._total += value
        if value < self.low:
            self.underflow += 1
        elif value >= self.high:
            self.overflow += 1
        else:
            width = (self.high - self.low) / self.bins
            index = int((value - self.low) / width)
            self.counts[min(index, self.bins - 1)] += 1

    @property
    def total_observations(self) -> int:
        """All observations including under/overflow."""
        return self._samples

    @property
    def mean(self) -> float:
        """Exact mean of all observed values (not bin midpoints)."""
        return self._total / self._samples if self._samples else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from bin boundaries (in-range samples only)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        in_range = sum(self.counts)
        if in_range == 0:
            return self.low
        target = q * in_range
        width = (self.high - self.low) / self.bins
        cumulative = 0
        for i, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= target:
                return self.low + (i + 1) * width
        return self.high


class MetricsRegistry:
    """A namespace of counters, time series and histograms.

    Components call :meth:`counter` / :meth:`series` / :meth:`histogram` to
    get-or-create instruments by name; experiments read them back at the end
    of a run via :meth:`snapshot`.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._series: dict[str, TimeSeries] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def series(self, name: str) -> TimeSeries:
        """Get or create the time series called ``name``."""
        series = self._series.get(name)
        if series is None:
            series = TimeSeries(name)
            self._series[name] = series
        return series

    def histogram(
        self, name: str, low: float = 0.0, high: float = 1.0, bins: int = 20
    ) -> Histogram:
        """Get or create the histogram called ``name``.

        Bounds are fixed at creation; later calls ignore the bound arguments.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(name, low, high, bins)
            self._histograms[name] = histogram
        return histogram

    def snapshot(self) -> dict[str, object]:
        """A plain-dict dump of every instrument, for reports and tests."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "series": {
                n: {"len": len(s), "stats": s.stats()}
                for n, s in sorted(self._series.items())
            },
            "histograms": {
                n: {"observations": h.total_observations, "mean": h.mean}
                for n, h in sorted(self._histograms.items())
            },
        }
