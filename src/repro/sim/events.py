"""Event objects for the discrete-event simulator.

Events pair an absolute firing time with a zero-argument callback. They are
totally ordered by ``(time, priority, sequence)`` so that the engine's heap
is deterministic: two events at the same instant fire in the order they were
scheduled unless an explicit priority says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "EventHandle"]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    ``__slots__`` (via ``slots=True``) matters here: the engine allocates
    one ``Event`` per timer, and large simulations create millions of
    short-lived ones, so the per-instance ``__dict__`` is worth removing.
    Arbitrary attributes cannot be attached to an ``Event``.

    Attributes:
        time: Absolute simulation time at which the event fires.
        priority: Tie-breaker; lower fires first at equal times.
        seq: Insertion sequence number, set by the engine; final tie-breaker.
        callback: Zero-argument callable executed when the event fires.
        label: Human-readable tag used in traces and error messages.
        cancelled: Set by :class:`EventHandle.cancel`; the engine skips
            cancelled events instead of removing them from the heap.
    """

    time: float
    priority: int = 0
    seq: int = 0
    callback: Callable[[], None] = field(compare=False, default=lambda: None)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """A cancellation token for a scheduled event.

    Engines return a handle from ``schedule`` calls; calling :meth:`cancel`
    marks the underlying event so it is skipped when popped. Cancellation is
    O(1) — the event stays in the heap until its time arrives.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Absolute time the event is scheduled for."""
        return self._event.time

    @property
    def label(self) -> str:
        """The label given at scheduling time."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent."""
        self._event.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time!r}, label={self.label!r}, {state})"
