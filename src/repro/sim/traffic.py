"""Inter-ISP traffic matrices and imbalance accounting.

Zmail's credit arrays are, by construction, *traffic imbalances*: after a
consistent snapshot, ``credit_i[j]`` must equal (mail i sent j) − (mail i
received from j) for the period. :class:`TrafficMatrix` records ground
truth independently of the protocol, giving tests and experiments an
oracle to check credit arrays against — the same cross-check a real
auditor would run from transit logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TrafficMatrix"]


@dataclass(slots=True)
class TrafficMatrix:
    """Counts of messages per directed ISP pair.

    ``record`` runs once per inter-ISP message when installed as a network
    tap, so it stays a two-dict-op hot path (and the class carries
    ``__slots__``).
    """

    counts: dict[tuple[int, int], int] = field(default_factory=dict)

    def record(self, src_isp: int, dst_isp: int, n: int = 1) -> None:
        """Record ``n`` messages from ``src_isp`` to ``dst_isp``."""
        if n < 0:
            raise ValueError("message count cannot be negative")
        key = (src_isp, dst_isp)
        self.counts[key] = self.counts.get(key, 0) + n

    def sent(self, src_isp: int, dst_isp: int) -> int:
        """Messages recorded from ``src_isp`` to ``dst_isp``."""
        return self.counts.get((src_isp, dst_isp), 0)

    def imbalance(self, isp_a: int, isp_b: int) -> int:
        """Net flow a→b minus b→a — the value ``credit_a[b]`` must hold."""
        return self.sent(isp_a, isp_b) - self.sent(isp_b, isp_a)

    def expected_credit_array(self, isp: int, n_isps: int) -> dict[int, int]:
        """The credit array an honest ``isp`` should report."""
        expected = {}
        for peer in range(n_isps):
            if peer == isp:
                continue
            value = self.imbalance(isp, peer)
            if value:
                expected[peer] = value
        return expected

    def total_messages(self) -> int:
        """All recorded inter-ISP messages."""
        return sum(self.counts.values())

    def isps_seen(self) -> set[int]:
        """Every ISP index appearing as source or destination."""
        seen: set[int] = set()
        for src, dst in self.counts:
            seen.add(src)
            seen.add(dst)
        return seen

    def busiest_pairs(self, top: int = 5) -> list[tuple[tuple[int, int], int]]:
        """The ``top`` directed pairs by message count, descending."""
        return sorted(self.counts.items(), key=lambda kv: -kv[1])[:top]
