"""Seeded random-number streams for reproducible simulations.

Every stochastic component in the library draws from a named stream derived
from a single root seed. Streams are independent: adding draws to one stream
does not perturb another, so experiments stay comparable when a workload
gains a new source of randomness.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Sequence, TypeVar

try:  # numpy accelerates bulk draws; everything degrades gracefully without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less hosts
    _np = None

__all__ = ["SeededStreams", "derive_seed", "HAVE_NUMPY"]

HAVE_NUMPY = _np is not None

T = TypeVar("T")


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 so the mapping is stable across Python versions and
    platforms (unlike ``hash``, which is salted per process).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SeededStreams:
    """A registry of independent named :class:`random.Random` streams.

    Example:
        >>> streams = SeededStreams(42)
        >>> a = streams.get("arrivals")
        >>> b = streams.get("payload")
        >>> a is streams.get("arrivals")
        True
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = root_seed
        self._streams: dict[str, random.Random] = {}
        self._np_streams: dict[str, object] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = stream
        return stream

    def get_numpy(self, name: str):
        """Return a ``numpy.random.Generator`` for ``name`` (bulk draws).

        Numpy generators live in their own namespace (the seed is derived
        from ``"numpy:" + name``), so a python stream and a numpy stream
        with the same name stay independent. Used by the workload fast
        paths to draw whole arrays of inter-arrival times and targets in
        one call while keeping per-seed determinism.

        Raises:
            RuntimeError: if numpy is not installed (check
                :data:`HAVE_NUMPY` first on optional paths).
        """
        if _np is None:  # pragma: no cover - exercised only on numpy-less hosts
            raise RuntimeError("numpy is not available; check rng.HAVE_NUMPY")
        generator = self._np_streams.get(name)
        if generator is None:
            seed = derive_seed(self.root_seed, f"numpy:{name}")
            generator = _np.random.Generator(_np.random.PCG64(seed))
            self._np_streams[name] = generator
        return generator

    def spawn(self, name: str) -> "SeededStreams":
        """Create a child registry whose root seed is derived from ``name``.

        Useful for giving each simulated entity (user, ISP) its own family
        of streams without global coordination.
        """
        return SeededStreams(derive_seed(self.root_seed, name))

    # -- convenience draws ----------------------------------------------------

    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform draw from the named stream."""
        return self.get(name).uniform(low, high)

    def expovariate(self, name: str, rate: float) -> float:
        """One exponential inter-arrival draw with the given rate."""
        return self.get(name).expovariate(rate)

    def choice(self, name: str, items: Sequence[T]) -> T:
        """One uniform choice from ``items`` on the named stream."""
        return self.get(name).choice(items)

    def bernoulli(self, name: str, p: float) -> bool:
        """One biased-coin flip with success probability ``p``."""
        return self.get(name).random() < p

    def poisson_process(self, name: str, rate: float) -> Iterator[float]:
        """Yield an endless sequence of exponential inter-arrival gaps."""
        stream = self.get(name)
        while True:
            yield stream.expovariate(rate)
