"""The discrete-event simulation engine.

A classic event-heap simulator: callbacks are scheduled at absolute virtual
times and executed in time order. The engine is the substrate for all of the
economics experiments — ISPs, users, spammers and the bank are ordinary
Python objects that schedule future work on a shared :class:`Engine`.

Determinism is a design requirement (DESIGN.md §6): given the same seed and
the same scheduling calls, a run is reproducible bit-for-bit. Ties at equal
times are broken first by explicit priority, then by insertion order.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

from ..errors import SimulationError
from .clock import Clock
from .events import Event, EventHandle

__all__ = ["Engine"]


class Engine:
    """A deterministic discrete-event simulation engine.

    Example:
        >>> eng = Engine()
        >>> fired = []
        >>> _ = eng.schedule_at(5.0, lambda: fired.append(eng.now))
        >>> _ = eng.schedule_at(1.0, lambda: fired.append(eng.now))
        >>> eng.run()
        >>> fired
        [1.0, 5.0]
    """

    def __init__(self) -> None:
        self.clock = Clock()
        self._heap: list[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self.events_processed = 0

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    # -- scheduling ----------------------------------------------------------

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event {label!r} at t={time} "
                f"(now={self.clock.now})"
            )
        self._seq += 1
        event = Event(
            time=time,
            priority=priority,
            seq=self._seq,
            callback=callback,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` after a non-negative ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {label!r}")
        return self.schedule_at(
            self.clock.now + delay, callback, priority=priority, label=label
        )

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        start: float | None = None,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` periodically every ``interval`` seconds.

        The returned handle cancels the *entire* periodic chain. The first
        firing is at ``start`` (default: now + interval).
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval}")
        first = self.clock.now + interval if start is None else start

        # A single handle is reused: each firing reschedules the same Event
        # object at the next period, so cancelling the handle stops the chain.
        chain_event = Event(
            time=first, priority=priority, seq=0, callback=lambda: None, label=label
        )
        handle = EventHandle(chain_event)

        def fire() -> None:
            if chain_event.cancelled:
                return
            callback()
            if not chain_event.cancelled:
                inner = self.schedule_after(
                    interval, fire, priority=priority, label=label
                )
                chain_event.time = inner.time

        self.schedule_at(first, fire, priority=priority, label=label)
        return handle

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns:
            ``True`` if an event was executed, ``False`` if the heap is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            self.events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: float | None = None, *, max_events: int | None = None) -> None:
        """Run events in time order.

        Args:
            until: Stop once virtual time would exceed this bound. Events at
                exactly ``until`` still fire. The clock is advanced to
                ``until`` when the bound is reached, so back-to-back
                ``run(until=...)`` calls tile time cleanly.
            max_events: Safety valve; raise :class:`SimulationError` if more
                than this many events execute (runaway-loop detection).
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._heap and not self._stopped:
                next_time = self._heap[0].time
                if until is not None and next_time > until:
                    break
                if not self.step():
                    break
                executed += 1
                if max_events is not None and executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway event loop?"
                    )
            if until is not None and until > self.clock.now:
                self.clock.advance_to(until)
        finally:
            self._running = False

    def stop(self) -> None:
        """Request that the current :meth:`run` call return after this event."""
        self._stopped = True

    # -- introspection ---------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for e in self._heap if not e.cancelled)

    def pending_labels(self) -> Iterable[str]:
        """Labels of pending events, in heap (not time) order. Debug aid."""
        return [e.label for e in self._heap if not e.cancelled]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Engine(now={self.clock.now}, pending={self.pending}, "
            f"processed={self.events_processed})"
        )
