"""The discrete-event simulation engine.

A classic event-heap simulator: callbacks are scheduled at absolute virtual
times and executed in time order. The engine is the substrate for all of the
economics experiments — ISPs, users, spammers and the bank are ordinary
Python objects that schedule future work on a shared :class:`Engine`.

Determinism is a design requirement (DESIGN.md §6): given the same seed and
the same scheduling calls, a run is reproducible bit-for-bit. Ties at equal
times are broken first by explicit priority, then by insertion order.

Two ways to feed the engine:

* **heap events** — :meth:`Engine.schedule_at` and friends; one
  :class:`Event` object per callback, totally ordered on the heap.
* **streams** — :meth:`Engine.add_stream`; a lazily-pulled, time-ordered
  iterator of items dispatched through a single shared callback. Streams
  are the fast path for bulk workloads (millions of simulated emails):
  the heap then only carries periodic/control timers, shrinking it from
  O(messages) to O(timers) and skipping one ``Event`` + closure
  allocation per message.
"""

from __future__ import annotations

import heapq
from typing import Callable, Generic, Iterable, Iterator, TypeVar

from ..errors import SimulationError
from ..obs.spans import NULL_SPANS, SpanRegistry
from .clock import Clock
from .events import Event, EventHandle

__all__ = ["Engine"]

T = TypeVar("T")


class _Stream(Generic[T]):
    """One attached time-ordered item source with a buffered head item.

    ``head`` is the next not-yet-dispatched item (``None`` when the
    iterator is exhausted); ``head_time`` mirrors ``head``'s time so the
    run loop can compare times without attribute-chasing per iteration.
    """

    __slots__ = ("iterator", "dispatch", "label", "head", "head_time")

    def __init__(
        self,
        iterator: Iterator[T],
        dispatch: Callable[[T], None],
        label: str,
    ) -> None:
        self.iterator = iterator
        self.dispatch = dispatch
        self.label = label
        self.head: T | None = None
        self.head_time: float = 0.0
        self.advance()

    def advance(self) -> None:
        """Pull the next item (if any) into ``head``."""
        item = next(self.iterator, None)
        self.head = item
        if item is not None:
            self.head_time = item.time  # type: ignore[attr-defined]


class Engine:
    """A deterministic discrete-event simulation engine.

    Example:
        >>> eng = Engine()
        >>> fired = []
        >>> _ = eng.schedule_at(5.0, lambda: fired.append(eng.now))
        >>> _ = eng.schedule_at(1.0, lambda: fired.append(eng.now))
        >>> eng.run()
        >>> fired
        [1.0, 5.0]
    """

    def __init__(self, *, spans: SpanRegistry | None = None) -> None:
        self.clock = Clock()
        self._heap: list[Event] = []
        self._streams: list[_Stream] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self.events_processed = 0
        # Wall-clock profiling of run() windows (repro.obs.spans); spans
        # never touch virtual time or determinism.
        self.spans = spans if spans is not None else NULL_SPANS

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    # -- scheduling ----------------------------------------------------------

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event {label!r} at t={time} "
                f"(now={self.clock.now})"
            )
        self._seq += 1
        event = Event(
            time=time,
            priority=priority,
            seq=self._seq,
            callback=callback,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` after a non-negative ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {label!r}")
        return self.schedule_at(
            self.clock.now + delay, callback, priority=priority, label=label
        )

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        start: float | None = None,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` periodically every ``interval`` seconds.

        The returned handle cancels the *entire* periodic chain. The first
        firing is at ``start`` (default: now + interval).

        Exception semantics: if ``callback`` raises, the chain is cancelled
        cleanly before the exception propagates — no further firings occur
        and the handle reports ``cancelled``. Re-arm explicitly if a
        periodic task should survive its own failures.
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval}")
        first = self.clock.now + interval if start is None else start

        # A single handle is reused: each firing reschedules the same Event
        # object at the next period, so cancelling the handle stops the chain.
        chain_event = Event(
            time=first, priority=priority, seq=0, callback=lambda: None, label=label
        )
        handle = EventHandle(chain_event)

        def fire() -> None:
            if chain_event.cancelled:
                return
            try:
                callback()
            except BaseException:
                # A half-dead chain (failed but still apparently pending)
                # would be unobservable; cancel it so the failure is final.
                chain_event.cancelled = True
                raise
            if not chain_event.cancelled:
                inner = self.schedule_after(
                    interval, fire, priority=priority, label=label
                )
                chain_event.time = inner.time

        self.schedule_at(first, fire, priority=priority, label=label)
        return handle

    # -- streams ------------------------------------------------------------

    def add_stream(
        self,
        items: Iterable[T],
        dispatch: Callable[[T], None],
        *,
        label: str = "stream",
    ) -> None:
        """Attach a time-ordered item stream consumed lazily by :meth:`run`.

        ``items`` must yield objects with a ``.time`` attribute in
        non-decreasing time order; each is passed to ``dispatch`` when
        virtual time reaches it. Only one item per stream is buffered, so
        a million-message workload costs O(1) engine memory instead of one
        heap entry + closure per message.

        Ordering: a stream item due at time ``t`` fires *before* any heap
        event at the same ``t``. This matches the per-event path, where
        workload sends are scheduled before periodic/control timers and
        therefore carry lower sequence numbers.

        Raises:
            SimulationError: from :meth:`run`, if a stream yields an item
                whose time is before the current virtual time.
        """
        stream = _Stream(iter(items), dispatch, label)
        # Exhausted streams never enter the list (run() also removes them
        # as they drain), so the run loop's scan can skip per-iteration
        # ``head is None`` checks.
        if stream.head is not None:
            self._streams.append(stream)

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next pending *heap* event.

        Returns:
            ``True`` if an event was executed, ``False`` if the heap is
            empty. Streams attached via :meth:`add_stream` are only
            consumed by :meth:`run`, never by ``step``.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            self.events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: float | None = None, *, max_events: int | None = None) -> None:
        """Run heap events and stream items in time order.

        Args:
            until: Stop once virtual time would exceed this bound. Events
                and stream items at exactly ``until`` still fire. The clock
                is advanced to ``until`` when the bound is reached, so
                back-to-back ``run(until=...)`` calls tile time cleanly;
                an undispatched stream item stays buffered for the next
                ``run`` call.
            max_events: Safety valve; raise :class:`SimulationError` if more
                than this many events execute (runaway-loop detection).
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        executed = 0
        heap = self._heap
        clock = self.clock
        streams = self._streams
        span = self.spans.span("engine.run")
        span.__enter__()
        try:
            while not self._stopped:
                # Drop cancelled heap heads so time comparisons see the
                # true next event (cancelled events must not gate streams).
                while heap and heap[0].cancelled:
                    heapq.heappop(heap)
                # Earliest live stream head, scanned inline: this loop runs
                # once per simulated message, so no helper-call overhead.
                # Exhausted streams are removed eagerly, leaving the common
                # cases (zero or one stream) nearly free.
                stream = None
                stream_time = 0.0
                for s in streams:
                    if stream is None or s.head_time < stream_time:
                        stream = s
                        stream_time = s.head_time
                if stream is not None and heap and heap[0].time < stream_time:
                    # Streams win ties (see add_stream docstring).
                    stream = None
                if stream is not None:
                    if until is not None and stream_time > until:
                        break
                    if stream_time < clock.now:
                        raise SimulationError(
                            f"stream {stream.label!r} yielded item at "
                            f"t={stream_time} (now={clock.now}); "
                            "streams must be time-ordered"
                        )
                    item = stream.head
                    # Monotonicity was just checked, so the clock can be
                    # assigned directly (advance_to would re-check).
                    clock.now = stream_time
                    stream.advance()
                    if stream.head is None:
                        streams.remove(stream)
                    self.events_processed += 1
                    stream.dispatch(item)
                elif heap:
                    event = heap[0]
                    if until is not None and event.time > until:
                        break
                    heapq.heappop(heap)
                    # Heap pops are time-monotone and schedule_at rejects
                    # past times, so direct assignment is safe here too.
                    clock.now = event.time
                    self.events_processed += 1
                    event.callback()
                else:
                    break
                executed += 1
                if max_events is not None and executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway event loop?"
                    )
            if until is not None and until > clock.now:
                clock.advance_to(until)
        finally:
            self._running = False
            span.__exit__(None, None, None)

    def stop(self) -> None:
        """Request that the current :meth:`run` call return after this event."""
        self._stopped = True

    # -- introspection ---------------------------------------------------------

    def next_event_time(self) -> float | None:
        """Earliest live heap-event time, or ``None`` if the heap is empty.

        Cancelled heads are dropped on the way (they carry no information).
        Stream heads are not consulted; this is a heap-only peek used by
        drain loops deciding how far to run.
        """
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled heap events."""
        return sum(1 for e in self._heap if not e.cancelled)

    def pending_labels(self) -> Iterable[str]:
        """Labels of pending events, in heap (not time) order. Debug aid."""
        return [e.label for e in self._heap if not e.cancelled]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Engine(now={self.clock.now}, pending={self.pending}, "
            f"processed={self.events_processed})"
        )
