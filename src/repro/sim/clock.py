"""Virtual clock for the discrete-event simulator.

The simulator measures time in abstract seconds. Helpers convert between
seconds, minutes, hours and days so workload code can speak in natural
units (the Zmail paper's quantities are per-day limits, 10-minute snapshot
timeouts, and monthly reconciliation periods).
"""

from __future__ import annotations

from dataclasses import dataclass, field

SECOND = 1.0
MINUTE = 60.0 * SECOND
HOUR = 60.0 * MINUTE
DAY = 24.0 * HOUR
WEEK = 7.0 * DAY
# The paper reconciles "once a week or once a month"; we use a 30-day month.
MONTH = 30.0 * DAY

__all__ = [
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "MONTH",
    "Clock",
    "format_time",
]


@dataclass
class Clock:
    """A monotonically advancing virtual clock.

    The clock only moves forward; :meth:`advance_to` raises ``ValueError``
    on any attempt to move backwards, which would indicate a scheduler bug.
    """

    now: float = field(default=0.0)

    def advance_to(self, t: float) -> None:
        """Advance the clock to absolute time ``t`` (>= current time)."""
        if t < self.now:
            raise ValueError(f"clock cannot move backwards: {t} < {self.now}")
        self.now = t

    def advance_by(self, dt: float) -> None:
        """Advance the clock by a non-negative delta ``dt``."""
        if dt < 0:
            raise ValueError(f"negative clock delta: {dt}")
        self.now += dt

    @property
    def day(self) -> int:
        """The zero-based day index of the current time."""
        return int(self.now // DAY)

    @property
    def seconds_into_day(self) -> float:
        """Seconds elapsed since the most recent midnight."""
        return self.now - self.day * DAY


def format_time(t: float) -> str:
    """Render an absolute simulation time as ``DdHH:MM:SS.mmm``."""
    days = int(t // DAY)
    rem = t - days * DAY
    hours = int(rem // HOUR)
    rem -= hours * HOUR
    minutes = int(rem // MINUTE)
    rem -= minutes * MINUTE
    return f"{days}d{hours:02d}:{minutes:02d}:{rem:06.3f}"
