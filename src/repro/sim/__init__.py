"""Discrete-event simulation substrate.

Provides the deterministic engine, virtual clock, seeded RNG streams,
FIFO network model, metrics instruments and email workload generators on
which all Zmail experiments run.
"""

from .clock import DAY, HOUR, MINUTE, MONTH, SECOND, WEEK, Clock, format_time
from .engine import Engine
from .events import Event, EventHandle
from .metrics import Counter, Histogram, MetricsRegistry, TimeSeries, summary_stats
from .network import LinkSpec, Network
from .reliable import ReliableAck, ReliableEndpoint, ReliableLink, ReliablePayload
from .rng import SeededStreams, derive_seed
from .traffic import TrafficMatrix
from .workload import (
    Address,
    NormalUserWorkload,
    SendRequest,
    SpamCampaignWorkload,
    TrafficKind,
    ZombieBurstWorkload,
    merge_workloads,
)

__all__ = [
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "MONTH",
    "Clock",
    "format_time",
    "Engine",
    "Event",
    "EventHandle",
    "Counter",
    "TimeSeries",
    "Histogram",
    "MetricsRegistry",
    "summary_stats",
    "LinkSpec",
    "Network",
    "ReliableEndpoint",
    "ReliableLink",
    "ReliablePayload",
    "ReliableAck",
    "TrafficMatrix",
    "SeededStreams",
    "derive_seed",
    "Address",
    "SendRequest",
    "TrafficKind",
    "NormalUserWorkload",
    "SpamCampaignWorkload",
    "ZombieBurstWorkload",
    "merge_workloads",
]
